//! LPV: linear-programming verification.
//!
//! Re-implements the verification style of Dellacherie, Devulder and
//! Lambert, *"Software verification based on linear programming"* (the
//! paper's reference \[7\]), as used by the Symbad flow:
//!
//! * **Deadlock freeness (level 1, experiment E5)** — for marked-graph
//!   abstractions of the dataflow model, liveness holds iff every directed
//!   cycle carries a token (Murata's theorem). The minimum token count over
//!   all cycles is itself a linear program over circulations; a strictly
//!   positive optimum is a liveness *certificate*, a zero optimum yields a
//!   token-free cycle as counterexample.
//! * **Unreachability (level 1)** — the paper turns each deadlock situation
//!   into an unreachability property. Reachable markings satisfy the state
//!   equation `m = m0 + C·σ, σ ≥ 0`; if the LP has no solution the marking
//!   is unreachable (certificate). Feasibility alone is *not* proof of
//!   reachability, so that direction is reported as "possibly reachable".
//! * **Deadline achievement (level 2, experiment E6)** — the worst-case
//!   end-to-end latency of an (acyclic) annotated task graph is the optimum
//!   of a scheduling LP.
//! * **FIFO dimensioning (level 2, experiment E6)** — the minimal safe
//!   channel capacity is the optimum of a backlog LP over arrival/service
//!   rate bounds.
#![allow(clippy::needless_range_loop)]

use crate::petri::{PetriNet, PlaceId, TransitionId};
use crate::rational::Rational;
use crate::simplex::{Problem, Solution};

/// Verdict of the marked-graph liveness (deadlock-freeness) check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LivenessVerdict {
    /// Every directed cycle carries at least `min_cycle_tokens` tokens
    /// (strictly positive): the net is live, hence deadlock-free.
    Live {
        /// The LP optimum: the minimum token count over all cycles.
        min_cycle_tokens: Rational,
    },
    /// A token-free directed cycle exists; the places on it form a
    /// structural deadlock witness.
    TokenFreeCycle {
        /// Places (channels) forming the token-free cycle.
        places: Vec<PlaceId>,
    },
    /// The net is not a marked graph, so the cycle LP is not exact; the
    /// caller should fall back to other techniques.
    NotMarkedGraph,
}

impl LivenessVerdict {
    /// Whether deadlock freeness was certified.
    pub fn is_live(&self) -> bool {
        matches!(self, LivenessVerdict::Live { .. })
    }
}

/// Proves deadlock-freeness of a marked-graph net, or produces a token-free
/// cycle as a counterexample.
///
/// The LP minimizes `m0 · y` over circulations `y ≥ 0, Σy = 1` in the
/// channel graph. Extreme points of that polytope are directed cycles, so a
/// strictly positive optimum certifies that every cycle carries a token
/// (Murata: a marked graph is live iff no token-free directed circuit).
pub fn check_liveness(net: &PetriNet) -> LivenessVerdict {
    if !net.is_marked_graph() {
        return LivenessVerdict::NotMarkedGraph;
    }
    let num_p = net.num_places();
    let num_t = net.num_transitions();
    let c = net.incidence();
    let m0 = net.initial_marking();

    // Variables: y_p ≥ 0 per place (flow on the channel edge).
    let mut lp = Problem::new(num_p);
    lp.minimize(
        &m0.iter()
            .map(|&tokens| Rational::integer(tokens as i128))
            .collect::<Vec<_>>(),
    );
    // Flow conservation at every transition: Σ_p C[p][t]·y_p = 0.
    // (For a marked graph C[p][t] ∈ {−1,0,1}: +1 if t produces into p,
    //  −1 if t consumes from p, so this equates in-flow and out-flow.)
    for t in 0..num_t {
        let row: Vec<Rational> = (0..num_p)
            .map(|p| Rational::integer(c[p][t] as i128))
            .collect();
        lp.add_eq(&row, Rational::ZERO);
    }
    // Normalization picks out a non-trivial circulation.
    lp.add_eq(&vec![Rational::ONE; num_p], Rational::ONE);

    match lp.solve() {
        Solution::Infeasible => {
            // No circulation at all: the channel graph is acyclic, hence no
            // directed circuit, hence live.
            LivenessVerdict::Live {
                min_cycle_tokens: Rational::ZERO,
            }
        }
        Solution::Unbounded => unreachable!("objective bounded below by 0"),
        Solution::Optimal { value, point } => {
            if value.is_positive() {
                LivenessVerdict::Live {
                    min_cycle_tokens: value,
                }
            } else {
                let support: Vec<PlaceId> = (0..num_p)
                    .filter(|&p| point[p].is_positive())
                    .map(PlaceId)
                    .collect();
                let cycle = extract_cycle(net, &support).unwrap_or(support);
                LivenessVerdict::TokenFreeCycle { places: cycle }
            }
        }
    }
}

/// Walks the support of a zero-token circulation to produce one concrete
/// directed cycle of places.
fn extract_cycle(net: &PetriNet, support: &[PlaceId]) -> Option<Vec<PlaceId>> {
    if support.is_empty() {
        return None;
    }
    // In a marked graph, each place has a unique producing and consuming
    // transition; follow consumer → next place in the support.
    let producer_of = |p: PlaceId| -> Option<TransitionId> {
        (0..net.num_transitions())
            .map(TransitionId)
            .find(|&t| net.post(t).contains_key(&p))
    };
    let consumer_of = |p: PlaceId| -> Option<TransitionId> {
        (0..net.num_transitions())
            .map(TransitionId)
            .find(|&t| net.pre(t).contains_key(&p))
    };
    let start = support[0];
    let mut cycle = vec![start];
    let mut current = start;
    for _ in 0..support.len() {
        let consumer = consumer_of(current)?;
        // Next support place produced by that consumer.
        let next = support
            .iter()
            .copied()
            .find(|&p| producer_of(p) == Some(consumer))?;
        if next == start {
            return Some(cycle);
        }
        cycle.push(next);
        current = next;
    }
    None
}

/// A linear constraint on a marking used to describe a (bad) state set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MarkingConstraint {
    /// The constrained place.
    pub place: PlaceId,
    /// Relation of the token count to `tokens`.
    pub relation: MarkingRelation,
    /// Token count bound.
    pub tokens: u64,
}

/// Relation used in a [`MarkingConstraint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MarkingRelation {
    /// Token count is at least the bound.
    AtLeast,
    /// Token count is at most the bound.
    AtMost,
    /// Token count equals the bound.
    Exactly,
}

/// Verdict of the state-equation unreachability check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reachability {
    /// The state equation is infeasible: no firing sequence can reach a
    /// marking satisfying the constraints. This is a proof.
    Unreachable,
    /// The state equation admits a solution. The marking *may* be reachable;
    /// the rational firing-count vector is returned as a hint for directed
    /// simulation.
    PossiblyReachable {
        /// Per-transition firing counts solving the state equation.
        firing_counts: Vec<Rational>,
    },
}

impl Reachability {
    /// Whether unreachability was proven.
    pub fn is_unreachable(&self) -> bool {
        matches!(self, Reachability::Unreachable)
    }
}

/// Checks whether any marking satisfying `constraints` is reachable,
/// using the state-equation relaxation `m = m0 + C·σ` (exact in the
/// unreachable direction only — LPV's "reachability as LP" idea).
pub fn check_unreachable(net: &PetriNet, constraints: &[MarkingConstraint]) -> Reachability {
    let num_p = net.num_places();
    let num_t = net.num_transitions();
    let c = net.incidence();
    let m0 = net.initial_marking();

    // Variables: m_p (marking) then σ_t (firing counts), all ≥ 0.
    let mut lp = Problem::new(num_p + num_t);
    // State equation per place: m_p − Σ_t C[p][t] σ_t = m0_p.
    for p in 0..num_p {
        let mut row = vec![Rational::ZERO; num_p + num_t];
        row[p] = Rational::ONE;
        for t in 0..num_t {
            row[num_p + t] = Rational::integer(-(c[p][t] as i128));
        }
        lp.add_eq(&row, Rational::integer(m0[p] as i128));
    }
    for cons in constraints {
        let mut row = vec![Rational::ZERO; num_p + num_t];
        row[cons.place.index()] = Rational::ONE;
        let rhs = Rational::integer(cons.tokens as i128);
        match cons.relation {
            MarkingRelation::AtLeast => lp.add_ge(&row, rhs),
            MarkingRelation::AtMost => lp.add_le(&row, rhs),
            MarkingRelation::Exactly => lp.add_eq(&row, rhs),
        }
    }
    match lp.solve() {
        Solution::Infeasible => Reachability::Unreachable,
        Solution::Unbounded | Solution::Optimal { .. } => {
            let point = match lp.solve() {
                Solution::Optimal { point, .. } => point,
                _ => vec![Rational::ZERO; num_p + num_t],
            };
            Reachability::PossiblyReachable {
                firing_counts: point[num_p..].to_vec(),
            }
        }
    }
}

/// An independently checkable unreachability certificate: a non-negative
/// *place invariant* `y` (a conservation law `y·C = 0`, so `y·m` is
/// constant over every firing) whose initial value contradicts the target
/// constraints.
///
/// This is the classical LPV artifact: the verdict is not "the solver said
/// so" but a small witness anyone can re-check with integer arithmetic —
/// see [`InvariantCertificate::verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantCertificate {
    /// The invariant weights, one per place (non-negative).
    pub weights: Vec<Rational>,
    /// The conserved quantity: `weights · m0`.
    pub initial_value: Rational,
    /// Lower bound on `weights · m` forced by the target constraints.
    pub target_lower_bound: Rational,
}

impl InvariantCertificate {
    /// Re-checks the certificate against the net and constraints from
    /// scratch: (1) `y ≥ 0`, (2) `y·C = 0`, (3) every marking satisfying
    /// the constraints has `y·m ≥ target_lower_bound > initial_value`.
    ///
    /// Step (3) is sound for `AtLeast`/`Exactly` constraints used as lower
    /// bounds; `AtMost` constraints contribute nothing to the bound.
    pub fn verify(&self, net: &PetriNet, constraints: &[MarkingConstraint]) -> bool {
        let num_p = net.num_places();
        if self.weights.len() != num_p {
            return false;
        }
        if self.weights.iter().any(|w| w.is_negative()) {
            return false;
        }
        // y·C = 0 (conservation).
        let c = net.incidence();
        for t in 0..net.num_transitions() {
            let mut dot = Rational::ZERO;
            for p in 0..num_p {
                dot += self.weights[p] * Rational::integer(c[p][t] as i128);
            }
            if !dot.is_zero() {
                return false;
            }
        }
        // Conserved value at m0.
        let m0 = net.initial_marking();
        let mut init = Rational::ZERO;
        for p in 0..num_p {
            init += self.weights[p] * Rational::integer(m0[p] as i128);
        }
        if init != self.initial_value {
            return false;
        }
        // Lower bound from the constraints: Σ over AtLeast/Exactly places
        // of weight·bound (weights are non-negative and markings too, so
        // other places only add).
        let mut bound = Rational::ZERO;
        for cons in constraints {
            match cons.relation {
                MarkingRelation::AtLeast | MarkingRelation::Exactly => {
                    bound +=
                        self.weights[cons.place.index()] * Rational::integer(cons.tokens as i128);
                }
                MarkingRelation::AtMost => {}
            }
        }
        bound == self.target_lower_bound && self.initial_value < bound
    }
}

/// Searches for an [`InvariantCertificate`] proving the constraints
/// unreachable: an LP over invariant weights `y ≥ 0, y·C = 0` maximizing
/// the slack `bound(y) − y·m0`. Returns `None` when no single place
/// invariant separates the target (the state-equation check
/// [`check_unreachable`] may still succeed — the two relaxations are
/// incomparable in general).
pub fn unreachability_certificate(
    net: &PetriNet,
    constraints: &[MarkingConstraint],
) -> Option<InvariantCertificate> {
    let num_p = net.num_places();
    let num_t = net.num_transitions();
    let c = net.incidence();
    let m0 = net.initial_marking();

    // Variables: y_p ≥ 0. Maximize bound(y) − y·m0, normalized by Σy ≤ 1
    // (otherwise the objective is unbounded whenever positive).
    let mut lp = Problem::new(num_p);
    let mut objective = vec![Rational::ZERO; num_p];
    for (p, obj) in objective.iter_mut().enumerate() {
        let mut coeff = -Rational::integer(m0[p] as i128);
        for cons in constraints {
            if cons.place.index() == p {
                match cons.relation {
                    MarkingRelation::AtLeast | MarkingRelation::Exactly => {
                        coeff += Rational::integer(cons.tokens as i128);
                    }
                    MarkingRelation::AtMost => {}
                }
            }
        }
        *obj = coeff;
    }
    lp.maximize(&objective);
    for t in 0..num_t {
        let row: Vec<Rational> = (0..num_p)
            .map(|p| Rational::integer(c[p][t] as i128))
            .collect();
        lp.add_eq(&row, Rational::ZERO);
    }
    lp.add_le(&vec![Rational::ONE; num_p], Rational::ONE);

    match lp.solve() {
        Solution::Optimal { value, point } if value.is_positive() => {
            let mut initial_value = Rational::ZERO;
            for p in 0..num_p {
                initial_value += point[p] * Rational::integer(m0[p] as i128);
            }
            let mut bound = Rational::ZERO;
            for cons in constraints {
                match cons.relation {
                    MarkingRelation::AtLeast | MarkingRelation::Exactly => {
                        bound += point[cons.place.index()] * Rational::integer(cons.tokens as i128);
                    }
                    MarkingRelation::AtMost => {}
                }
            }
            let cert = InvariantCertificate {
                weights: point,
                initial_value,
                target_lower_bound: bound,
            };
            debug_assert!(cert.verify(net, constraints));
            Some(cert)
        }
        _ => None,
    }
}

/// An annotated task in a [`TaskGraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Task {
    /// Task name (module or SW-task name).
    pub name: String,
    /// Worst-case execution time in ticks (from profiling/annotation).
    pub duration: u64,
}

/// An acyclic dependency graph of annotated tasks — the level-2 timing
/// abstraction on which deadline properties are proven.
#[derive(Debug, Clone, Default)]
pub struct TaskGraph {
    tasks: Vec<Task>,
    /// (from, to): `to` cannot start before `from` finishes.
    deps: Vec<(usize, usize)>,
}

impl TaskGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        TaskGraph::default()
    }

    /// Adds a task with a worst-case execution time; returns its index.
    pub fn add_task(&mut self, name: &str, duration: u64) -> usize {
        self.tasks.push(Task {
            name: name.to_owned(),
            duration,
        });
        self.tasks.len() - 1
    }

    /// Declares that `to` depends on (starts after) `from`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn add_dep(&mut self, from: usize, to: usize) {
        assert!(from < self.tasks.len() && to < self.tasks.len());
        self.deps.push((from, to));
    }

    /// Tasks in insertion order.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// The critical path (longest path) by dynamic programming — used to
    /// cross-check the LP bound and to name the path in counterexamples.
    ///
    /// # Panics
    ///
    /// Panics if the dependency graph has a cycle.
    pub fn critical_path(&self) -> (u64, Vec<usize>) {
        let n = self.tasks.len();
        let mut indeg = vec![0usize; n];
        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(a, b) in &self.deps {
            indeg[b] += 1;
            succ[a].push(b);
        }
        let mut order: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut head = 0;
        let mut finish = vec![0u64; n];
        let mut pred = vec![usize::MAX; n];
        while head < order.len() {
            let i = order[head];
            head += 1;
            let f = finish[i] + self.tasks[i].duration;
            finish[i] = f;
            for &j in &succ[i] {
                if finish[j] < f {
                    finish[j] = f;
                    pred[j] = i;
                }
                indeg[j] -= 1;
                if indeg[j] == 0 {
                    order.push(j);
                }
            }
        }
        assert!(order.len() == n, "task graph has a cycle");
        let end = (0..n).max_by_key(|&i| finish[i]).unwrap_or(0);
        let mut path = vec![end];
        let mut cur = end;
        while pred[cur] != usize::MAX {
            cur = pred[cur];
            path.push(cur);
        }
        path.reverse();
        (finish.get(end).copied().unwrap_or(0), path)
    }

    /// Worst-case end-to-end latency as a linear program: minimize the
    /// makespan `M` subject to `s_j ≥ s_i + d_i` for every dependency and
    /// `M ≥ s_i + d_i` for every task. The optimum equals the critical-path
    /// length; computing it by LP is the LPV formulation of "timing deadline
    /// achievement".
    pub fn latency_lp(&self) -> Rational {
        let n = self.tasks.len();
        if n == 0 {
            return Rational::ZERO;
        }
        // Variables: s_0..s_{n-1}, M.
        let mut lp = Problem::new(n + 1);
        let mut obj = vec![Rational::ZERO; n + 1];
        obj[n] = Rational::ONE;
        lp.minimize(&obj);
        for &(a, b) in &self.deps {
            // s_b − s_a ≥ d_a
            let mut row = vec![Rational::ZERO; n + 1];
            row[b] = Rational::ONE;
            row[a] = -Rational::ONE;
            lp.add_ge(&row, Rational::integer(self.tasks[a].duration as i128));
        }
        for i in 0..n {
            // M − s_i ≥ d_i
            let mut row = vec![Rational::ZERO; n + 1];
            row[n] = Rational::ONE;
            row[i] = -Rational::ONE;
            lp.add_ge(&row, Rational::integer(self.tasks[i].duration as i128));
        }
        match lp.solve() {
            Solution::Optimal { value, .. } => value,
            _ => unreachable!("scheduling LP is feasible and bounded"),
        }
    }
}

/// Verdict of a deadline check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeadlineVerdict {
    /// The worst-case latency provably meets the deadline.
    Met {
        /// Proven worst-case latency.
        latency: Rational,
    },
    /// The worst-case latency exceeds the deadline; the critical path is the
    /// counterexample.
    Violated {
        /// Worst-case latency.
        latency: Rational,
        /// Task indices on the critical path.
        critical_path: Vec<usize>,
    },
}

impl DeadlineVerdict {
    /// Whether the deadline was met.
    pub fn is_met(&self) -> bool {
        matches!(self, DeadlineVerdict::Met { .. })
    }
}

/// Proves or refutes a frame deadline on an annotated task graph.
pub fn check_deadline(graph: &TaskGraph, deadline: u64) -> DeadlineVerdict {
    let latency = graph.latency_lp();
    if latency <= Rational::integer(deadline as i128) {
        DeadlineVerdict::Met { latency }
    } else {
        let (_, path) = graph.critical_path();
        DeadlineVerdict::Violated {
            latency,
            critical_path: path,
        }
    }
}

/// Rate specification of one producer/consumer channel for FIFO sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelRates {
    /// Producer burst: tokens that may arrive at once.
    pub producer_burst: u64,
    /// Producer period: ticks per produced token (sustained rate).
    pub producer_period: u64,
    /// Consumer period: ticks per consumed token (sustained rate).
    pub consumer_period: u64,
    /// Consumer start-up latency in ticks before the first read.
    pub consumer_latency: u64,
    /// Analysis horizon in ticks (bounds the backlog when the consumer is
    /// slower than the producer).
    pub horizon: u64,
}

/// Result of FIFO dimensioning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FifoBound {
    /// Minimal capacity (tokens) under which the producer never blocks.
    pub capacity: u64,
    /// Whether the bound holds for an unbounded horizon (consumer at least
    /// as fast as producer) or only up to the given horizon.
    pub sustained: bool,
}

/// Computes the minimal safe FIFO capacity for a channel as a backlog LP:
/// maximize `P(t) − C(t)` where `P(t) ≤ burst + t/Tp` bounds arrivals and
/// `C(t) ≥ (t − L)/Tc` bounds service, over `0 ≤ t ≤ horizon`.
pub fn dimension_fifo(rates: &ChannelRates) -> FifoBound {
    assert!(rates.producer_period > 0 && rates.consumer_period > 0);
    let tp = Rational::integer(rates.producer_period as i128);
    let tc = Rational::integer(rates.consumer_period as i128);
    let burst = Rational::integer(rates.producer_burst as i128);
    let lat = Rational::integer(rates.consumer_latency as i128);
    let horizon = Rational::integer(rates.horizon as i128);

    // Segment 1: 0 ≤ t ≤ L, backlog ≤ burst + t/Tp.  (maximize over t)
    let seg1 = solve_segment(burst, tp.recip(), Rational::ZERO, lat.min(horizon));
    // Segment 2: L ≤ t ≤ H, backlog ≤ burst + t/Tp − (t−L)/Tc.
    let slope2 = tp.recip() - tc.recip();
    let intercept2 = burst + lat / tc;
    let seg2 = solve_segment(intercept2, slope2, lat.min(horizon), horizon);

    let bound = seg1.max(seg2);
    // Round up to an integer token capacity, minimum 1.
    let capacity = {
        let n = bound.numer();
        let d = bound.denom();
        let up = if n <= 0 { 0 } else { (n + d - 1) / d };
        (up.max(1)) as u64
    };
    FifoBound {
        capacity,
        sustained: rates.consumer_period <= rates.producer_period,
    }
}

/// Checks the liveness of each configuration's Petri net as an
/// independent obligation, optionally across worker threads. The exact
/// rational simplex is deterministic, so verdicts are bit-identical to
/// mapping [`check_liveness`] over the slice in order.
pub fn check_liveness_batch(nets: &[PetriNet], mode: exec::ExecMode) -> Vec<LivenessVerdict> {
    let jobs: Vec<usize> = (0..nets.len()).collect();
    exec::map(mode, jobs, |_, i| check_liveness(&nets[i]))
}

/// Checks each `(task graph, deadline)` pair as an independent
/// obligation, optionally across worker threads; verdicts are
/// bit-identical to mapping [`check_deadline`] over the slice in order.
pub fn check_deadline_batch(
    jobs: &[(&TaskGraph, u64)],
    mode: exec::ExecMode,
) -> Vec<DeadlineVerdict> {
    let idx: Vec<usize> = (0..jobs.len()).collect();
    exec::map(mode, idx, |_, i| check_deadline(jobs[i].0, jobs[i].1))
}

/// Dimensions each channel as an independent obligation, optionally
/// across worker threads; bounds are bit-identical to mapping
/// [`dimension_fifo`] over the slice in order.
pub fn dimension_fifo_batch(rates: &[ChannelRates], mode: exec::ExecMode) -> Vec<FifoBound> {
    let jobs: Vec<usize> = (0..rates.len()).collect();
    exec::map(mode, jobs, |_, i| dimension_fifo(&rates[i]))
}

/// Maximizes `intercept + slope·t` over `lo ≤ t ≤ hi` via a one-variable LP
/// (shifted to a non-negative variable, as the simplex core requires).
fn solve_segment(intercept: Rational, slope: Rational, lo: Rational, hi: Rational) -> Rational {
    if hi < lo {
        return intercept + slope * lo;
    }
    // Substitute t = lo + u, u ≥ 0, u ≤ hi − lo.
    let mut lp = Problem::new(1);
    lp.maximize(&[slope]);
    lp.add_le(&[Rational::ONE], hi - lo);
    match lp.solve() {
        Solution::Optimal { value, .. } => intercept + slope * lo + value,
        _ => unreachable!("segment LP is feasible and bounded"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Figure-2 style ring: a → b → c → a with one initial token.
    fn ring(tokens_on_ca: u64) -> PetriNet {
        let mut net = PetriNet::new();
        let a = net.add_transition("a");
        let b = net.add_transition("b");
        let c = net.add_transition("c");
        net.add_channel("ab", a, b, 0);
        net.add_channel("bc", b, c, 0);
        net.add_channel("ca", c, a, tokens_on_ca);
        net
    }

    #[test]
    fn live_ring_is_certified() {
        let verdict = check_liveness(&ring(1));
        match verdict {
            LivenessVerdict::Live { min_cycle_tokens } => {
                assert!(min_cycle_tokens.is_positive());
            }
            other => panic!("expected live, got {other:?}"),
        }
    }

    #[test]
    fn token_free_ring_yields_cycle_counterexample() {
        let verdict = check_liveness(&ring(0));
        match verdict {
            LivenessVerdict::TokenFreeCycle { places } => {
                assert_eq!(places.len(), 3);
            }
            other => panic!("expected token-free cycle, got {other:?}"),
        }
    }

    #[test]
    fn acyclic_net_is_live() {
        let mut net = PetriNet::new();
        let a = net.add_transition("a");
        let b = net.add_transition("b");
        net.add_channel("ab", a, b, 0);
        assert!(check_liveness(&net).is_live());
    }

    #[test]
    fn non_marked_graph_is_rejected() {
        let mut net = PetriNet::new();
        let a = net.add_transition("a");
        let b = net.add_transition("b");
        let p = net.add_place("shared", 1);
        net.add_input_arc(p, a, 1);
        net.add_input_arc(p, b, 1); // two consumers: not a marked graph
        assert_eq!(check_liveness(&net), LivenessVerdict::NotMarkedGraph);
    }

    #[test]
    fn counterexample_cycle_is_confirmed_by_simulation() {
        let net = ring(0);
        let (fired, marking) = net.simulate(10);
        assert!(fired.is_empty());
        assert!(net.is_dead(&marking));
    }

    #[test]
    fn unreachable_marking_is_proven() {
        // In the 1-token ring the total token count is invariant (= 1), so a
        // marking with 2 tokens on `ab` is unreachable.
        let net = ring(1);
        let verdict = check_unreachable(
            &net,
            &[MarkingConstraint {
                place: PlaceId(0),
                relation: MarkingRelation::AtLeast,
                tokens: 2,
            }],
        );
        assert!(verdict.is_unreachable());
    }

    #[test]
    fn reachable_marking_is_not_excluded() {
        let net = ring(1);
        // One token on `ab` (place 0) is reachable by firing `a`.
        let verdict = check_unreachable(
            &net,
            &[MarkingConstraint {
                place: PlaceId(0),
                relation: MarkingRelation::Exactly,
                tokens: 1,
            }],
        );
        assert!(matches!(verdict, Reachability::PossiblyReachable { .. }));
    }

    #[test]
    fn invariant_certificate_separates_unreachable_marking() {
        // 1-token ring: total tokens conserved; 2 tokens anywhere is
        // unreachable, and the uniform invariant proves it.
        let net = ring(1);
        let constraints = [MarkingConstraint {
            place: PlaceId(0),
            relation: MarkingRelation::AtLeast,
            tokens: 2,
        }];
        let cert = unreachability_certificate(&net, &constraints)
            .expect("a place invariant separates this target");
        assert!(cert.verify(&net, &constraints));
        assert!(cert.initial_value < cert.target_lower_bound);
        // And it agrees with the state-equation check.
        assert!(check_unreachable(&net, &constraints).is_unreachable());
    }

    #[test]
    fn no_certificate_for_reachable_marking() {
        let net = ring(1);
        let constraints = [MarkingConstraint {
            place: PlaceId(0),
            relation: MarkingRelation::AtLeast,
            tokens: 1, // reachable by firing `a`
        }];
        assert!(unreachability_certificate(&net, &constraints).is_none());
    }

    #[test]
    fn tampered_certificate_fails_verification() {
        let net = ring(1);
        let constraints = [MarkingConstraint {
            place: PlaceId(0),
            relation: MarkingRelation::AtLeast,
            tokens: 2,
        }];
        let mut cert = unreachability_certificate(&net, &constraints).expect("cert");
        cert.weights[0] += Rational::ONE; // break y·C = 0
        assert!(!cert.verify(&net, &constraints));
        let mut cert2 = unreachability_certificate(&net, &constraints).expect("cert");
        cert2.initial_value = cert2.target_lower_bound; // break the gap
        assert!(!cert2.verify(&net, &constraints));
    }

    fn diamond() -> TaskGraph {
        // a(5) → b(3) → d(2) ; a → c(7) → d : critical path a,c,d = 14.
        let mut g = TaskGraph::new();
        let a = g.add_task("a", 5);
        let b = g.add_task("b", 3);
        let c = g.add_task("c", 7);
        let d = g.add_task("d", 2);
        g.add_dep(a, b);
        g.add_dep(a, c);
        g.add_dep(b, d);
        g.add_dep(c, d);
        g
    }

    #[test]
    fn lp_latency_equals_critical_path() {
        let g = diamond();
        let (dp, path) = g.critical_path();
        assert_eq!(dp, 14);
        assert_eq!(path, vec![0, 2, 3]);
        assert_eq!(g.latency_lp(), Rational::integer(14));
    }

    #[test]
    fn deadline_check_verdicts() {
        let g = diamond();
        assert!(check_deadline(&g, 14).is_met());
        assert!(check_deadline(&g, 20).is_met());
        match check_deadline(&g, 13) {
            DeadlineVerdict::Violated {
                latency,
                critical_path,
            } => {
                assert_eq!(latency, Rational::integer(14));
                assert_eq!(critical_path, vec![0, 2, 3]);
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn empty_task_graph_has_zero_latency() {
        let g = TaskGraph::new();
        assert_eq!(g.latency_lp(), Rational::ZERO);
    }

    #[test]
    fn fifo_fast_consumer_bound_is_small() {
        // Consumer strictly faster, small latency: capacity ≈ burst + L/Tp.
        let b = dimension_fifo(&ChannelRates {
            producer_burst: 1,
            producer_period: 10,
            consumer_period: 5,
            consumer_latency: 20,
            horizon: 10_000,
        });
        assert!(b.sustained);
        assert_eq!(b.capacity, 3); // 1 + 20/10 = 3
    }

    #[test]
    fn fifo_slow_consumer_grows_with_horizon() {
        let small = dimension_fifo(&ChannelRates {
            producer_burst: 0,
            producer_period: 5,
            consumer_period: 10,
            consumer_latency: 0,
            horizon: 100,
        });
        let large = dimension_fifo(&ChannelRates {
            producer_burst: 0,
            producer_period: 5,
            consumer_period: 10,
            consumer_latency: 0,
            horizon: 1000,
        });
        assert!(!small.sustained);
        assert!(large.capacity > small.capacity);
        // Backlog rate = 1/5 − 1/10 = 1/10 token per tick.
        assert_eq!(small.capacity, 10);
        assert_eq!(large.capacity, 100);
    }

    #[test]
    fn fifo_capacity_is_at_least_one() {
        let b = dimension_fifo(&ChannelRates {
            producer_burst: 0,
            producer_period: 10,
            consumer_period: 1,
            consumer_latency: 0,
            horizon: 100,
        });
        assert_eq!(b.capacity, 1);
    }

    #[test]
    fn batch_helpers_are_bit_identical_to_sequential() {
        let nets = vec![ring(1), ring(0), ring(3)];
        let g = diamond();
        let jobs = vec![(&g, 14u64), (&g, 13), (&g, 20)];
        let rates = vec![
            ChannelRates {
                producer_burst: 1,
                producer_period: 10,
                consumer_period: 5,
                consumer_latency: 20,
                horizon: 10_000,
            },
            ChannelRates {
                producer_burst: 0,
                producer_period: 5,
                consumer_period: 10,
                consumer_latency: 0,
                horizon: 100,
            },
        ];
        let live_ref: Vec<_> = nets.iter().map(check_liveness).collect();
        let dead_ref: Vec<_> = jobs.iter().map(|(g, d)| check_deadline(g, *d)).collect();
        let fifo_ref: Vec<_> = rates.iter().map(dimension_fifo).collect();
        for mode in [
            exec::ExecMode::Sequential,
            exec::ExecMode::Parallel { workers: 2 },
            exec::ExecMode::Parallel { workers: 8 },
        ] {
            assert_eq!(check_liveness_batch(&nets, mode), live_ref);
            assert_eq!(check_deadline_batch(&jobs, mode), dead_ref);
            assert_eq!(dimension_fifo_batch(&rates, mode), fifo_ref);
        }
    }
}
