//! Two-phase primal simplex over exact rationals.
//!
//! Bland's rule is used for both the entering and leaving choices, which
//! guarantees termination (no cycling) at the cost of speed — the right
//! trade-off for a verification engine whose answers become certificates.
//!
//! All decision variables are constrained to `x ≥ 0`, the form every LPV
//! encoding in this crate naturally produces (markings, firing counts,
//! backlogs and start times are non-negative).
#![allow(clippy::needless_range_loop)]

use crate::rational::Rational;

/// Direction of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `coeffs · x ≤ rhs`
    Le,
    /// `coeffs · x ≥ rhs`
    Ge,
    /// `coeffs · x = rhs`
    Eq,
}

/// One linear constraint.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// Coefficients, one per decision variable.
    pub coeffs: Vec<Rational>,
    /// Relation between the linear form and `rhs`.
    pub relation: Relation,
    /// Right-hand side.
    pub rhs: Rational,
}

/// Result of solving a [`Problem`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Solution {
    /// An optimum exists; carries the objective value and one optimal point.
    Optimal {
        /// Optimal objective value.
        value: Rational,
        /// An optimal assignment (one per decision variable).
        point: Vec<Rational>,
    },
    /// The constraint set is empty.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
}

impl Solution {
    /// The optimal value, if one exists.
    pub fn value(&self) -> Option<Rational> {
        match self {
            Solution::Optimal { value, .. } => Some(*value),
            _ => None,
        }
    }

    /// Whether the problem was feasible.
    pub fn is_feasible(&self) -> bool {
        !matches!(self, Solution::Infeasible)
    }
}

/// A linear program over non-negative variables.
///
/// # Example
///
/// ```
/// use lp::{Problem, Rational};
///
/// // max 3x + 5y  s.t.  x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18   (optimum 36 at (2,6))
/// let mut p = Problem::new(2);
/// p.maximize(&[3.into(), 5.into()]);
/// p.add_le(&[1.into(), 0.into()], 4.into());
/// p.add_le(&[0.into(), 2.into()], 12.into());
/// p.add_le(&[3.into(), 2.into()], 18.into());
/// let sol = p.solve();
/// assert_eq!(sol.value(), Some(Rational::integer(36)));
/// ```
#[derive(Debug, Clone)]
pub struct Problem {
    num_vars: usize,
    objective: Vec<Rational>,
    maximize: bool,
    constraints: Vec<Constraint>,
}

impl Problem {
    /// Creates a problem with `num_vars` non-negative decision variables and
    /// a zero objective (a pure feasibility problem until an objective is
    /// set).
    pub fn new(num_vars: usize) -> Self {
        Problem {
            num_vars,
            objective: vec![Rational::ZERO; num_vars],
            maximize: true,
            constraints: Vec::new(),
        }
    }

    /// Number of decision variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Sets a maximization objective.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != num_vars`.
    pub fn maximize(&mut self, coeffs: &[Rational]) {
        assert_eq!(coeffs.len(), self.num_vars);
        self.objective = coeffs.to_vec();
        self.maximize = true;
    }

    /// Sets a minimization objective.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != num_vars`.
    pub fn minimize(&mut self, coeffs: &[Rational]) {
        assert_eq!(coeffs.len(), self.num_vars);
        self.objective = coeffs.to_vec();
        self.maximize = false;
    }

    fn add(&mut self, coeffs: &[Rational], relation: Relation, rhs: Rational) {
        assert_eq!(coeffs.len(), self.num_vars, "constraint arity mismatch");
        self.constraints.push(Constraint {
            coeffs: coeffs.to_vec(),
            relation,
            rhs,
        });
    }

    /// Adds `coeffs · x ≤ rhs`.
    pub fn add_le(&mut self, coeffs: &[Rational], rhs: Rational) {
        self.add(coeffs, Relation::Le, rhs);
    }

    /// Adds `coeffs · x ≥ rhs`.
    pub fn add_ge(&mut self, coeffs: &[Rational], rhs: Rational) {
        self.add(coeffs, Relation::Ge, rhs);
    }

    /// Adds `coeffs · x = rhs`.
    pub fn add_eq(&mut self, coeffs: &[Rational], rhs: Rational) {
        self.add(coeffs, Relation::Eq, rhs);
    }

    /// Number of constraints added so far.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Solves the program with two-phase simplex.
    pub fn solve(&self) -> Solution {
        Tableau::build(self).solve().0
    }

    /// [`Problem::solve`] with telemetry: emits the pivot count of this
    /// solve (`lp.pivots` counter, `lp.pivots_per_solve` histogram) and an
    /// `lp.solve_calls` counter through `instrument`.
    pub fn solve_instrumented(&self, instrument: &telemetry::SharedInstrument) -> Solution {
        let (solution, pivots) = Tableau::build(self).solve();
        instrument.counter_add("lp.solve_calls", 1);
        instrument.counter_add("lp.pivots", pivots);
        instrument.record("lp.pivots_per_solve", pivots);
        solution
    }
}

/// Dense simplex tableau in canonical form.
struct Tableau {
    /// rows[i][j], j in 0..total_cols; last column is the RHS.
    rows: Vec<Vec<Rational>>,
    /// cost[j] for j in 0..total_cols-1 (reduced costs, minimization).
    cost: Vec<Rational>,
    /// Objective constant accumulated by pricing out.
    cost_rhs: Rational,
    basis: Vec<usize>,
    num_structural: usize,
    first_artificial: usize,
    total_cols: usize, // includes RHS column
    maximize: bool,
    objective: Vec<Rational>,
    /// Pivot operations performed (both phases) — the solver's work metric.
    pivots: u64,
}

impl Tableau {
    fn build(p: &Problem) -> Tableau {
        let m = p.constraints.len();
        // Column layout: structural | slack/surplus | artificial | RHS.
        let mut num_slack = 0;
        for c in &p.constraints {
            if matches!(c.relation, Relation::Le | Relation::Ge) {
                num_slack += 1;
            }
        }
        let first_slack = p.num_vars;
        let first_artificial = first_slack + num_slack;
        // Worst case: one artificial per row.
        let total_cols = first_artificial + m + 1;
        let rhs_col = total_cols - 1;

        let mut rows = vec![vec![Rational::ZERO; total_cols]; m];
        let mut basis = vec![usize::MAX; m];
        let mut next_slack = first_slack;
        let mut next_artificial = first_artificial;

        for (i, c) in p.constraints.iter().enumerate() {
            let flip = c.rhs.is_negative();
            let sign = if flip { -Rational::ONE } else { Rational::ONE };
            for (j, &a) in c.coeffs.iter().enumerate() {
                rows[i][j] = sign * a;
            }
            rows[i][rhs_col] = sign * c.rhs;
            let relation = match (c.relation, flip) {
                (Relation::Le, false) | (Relation::Ge, true) => Relation::Le,
                (Relation::Ge, false) | (Relation::Le, true) => Relation::Ge,
                (Relation::Eq, _) => Relation::Eq,
            };
            match relation {
                Relation::Le => {
                    rows[i][next_slack] = Rational::ONE;
                    basis[i] = next_slack;
                    next_slack += 1;
                }
                Relation::Ge => {
                    rows[i][next_slack] = -Rational::ONE;
                    next_slack += 1;
                    rows[i][next_artificial] = Rational::ONE;
                    basis[i] = next_artificial;
                    next_artificial += 1;
                }
                Relation::Eq => {
                    rows[i][next_artificial] = Rational::ONE;
                    basis[i] = next_artificial;
                    next_artificial += 1;
                }
            }
        }

        Tableau {
            rows,
            cost: vec![Rational::ZERO; total_cols - 1],
            cost_rhs: Rational::ZERO,
            basis,
            num_structural: p.num_vars,
            first_artificial,
            total_cols,
            maximize: p.maximize,
            objective: p.objective.clone(),
            pivots: 0,
        }
    }

    fn rhs_col(&self) -> usize {
        self.total_cols - 1
    }

    fn pivot(&mut self, row: usize, col: usize) {
        self.pivots += 1;
        let pivot_val = self.rows[row][col];
        debug_assert!(!pivot_val.is_zero());
        let inv = pivot_val.recip();
        for v in &mut self.rows[row] {
            *v = *v * inv;
        }
        let pivot_row = self.rows[row].clone();
        for (i, r) in self.rows.iter_mut().enumerate() {
            if i == row {
                continue;
            }
            let factor = r[col];
            if factor.is_zero() {
                continue;
            }
            for (v, pv) in r.iter_mut().zip(&pivot_row) {
                *v -= factor * *pv;
            }
        }
        // Cost row.
        let factor = self.cost[col];
        if !factor.is_zero() {
            for j in 0..self.cost.len() {
                self.cost[j] -= factor * pivot_row[j];
            }
            self.cost_rhs -= factor * pivot_row[self.rhs_col()];
        }
        self.basis[row] = col;
    }

    /// Runs simplex iterations until optimal/unbounded. `allowed` masks the
    /// columns permitted to enter the basis. Returns `false` on unbounded.
    fn iterate(&mut self, allowed: &dyn Fn(usize) -> bool) -> bool {
        loop {
            // Bland's rule: smallest index with negative reduced cost.
            let entering = (0..self.cost.len()).find(|&j| allowed(j) && self.cost[j].is_negative());
            let Some(col) = entering else {
                return true; // optimal
            };
            // Ratio test; Bland tie-break on smallest basis variable.
            let rhs_col = self.rhs_col();
            let mut best: Option<(usize, Rational)> = None;
            for i in 0..self.rows.len() {
                let a = self.rows[i][col];
                if a.is_positive() {
                    let ratio = self.rows[i][rhs_col] / a;
                    match best {
                        None => best = Some((i, ratio)),
                        Some((bi, br)) => {
                            if ratio < br || (ratio == br && self.basis[i] < self.basis[bi]) {
                                best = Some((i, ratio));
                            }
                        }
                    }
                }
            }
            match best {
                None => return false, // unbounded
                Some((row, _)) => self.pivot(row, col),
            }
        }
    }

    fn solve(mut self) -> (Solution, u64) {
        let solution = self.solve_inner();
        (solution, self.pivots)
    }

    fn solve_inner(&mut self) -> Solution {
        let rhs_col = self.rhs_col();
        let has_artificials = self.basis.iter().any(|&b| b >= self.first_artificial);

        if has_artificials {
            // Phase 1: minimize the sum of artificial variables.
            for j in self.first_artificial..self.total_cols - 1 {
                self.cost[j] = Rational::ONE;
            }
            // Price out rows whose basic variable is artificial.
            for i in 0..self.rows.len() {
                if self.basis[i] >= self.first_artificial {
                    let row = self.rows[i].clone();
                    for j in 0..self.cost.len() {
                        self.cost[j] -= row[j];
                    }
                    self.cost_rhs -= row[rhs_col];
                }
            }
            let bounded = self.iterate(&|_| true);
            debug_assert!(bounded, "phase-1 objective is bounded below by 0");
            // Optimal phase-1 value = -cost_rhs (cost row tracks -z).
            if !self.cost_rhs.is_zero() {
                return Solution::Infeasible;
            }
            // Drive any remaining artificial variables out of the basis.
            for i in 0..self.rows.len() {
                if self.basis[i] >= self.first_artificial {
                    let col = (0..self.first_artificial).find(|&j| !self.rows[i][j].is_zero());
                    if let Some(col) = col {
                        self.pivot(i, col);
                    }
                    // If no pivot column exists the row is 0 = 0 (redundant);
                    // the artificial stays basic at value 0, which is safe
                    // because artificials are barred from re-entering.
                }
            }
        }

        // Phase 2: the real objective (internally minimized).
        for c in &mut self.cost {
            *c = Rational::ZERO;
        }
        self.cost_rhs = Rational::ZERO;
        for j in 0..self.num_structural {
            self.cost[j] = if self.maximize {
                -self.objective[j]
            } else {
                self.objective[j]
            };
        }
        // Price out current basis.
        for i in 0..self.rows.len() {
            let b = self.basis[i];
            let cb = self.cost[b];
            if !cb.is_zero() {
                let row = self.rows[i].clone();
                for j in 0..self.cost.len() {
                    self.cost[j] -= cb * row[j];
                }
                self.cost_rhs -= cb * row[rhs_col];
            }
        }
        let first_artificial = self.first_artificial;
        let bounded = self.iterate(&|j| j < first_artificial);
        if !bounded {
            return Solution::Unbounded;
        }

        let mut point = vec![Rational::ZERO; self.num_structural];
        for (i, &b) in self.basis.iter().enumerate() {
            if b < self.num_structural {
                point[b] = self.rows[i][rhs_col];
            }
        }
        // Internal min of (±objective); cost_rhs tracks -z.
        let z = -self.cost_rhs;
        let value = if self.maximize { -z } else { z };
        Solution::Optimal { value, point }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i128) -> Rational {
        Rational::integer(n)
    }

    fn rq(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    #[test]
    fn instrumented_solve_reports_pivots() {
        let collector = telemetry::Collector::shared();
        let instr: telemetry::SharedInstrument = collector.clone();
        let mut p = Problem::new(2);
        p.maximize(&[r(3), r(5)]);
        p.add_le(&[r(1), r(0)], r(4));
        p.add_le(&[r(0), r(2)], r(12));
        p.add_le(&[r(3), r(2)], r(18));
        let sol = p.solve_instrumented(&instr);
        assert_eq!(sol, p.solve());
        assert_eq!(collector.counter("lp.solve_calls"), 1);
        assert!(collector.counter("lp.pivots") >= 1);
        assert_eq!(collector.histogram("lp.pivots_per_solve").count(), 1);
    }

    #[test]
    fn classic_max_problem() {
        let mut p = Problem::new(2);
        p.maximize(&[r(3), r(5)]);
        p.add_le(&[r(1), r(0)], r(4));
        p.add_le(&[r(0), r(2)], r(12));
        p.add_le(&[r(3), r(2)], r(18));
        match p.solve() {
            Solution::Optimal { value, point } => {
                assert_eq!(value, r(36));
                assert_eq!(point, vec![r(2), r(6)]);
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn minimization() {
        // min x + y  s.t.  x + y ≥ 2, x ≥ 0, y ≥ 0 → 2.
        let mut p = Problem::new(2);
        p.minimize(&[r(1), r(1)]);
        p.add_ge(&[r(1), r(1)], r(2));
        assert_eq!(p.solve().value(), Some(r(2)));
    }

    #[test]
    fn infeasible_detected() {
        let mut p = Problem::new(1);
        p.maximize(&[r(1)]);
        p.add_le(&[r(1)], r(1));
        p.add_ge(&[r(1)], r(2));
        assert_eq!(p.solve(), Solution::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut p = Problem::new(1);
        p.maximize(&[r(1)]);
        p.add_ge(&[r(1)], r(0));
        assert_eq!(p.solve(), Solution::Unbounded);
    }

    #[test]
    fn equality_constraints() {
        // max x − y  s.t.  x + y = 10, x ≤ 7 → x=7, y=3, value 4.
        let mut p = Problem::new(2);
        p.maximize(&[r(1), r(-1)]);
        p.add_eq(&[r(1), r(1)], r(10));
        p.add_le(&[r(1), r(0)], r(7));
        match p.solve() {
            Solution::Optimal { value, point } => {
                assert_eq!(value, r(4));
                assert_eq!(point, vec![r(7), r(3)]);
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn negative_rhs_is_normalized() {
        // x − y ≤ −1  means  y ≥ x + 1; min y s.t. that and x ≥ 2 → y = 3.
        let mut p = Problem::new(2);
        p.minimize(&[r(0), r(1)]);
        p.add_le(&[r(1), r(-1)], r(-1));
        p.add_ge(&[r(1), r(0)], r(2));
        assert_eq!(p.solve().value(), Some(r(3)));
    }

    #[test]
    fn fractional_optimum_is_exact() {
        // max x  s.t.  3x ≤ 1 → x = 1/3 exactly.
        let mut p = Problem::new(1);
        p.maximize(&[r(1)]);
        p.add_le(&[r(3)], r(1));
        assert_eq!(p.solve().value(), Some(rq(1, 3)));
    }

    /// Beale's classic cycling example must terminate under Bland's rule.
    #[test]
    fn beale_cycling_example_terminates() {
        // min -3/4 x1 + 150 x2 - 1/50 x3 + 6 x4
        // s.t. 1/4 x1 - 60 x2 - 1/25 x3 + 9 x4 ≤ 0
        //      1/2 x1 - 90 x2 - 1/50 x3 + 3 x4 ≤ 0
        //      x3 ≤ 1
        let mut p = Problem::new(4);
        p.minimize(&[rq(-3, 4), r(150), rq(-1, 50), r(6)]);
        p.add_le(&[rq(1, 4), r(-60), rq(-1, 25), r(9)], r(0));
        p.add_le(&[rq(1, 2), r(-90), rq(-1, 50), r(3)], r(0));
        p.add_le(&[r(0), r(0), r(1), r(0)], r(1));
        match p.solve() {
            Solution::Optimal { value, .. } => assert_eq!(value, rq(-1, 20)),
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn pure_feasibility_problem() {
        let mut p = Problem::new(2);
        p.add_eq(&[r(1), r(1)], r(5));
        p.add_ge(&[r(1), r(0)], r(2));
        let sol = p.solve();
        assert!(sol.is_feasible());
        if let Solution::Optimal { point, .. } = sol {
            assert_eq!(point[0] + point[1], r(5));
            assert!(point[0] >= r(2));
        }
    }

    #[test]
    fn redundant_equalities_do_not_break_phase_one() {
        let mut p = Problem::new(2);
        p.maximize(&[r(1), r(0)]);
        p.add_eq(&[r(1), r(1)], r(4));
        p.add_eq(&[r(2), r(2)], r(8)); // redundant copy
        p.add_le(&[r(1), r(0)], r(3));
        assert_eq!(p.solve().value(), Some(r(3)));
    }

    #[test]
    fn solution_point_satisfies_all_constraints() {
        let mut p = Problem::new(3);
        p.maximize(&[r(2), r(3), r(1)]);
        p.add_le(&[r(1), r(1), r(1)], r(10));
        p.add_le(&[r(2), r(1), r(0)], r(8));
        p.add_ge(&[r(0), r(1), r(1)], r(2));
        match p.solve() {
            Solution::Optimal { point, .. } => {
                let dot = |c: &[Rational]| -> Rational {
                    c.iter()
                        .zip(&point)
                        .fold(Rational::ZERO, |acc, (&a, &x)| acc + a * x)
                };
                assert!(dot(&[r(1), r(1), r(1)]) <= r(10));
                assert!(dot(&[r(2), r(1), r(0)]) <= r(8));
                assert!(dot(&[r(0), r(1), r(1)]) >= r(2));
                for &x in &point {
                    assert!(!x.is_negative());
                }
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }
}
