//! Exact rational arithmetic.
//!
//! LPV certificates ("this deadlock marking is unreachable") are only worth
//! anything if the arithmetic backing them is exact, so the simplex solver
//! runs on `i128` rationals, normalized after every operation.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A rational number `num/den` with `den > 0`, always in lowest terms.
///
/// # Panics
///
/// Arithmetic panics on `i128` overflow (beyond any size reached by the LPs
/// in this reproduction) and on division by zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i128,
    den: i128,
}

fn gcd(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Rational {
    /// Zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// One.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Creates `num/den` in lowest terms.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Self {
        assert!(den != 0, "rational with zero denominator");
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd(num, den).max(1);
        Rational {
            num: sign * num / g,
            den: sign * den / g,
        }
    }

    /// Creates the integer `n`.
    pub fn integer(n: i128) -> Self {
        Rational { num: n, den: 1 }
    }

    /// Numerator (sign carrier).
    pub fn numer(self) -> i128 {
        self.num
    }

    /// Denominator (always positive).
    pub fn denom(self) -> i128 {
        self.den
    }

    /// Whether the value is zero.
    pub fn is_zero(self) -> bool {
        self.num == 0
    }

    /// Whether the value is strictly positive.
    pub fn is_positive(self) -> bool {
        self.num > 0
    }

    /// Whether the value is strictly negative.
    pub fn is_negative(self) -> bool {
        self.num < 0
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if the value is zero.
    pub fn recip(self) -> Self {
        assert!(self.num != 0, "reciprocal of zero");
        Rational::new(self.den, self.num)
    }

    /// Approximate `f64` value (for reporting only — never for pivoting).
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// The smaller of two rationals.
    pub fn min(self, other: Self) -> Self {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The larger of two rationals.
    pub fn max(self, other: Self) -> Self {
        if self >= other {
            self
        } else {
            other
        }
    }

    fn checked(num: i128, den: i128) -> Self {
        Rational::new(num, den)
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::ZERO
    }
}

#[allow(clippy::suspicious_arithmetic_impl)]
impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        let g = gcd(self.den, rhs.den).max(1);
        let lcm_part = rhs.den / g;
        let num = self
            .num
            .checked_mul(lcm_part)
            .and_then(|a| rhs.num.checked_mul(self.den / g).map(|b| (a, b)))
            .and_then(|(a, b)| a.checked_add(b))
            .expect("rational addition overflow");
        let den = self
            .den
            .checked_mul(lcm_part)
            .expect("rational addition overflow");
        Rational::checked(num, den)
    }
}

impl AddAssign for Rational {
    fn add_assign(&mut self, rhs: Rational) {
        *self = *self + rhs;
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        self + (-rhs)
    }
}

impl SubAssign for Rational {
    fn sub_assign(&mut self, rhs: Rational) {
        *self = *self - rhs;
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        // Cross-reduce before multiplying to delay overflow.
        let g1 = gcd(self.num, rhs.den).max(1);
        let g2 = gcd(rhs.num, self.den).max(1);
        let num = (self.num / g1)
            .checked_mul(rhs.num / g2)
            .expect("rational multiplication overflow");
        let den = (self.den / g2)
            .checked_mul(rhs.den / g1)
            .expect("rational multiplication overflow");
        Rational::checked(num, den)
    }
}

#[allow(clippy::suspicious_arithmetic_impl)]
impl Div for Rational {
    type Output = Rational;
    fn div(self, rhs: Rational) -> Rational {
        self * rhs.recip()
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b vs c/d  ⟺  a*d vs c*b  (b,d > 0)
        let lhs = self
            .num
            .checked_mul(other.den)
            .expect("rational comparison overflow");
        let rhs = other
            .num
            .checked_mul(self.den)
            .expect("rational comparison overflow");
        lhs.cmp(&rhs)
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl From<i128> for Rational {
    fn from(n: i128) -> Self {
        Rational::integer(n)
    }
}

impl From<i64> for Rational {
    fn from(n: i64) -> Self {
        Rational::integer(n as i128)
    }
}

impl From<u32> for Rational {
    fn from(n: u32) -> Self {
        Rational::integer(n as i128)
    }
}

impl From<i32> for Rational {
    fn from(n: i32) -> Self {
        Rational::integer(n as i128)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    #[test]
    fn normalization() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(-2, -4), r(1, 2));
        assert_eq!(r(2, -4), r(-1, 2));
        assert_eq!(r(0, 5), Rational::ZERO);
        assert_eq!(r(0, 5).denom(), 1);
    }

    #[test]
    fn arithmetic() {
        assert_eq!(r(1, 2) + r(1, 3), r(5, 6));
        assert_eq!(r(1, 2) - r(1, 3), r(1, 6));
        assert_eq!(r(2, 3) * r(3, 4), r(1, 2));
        assert_eq!(r(1, 2) / r(1, 4), r(2, 1));
        assert_eq!(-r(1, 2), r(-1, 2));
    }

    #[test]
    fn comparisons() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < Rational::ZERO);
        assert_eq!(r(3, 6).cmp(&r(1, 2)), Ordering::Equal);
        assert_eq!(r(1, 3).min(r(1, 2)), r(1, 3));
        assert_eq!(r(1, 3).max(r(1, 2)), r(1, 2));
    }

    #[test]
    fn predicates_and_recip() {
        assert!(r(3, 4).is_positive());
        assert!(r(-3, 4).is_negative());
        assert!(Rational::ZERO.is_zero());
        assert_eq!(r(3, 4).recip(), r(4, 3));
        assert_eq!(r(-3, 4).recip(), r(-4, 3));
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = r(1, 0);
    }

    #[test]
    #[should_panic(expected = "reciprocal of zero")]
    fn zero_recip_panics() {
        let _ = Rational::ZERO.recip();
    }

    #[test]
    fn display() {
        assert_eq!(r(3, 1).to_string(), "3");
        assert_eq!(r(-1, 2).to_string(), "-1/2");
    }

    #[test]
    fn f64_projection() {
        assert!((r(1, 4).to_f64() - 0.25).abs() < 1e-12);
    }
}
