//! Petri nets: the abstraction LPV works on.
//!
//! The Symbad flow translates the SystemC model into "an abstract model
//! where communication and synchronization characteristics remain
//! un-abstracted" (§3.1). For the point-to-point dataflow networks of
//! level 1 that abstraction is a *marked graph*: places are channels,
//! transitions are module firings. This module provides the net structure,
//! token-game semantics (used to confirm counterexamples by simulation) and
//! the incidence matrix consumed by the LP encodings in [`crate::lpv`].

use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a place.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PlaceId(pub(crate) usize);

impl PlaceId {
    /// Creates an id from a raw index (for tools addressing places by
    /// registration order).
    pub fn from_index(index: usize) -> Self {
        PlaceId(index)
    }

    /// Raw index in registration order.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Identifier of a transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TransitionId(pub(crate) usize);

impl TransitionId {
    /// Raw index in registration order.
    pub fn index(self) -> usize {
        self.0
    }
}

#[derive(Debug, Clone)]
struct Place {
    name: String,
    initial: u64,
}

#[derive(Debug, Clone)]
struct Transition {
    name: String,
}

/// A place/transition net with weighted arcs and an initial marking.
#[derive(Debug, Clone, Default)]
pub struct PetriNet {
    places: Vec<Place>,
    transitions: Vec<Transition>,
    /// (place, transition, weight): tokens consumed when the transition fires.
    input_arcs: Vec<(PlaceId, TransitionId, u64)>,
    /// (transition, place, weight): tokens produced when the transition fires.
    output_arcs: Vec<(TransitionId, PlaceId, u64)>,
}

impl PetriNet {
    /// Creates an empty net.
    pub fn new() -> Self {
        PetriNet::default()
    }

    /// Adds a place holding `initial` tokens.
    pub fn add_place(&mut self, name: &str, initial: u64) -> PlaceId {
        let id = PlaceId(self.places.len());
        self.places.push(Place {
            name: name.to_owned(),
            initial,
        });
        id
    }

    /// Adds a transition.
    pub fn add_transition(&mut self, name: &str) -> TransitionId {
        let id = TransitionId(self.transitions.len());
        self.transitions.push(Transition {
            name: name.to_owned(),
        });
        id
    }

    /// Adds an arc from `place` to `transition` with the given weight.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is zero.
    pub fn add_input_arc(&mut self, place: PlaceId, transition: TransitionId, weight: u64) {
        assert!(weight > 0, "arc weight must be positive");
        self.input_arcs.push((place, transition, weight));
    }

    /// Adds an arc from `transition` to `place` with the given weight.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is zero.
    pub fn add_output_arc(&mut self, transition: TransitionId, place: PlaceId, weight: u64) {
        assert!(weight > 0, "arc weight must be positive");
        self.output_arcs.push((transition, place, weight));
    }

    /// Convenience: a unit-weight channel place from `producer` to
    /// `consumer` carrying `initial` tokens — exactly how a bounded FIFO of
    /// the simulation model is abstracted.
    pub fn add_channel(
        &mut self,
        name: &str,
        producer: TransitionId,
        consumer: TransitionId,
        initial: u64,
    ) -> PlaceId {
        let p = self.add_place(name, initial);
        self.add_output_arc(producer, p, 1);
        self.add_input_arc(p, consumer, 1);
        p
    }

    /// Number of places.
    pub fn num_places(&self) -> usize {
        self.places.len()
    }

    /// Number of transitions.
    pub fn num_transitions(&self) -> usize {
        self.transitions.len()
    }

    /// Name of a place.
    pub fn place_name(&self, p: PlaceId) -> &str {
        &self.places[p.0].name
    }

    /// Name of a transition.
    pub fn transition_name(&self, t: TransitionId) -> &str {
        &self.transitions[t.0].name
    }

    /// The initial marking.
    pub fn initial_marking(&self) -> Vec<u64> {
        self.places.iter().map(|p| p.initial).collect()
    }

    /// Tokens consumed from each place by `t` (sparse).
    pub fn pre(&self, t: TransitionId) -> BTreeMap<PlaceId, u64> {
        let mut map = BTreeMap::new();
        for &(p, tr, w) in &self.input_arcs {
            if tr == t {
                *map.entry(p).or_insert(0) += w;
            }
        }
        map
    }

    /// Tokens produced into each place by `t` (sparse).
    pub fn post(&self, t: TransitionId) -> BTreeMap<PlaceId, u64> {
        let mut map = BTreeMap::new();
        for &(tr, p, w) in &self.output_arcs {
            if tr == t {
                *map.entry(p).or_insert(0) += w;
            }
        }
        map
    }

    /// The incidence matrix `C[p][t] = post(p,t) − pre(p,t)` as `i64`.
    pub fn incidence(&self) -> Vec<Vec<i64>> {
        let mut c = vec![vec![0i64; self.transitions.len()]; self.places.len()];
        for &(p, t, w) in &self.input_arcs {
            c[p.0][t.0] -= w as i64;
        }
        for &(t, p, w) in &self.output_arcs {
            c[p.0][t.0] += w as i64;
        }
        c
    }

    /// Whether every place has exactly one input arc and one output arc of
    /// weight 1 — the *marked graph* subclass for which the liveness LP of
    /// [`crate::lpv`] is exact.
    pub fn is_marked_graph(&self) -> bool {
        let mut in_deg = vec![0usize; self.places.len()];
        let mut out_deg = vec![0usize; self.places.len()];
        for &(p, _, w) in &self.input_arcs {
            if w != 1 {
                return false;
            }
            out_deg[p.0] += 1;
        }
        for &(_, p, w) in &self.output_arcs {
            if w != 1 {
                return false;
            }
            in_deg[p.0] += 1;
        }
        in_deg.iter().all(|&d| d == 1) && out_deg.iter().all(|&d| d == 1)
    }

    /// Whether `t` is enabled under `marking`.
    pub fn is_enabled(&self, marking: &[u64], t: TransitionId) -> bool {
        self.pre(t).iter().all(|(&p, &w)| marking[p.0] >= w)
    }

    /// Fires `t`, updating `marking`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not enabled.
    pub fn fire(&self, marking: &mut [u64], t: TransitionId) {
        for (&p, &w) in &self.pre(t) {
            assert!(marking[p.0] >= w, "transition not enabled");
            marking[p.0] -= w;
        }
        for (&p, &w) in &self.post(t) {
            marking[p.0] += w;
        }
    }

    /// Deterministic token-game simulation: repeatedly fires the
    /// lowest-index enabled transition, up to `max_steps`. Returns the firing
    /// sequence and the final marking; used by LPV to confirm potential
    /// counterexamples.
    pub fn simulate(&self, max_steps: usize) -> (Vec<TransitionId>, Vec<u64>) {
        let mut marking = self.initial_marking();
        let mut fired = Vec::new();
        for _ in 0..max_steps {
            let next = (0..self.transitions.len())
                .map(TransitionId)
                .find(|&t| self.is_enabled(&marking, t));
            match next {
                None => break,
                Some(t) => {
                    self.fire(&mut marking, t);
                    fired.push(t);
                }
            }
        }
        (fired, marking)
    }

    /// Whether no transition is enabled under `marking`.
    pub fn is_dead(&self, marking: &[u64]) -> bool {
        (0..self.transitions.len())
            .map(TransitionId)
            .all(|t| !self.is_enabled(marking, t))
    }
}

impl fmt::Display for PetriNet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "petri net: {} places, {} transitions",
            self.places.len(),
            self.transitions.len()
        )?;
        for (i, p) in self.places.iter().enumerate() {
            writeln!(f, "  place {} `{}` tokens={}", i, p.name, p.initial)?;
        }
        for (i, t) in self.transitions.iter().enumerate() {
            writeln!(f, "  transition {} `{}`", i, t.name)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A two-stage pipeline: src -> (a) -> mid -> (b) -> sink place.
    fn pipeline() -> (PetriNet, TransitionId, TransitionId) {
        let mut net = PetriNet::new();
        let a = net.add_transition("a");
        let b = net.add_transition("b");
        let src = net.add_place("src", 3);
        net.add_input_arc(src, a, 1);
        net.add_channel("mid", a, b, 0);
        let out = net.add_place("out", 0);
        net.add_output_arc(b, out, 1);
        (net, a, b)
    }

    #[test]
    fn token_game_runs_to_completion() {
        let (net, _, _) = pipeline();
        let (fired, marking) = net.simulate(100);
        assert_eq!(fired.len(), 6); // 3 firings of a + 3 of b
        assert!(net.is_dead(&marking));
        // Indices: src=0, mid=1, out=2 — everything drains into `out`.
        assert_eq!(marking, vec![0, 0, 3]);
    }

    #[test]
    fn enabledness_respects_weights() {
        let mut net = PetriNet::new();
        let t = net.add_transition("t");
        let p = net.add_place("p", 1);
        net.add_input_arc(p, t, 2);
        assert!(!net.is_enabled(&net.initial_marking(), t));
        let mut net2 = PetriNet::new();
        let t2 = net2.add_transition("t");
        let p2 = net2.add_place("p", 2);
        net2.add_input_arc(p2, t2, 2);
        assert!(net2.is_enabled(&net2.initial_marking(), t2));
    }

    #[test]
    fn incidence_matrix() {
        let (net, _, _) = pipeline();
        let c = net.incidence();
        // Place 0 (src): consumed by a.
        assert_eq!(c[0], vec![-1, 0]);
        // Place 1 (mid): produced by a, consumed by b.
        assert_eq!(c[1], vec![1, -1]);
        // Place 2 (out): produced by b.
        assert_eq!(c[2], vec![0, 1]);
    }

    #[test]
    fn marked_graph_detection() {
        let mut net = PetriNet::new();
        let a = net.add_transition("a");
        let b = net.add_transition("b");
        net.add_channel("ab", a, b, 1);
        net.add_channel("ba", b, a, 0);
        assert!(net.is_marked_graph());
        // Adding a second consumer to a place breaks the property.
        let c = net.add_transition("c");
        net.add_input_arc(PlaceId(0), c, 1);
        assert!(!net.is_marked_graph());
    }

    #[test]
    fn names_roundtrip() {
        let mut net = PetriNet::new();
        let t = net.add_transition("camera");
        let p = net.add_place("frame", 0);
        assert_eq!(net.transition_name(t), "camera");
        assert_eq!(net.place_name(p), "frame");
    }

    #[test]
    #[should_panic(expected = "not enabled")]
    fn firing_disabled_transition_panics() {
        let mut net = PetriNet::new();
        let t = net.add_transition("t");
        let p = net.add_place("p", 0);
        net.add_input_arc(p, t, 1);
        let mut m = net.initial_marking();
        net.fire(&mut m, t);
    }
}
