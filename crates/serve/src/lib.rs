//! Verification-as-a-service: a multi-tenant batch server over the flow.
//!
//! [`Service`] turns the library entry point
//! [`symbad_core::flow::run_full_flow_job`] into an operated surface:
//! tenants [`submit`](Service::submit) [`JobSpec`]s through admission
//! control (bounded queue depths, typed [`AdmissionError`]s — overload is
//! an answer, never a panic or a silent drop), a deficit-round-robin
//! scheduler drains the backlog fairly across tenants, every job's
//! verification obligations share one content-addressed
//! [`cache::ObligationCache`], and the whole lifecycle streams onto a
//! [`telemetry::Journal`] as `job_*` events an operator can tail.
//!
//! Three contracts make the service auditable (all pinned by
//! `tests/service_equivalence.rs`):
//!
//! 1. **Single-job transparency** — a service running one default job
//!    produces a [`FlowReport`] bit-identical to calling
//!    [`symbad_core::flow::run_full_flow_supervised`] directly.
//! 2. **Batch determinism** — per-job reports depend only on the job's
//!    spec: admission order, tenant mix, worker count and cache warmth
//!    never change a verdict (see `docs/SERVICE.md` for the soundness
//!    argument).
//! 3. **Fairness** — a tenant with one queued job is served within one
//!    round-robin round regardless of how many jobs the others queued.
//!
//! The service is deliberately `!Sync`: one coordinator thread owns the
//! queue and the journal, and parallelism lives *inside* each job
//! ([`exec::ExecMode`] fans the verification obligations out across
//! workers). That keeps the journal's deterministic lane an ordered,
//! replayable record — the property every downstream tool
//! ([`telemetry::FlowProfile`], the flight-recorder CLI) builds on.
//!
//! ```
//! use serve::{Service, ServiceConfig};
//! use symbad_core::job::JobSpec;
//!
//! let mut service = Service::new(ServiceConfig::default());
//! service.submit("acme", JobSpec::default()).expect("queue has room");
//! let batch = service.drain();
//! assert_eq!(batch.records.len(), 1);
//! assert!(batch.records[0].report().expect("job completed").all_ok());
//! ```

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::time::Instant;

use symbad_core::flow::{self, FlowReport};
use symbad_core::job::JobSpec;

/// Admission and scheduling knobs of a [`Service`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Maximum queued jobs across all tenants; further submissions get
    /// [`AdmissionError::QueueFull`].
    pub queue_depth: usize,
    /// Maximum queued jobs per tenant; further submissions from that
    /// tenant get [`AdmissionError::TenantQueueFull`].
    pub tenant_depth: usize,
    /// Deficit-round-robin quantum, in job-cost units granted to each
    /// backlogged tenant per round (see [`exec::DrrScheduler`]).
    pub quantum: u64,
    /// Execution mode for each job's verification obligations (the jobs
    /// themselves run one at a time on the coordinator thread).
    pub mode: exec::ExecMode,
    /// Whether per-job wall latencies are measured and emitted on the
    /// journals' timing lanes. Off by default: the deterministic lane
    /// stays complete without it, and leaving it off keeps every journal
    /// byte reproducible.
    pub wall_clock: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            queue_depth: 64,
            tenant_depth: 16,
            quantum: 4,
            mode: exec::ExecMode::Sequential,
            wall_clock: false,
        }
    }
}

/// Why a submission was refused. Admission control answers with a typed
/// error — the queue never panics and never silently drops a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionError {
    /// The service-wide queue is at capacity.
    QueueFull {
        /// Jobs currently queued.
        queued: usize,
        /// Configured service-wide bound.
        queue_depth: usize,
    },
    /// The submitting tenant's own queue is at capacity.
    TenantQueueFull {
        /// The tenant.
        tenant: String,
        /// Jobs the tenant has queued.
        queued: usize,
        /// Configured per-tenant bound.
        tenant_depth: usize,
    },
    /// The tenant label was empty — jobs must be attributable.
    EmptyTenant,
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::QueueFull {
                queued,
                queue_depth,
            } => {
                write!(f, "service queue full ({queued}/{queue_depth})")
            }
            AdmissionError::TenantQueueFull {
                tenant,
                queued,
                tenant_depth,
            } => write!(f, "tenant {tenant} queue full ({queued}/{tenant_depth})"),
            AdmissionError::EmptyTenant => write!(f, "tenant label must be non-empty"),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Stable identity of an admitted job, unique within its [`Service`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(u64);

impl JobId {
    /// The journal label of this job (`job-0001`, `job-0002`, …).
    pub fn label(&self) -> String {
        format!("job-{:04}", self.0)
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// How one job ended.
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutcome {
    /// The flow ran to completion (its report may still contain failing
    /// phases — that is a verification verdict, not a service failure).
    Completed(FlowReport),
    /// The flow itself failed: a simulation kernel error or a panic that
    /// escaped obligation-level supervision. Isolated to this job; the
    /// service keeps serving.
    Failed {
        /// Deterministic one-line description.
        error: String,
    },
}

/// Everything the service retains about one executed job.
#[derive(Debug)]
pub struct JobRecord {
    /// The job's service-assigned identity.
    pub id: JobId,
    /// Tenant that submitted the job.
    pub tenant: String,
    /// The spec as submitted.
    pub spec: JobSpec,
    /// How the job ended.
    pub outcome: JobOutcome,
    /// The job's private flight recorder: phases, obligation lifecycle,
    /// effort attribution — [`telemetry::FlowProfile::from_journal`]
    /// aggregates it.
    pub journal: telemetry::Journal,
    /// Wall latency of the job in microseconds; 0 unless
    /// [`ServiceConfig::wall_clock`] is on.
    pub wall_us: u64,
}

impl JobRecord {
    /// The flow report, when the job completed.
    pub fn report(&self) -> Option<&FlowReport> {
        match &self.outcome {
            JobOutcome::Completed(report) => Some(report),
            JobOutcome::Failed { .. } => None,
        }
    }

    /// Cost-attribution profile aggregated from the job's journal.
    pub fn profile(&self) -> telemetry::FlowProfile {
        telemetry::FlowProfile::from_journal(&self.journal)
    }

    /// Finished verification obligations recorded in the job's journal.
    pub fn obligations(&self) -> u64 {
        self.journal
            .events()
            .iter()
            .filter(|e| matches!(e.kind, telemetry::EventKind::ObligationFinished(_)))
            .count() as u64
    }
}

/// Aggregate statistics of one [`Service::drain`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchStats {
    /// Jobs executed in this batch.
    pub jobs: u64,
    /// Jobs whose flow ran to completion.
    pub completed: u64,
    /// Jobs that failed (kernel error or escaped panic).
    pub failed: u64,
    /// Verification obligations finished across the batch.
    pub obligations: u64,
    /// Total wall time of the batch in microseconds (0 with the wall
    /// clock off).
    pub wall_us: u64,
    /// Per-job wall-latency distribution (all zeros with the wall clock
    /// off).
    pub latency: telemetry::HistogramSummary,
    /// Sustained obligations per second over the batch (0.0 with the
    /// wall clock off).
    pub obligations_per_sec: f64,
}

/// The result of draining the queue: per-job records in dispatch order,
/// plus batch aggregates.
#[derive(Debug)]
pub struct BatchReport {
    /// Executed jobs, in the deterministic DRR dispatch order.
    pub records: Vec<JobRecord>,
    /// Aggregates over `records`.
    pub stats: BatchStats,
}

impl BatchReport {
    /// Whether every job completed with every flow phase passing.
    pub fn all_ok(&self) -> bool {
        self.records
            .iter()
            .all(|r| r.report().is_some_and(FlowReport::all_ok))
    }
}

/// One queued job.
#[derive(Debug)]
struct QueuedJob {
    id: JobId,
    spec: JobSpec,
}

/// A multi-tenant batch verification service over the full flow.
///
/// See the [crate docs](crate) for the contracts and a quickstart. The
/// service owns its obligation cache, its journal and its queue; it is
/// intentionally not `Sync` — one coordinator thread drives it, and
/// parallelism lives inside each job via [`ServiceConfig::mode`].
#[derive(Debug)]
pub struct Service {
    config: ServiceConfig,
    cache: cache::ObligationCache,
    journal: telemetry::Journal,
    instrument: telemetry::SharedInstrument,
    queue: exec::DrrScheduler<QueuedJob>,
    queued_per_tenant: BTreeMap<String, usize>,
    next_id: u64,
    admissions: u64,
}

impl Service {
    /// An empty service with a cold cache and a fresh journal.
    pub fn new(config: ServiceConfig) -> Self {
        let journal = if config.wall_clock {
            telemetry::Journal::with_wall_clock()
        } else {
            telemetry::Journal::new()
        };
        Service {
            config,
            cache: cache::ObligationCache::new(),
            journal,
            instrument: telemetry::noop(),
            queue: exec::DrrScheduler::new(config.quantum),
            queued_per_tenant: BTreeMap::new(),
            next_id: 1,
            admissions: 0,
        }
    }

    /// Replaces the (default no-op) instrument the service emits
    /// `service.*` counters/gauges on and runs every job's flow under.
    #[must_use]
    pub fn with_instrument(mut self, instrument: telemetry::SharedInstrument) -> Self {
        self.instrument = instrument;
        self
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The shared obligation cache (for persistence via
    /// [`cache::ObligationCache::save`], or inspection).
    pub fn cache(&self) -> &cache::ObligationCache {
        &self.cache
    }

    /// The service journal carrying the `job_*` lifecycle events.
    pub fn journal(&self) -> &telemetry::Journal {
        &self.journal
    }

    /// Drains journal lines appended since the last call — the streaming
    /// surface an operator tails into a log file (each line passes
    /// [`telemetry::journal::validate_line`]).
    pub fn flush_events(&self) -> String {
        self.journal.flush_new()
    }

    /// Jobs currently queued across all tenants.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Queued jobs per tenant, in round-robin order.
    pub fn backlog(&self) -> Vec<(String, usize)> {
        self.queue.backlog()
    }

    /// Per-tenant cache traffic (hits/misses/inserts attributed to the
    /// tenant whose job was running), sorted by tenant.
    pub fn tenant_cache_stats(&self) -> Vec<(String, cache::TagStats)> {
        self.cache.stats_by_tenant()
    }

    /// Per-tenant count of cache hits served from entries another tenant
    /// inserted — the measure of cross-tenant sharing.
    pub fn cross_tenant_hits(&self) -> Vec<(String, u64)> {
        self.cache.cross_tenant_hits()
    }

    /// Submits a job for `tenant`, returning its [`JobId`] or a typed
    /// [`AdmissionError`]. Every decision lands on the journal
    /// (`job_admitted` / `job_rejected`).
    ///
    /// # Errors
    ///
    /// [`AdmissionError::EmptyTenant`] for an empty tenant label,
    /// [`AdmissionError::TenantQueueFull`] /
    /// [`AdmissionError::QueueFull`] at the configured bounds.
    pub fn submit(&mut self, tenant: &str, spec: JobSpec) -> Result<JobId, AdmissionError> {
        let err = if tenant.is_empty() {
            Some(AdmissionError::EmptyTenant)
        } else {
            let tenant_queued = self.queued_per_tenant.get(tenant).copied().unwrap_or(0);
            if tenant_queued >= self.config.tenant_depth {
                Some(AdmissionError::TenantQueueFull {
                    tenant: tenant.to_owned(),
                    queued: tenant_queued,
                    tenant_depth: self.config.tenant_depth,
                })
            } else if self.queue.len() >= self.config.queue_depth {
                Some(AdmissionError::QueueFull {
                    queued: self.queue.len(),
                    queue_depth: self.config.queue_depth,
                })
            } else {
                None
            }
        };
        if let Some(err) = err {
            self.journal.emit(telemetry::EventKind::JobRejected {
                tenant: tenant.to_owned(),
                reason: err.to_string(),
            });
            self.instrument.counter_add("service.jobs_rejected", 1);
            return Err(err);
        }

        let id = JobId(self.next_id);
        self.next_id += 1;
        let cost = spec.cost();
        self.queue.push(tenant, cost, QueuedJob { id, spec });
        *self.queued_per_tenant.entry(tenant.to_owned()).or_insert(0) += 1;
        self.journal.emit(telemetry::EventKind::JobAdmitted {
            job: id.label(),
            tenant: tenant.to_owned(),
            cost,
        });
        self.instrument.counter_add("service.jobs_admitted", 1);
        self.admissions += 1;
        self.instrument.gauge_set(
            "service.queue_depth",
            self.admissions,
            self.queue.len() as i64,
        );
        Ok(id)
    }

    /// Runs the next job in fair-queue order, or returns `None` when the
    /// queue is empty. The job's flow executes panic-isolated on this
    /// thread; its obligations fan out per [`ServiceConfig::mode`] and
    /// consult the shared cache under the tenant's attribution.
    pub fn run_next(&mut self) -> Option<JobRecord> {
        let (tenant, job) = self.queue.pop()?;
        if let Some(n) = self.queued_per_tenant.get_mut(&tenant) {
            *n = n.saturating_sub(1);
        }
        self.journal.emit(telemetry::EventKind::JobStarted {
            job: job.id.label(),
            tenant: tenant.clone(),
        });

        let job_journal = if self.config.wall_clock {
            telemetry::Journal::with_wall_clock()
        } else {
            telemetry::Journal::new()
        };
        self.cache.set_tenant(Some(&tenant));
        let started = Instant::now();
        let run = panic::catch_unwind(AssertUnwindSafe(|| {
            flow::run_full_flow_job_journaled(
                &job.spec,
                &self.instrument,
                self.config.mode,
                &self.cache,
                &job_journal,
            )
        }));
        let wall_us = if self.config.wall_clock {
            started.elapsed().as_micros() as u64
        } else {
            0
        };
        self.cache.set_tenant(None);

        let outcome = match run {
            Ok(Ok(report)) => JobOutcome::Completed(report),
            Ok(Err(sim_err)) => JobOutcome::Failed {
                error: format!("simulation error: {sim_err:?}"),
            },
            Err(payload) => JobOutcome::Failed {
                error: format!("panicked: {}", exec::panic_message(payload)),
            },
        };

        // Mirror the job's obligation completions onto the service lane,
        // in the job journal's deterministic order.
        let mut obligations = 0u64;
        for event in job_journal.events() {
            if let telemetry::EventKind::ObligationFinished(p) = &event.kind {
                obligations += 1;
                self.journal.emit(telemetry::EventKind::JobObligationDone {
                    job: job.id.label(),
                    obligation: p.obligation.clone(),
                    outcome: p.outcome.clone(),
                });
            }
        }
        if obligations > 0 {
            self.instrument
                .counter_add("service.obligations_completed", obligations);
        }

        let (ok, conclusive) = match &outcome {
            JobOutcome::Completed(report) => (report.all_ok(), report.conclusive()),
            JobOutcome::Failed { .. } => (false, false),
        };
        self.journal.emit(telemetry::EventKind::JobFinished {
            job: job.id.label(),
            tenant: tenant.clone(),
            ok,
            conclusive,
        });
        if self.config.wall_clock {
            self.journal.emit_timing(telemetry::TimingKind::JobWall {
                job: job.id.label(),
                wall_us,
            });
        }
        match &outcome {
            JobOutcome::Completed(_) => self.instrument.counter_add("service.jobs_completed", 1),
            JobOutcome::Failed { .. } => self.instrument.counter_add("service.jobs_failed", 1),
        }

        Some(JobRecord {
            id: job.id,
            tenant,
            spec: job.spec,
            outcome,
            journal: job_journal,
            wall_us,
        })
    }

    /// Runs every queued job in fair-queue order and returns the batch:
    /// per-job records plus latency/throughput aggregates.
    pub fn drain(&mut self) -> BatchReport {
        let cross_before: u64 = self.cross_tenant_hits().iter().map(|(_, n)| n).sum();
        let mut records = Vec::new();
        let mut latency = telemetry::Histogram::new();
        while let Some(record) = self.run_next() {
            latency.record(record.wall_us);
            records.push(record);
        }
        let cross_after: u64 = self.cross_tenant_hits().iter().map(|(_, n)| n).sum();
        if cross_after > cross_before {
            self.instrument.counter_add(
                "service.cross_tenant_cache_hits",
                cross_after - cross_before,
            );
        }

        let jobs = records.len() as u64;
        let completed = records
            .iter()
            .filter(|r| matches!(r.outcome, JobOutcome::Completed(_)))
            .count() as u64;
        let obligations: u64 = records.iter().map(JobRecord::obligations).sum();
        let wall_us: u64 = records.iter().map(|r| r.wall_us).sum();
        let obligations_per_sec = if wall_us > 0 {
            obligations as f64 * 1_000_000.0 / wall_us as f64
        } else {
            0.0
        };
        BatchReport {
            stats: BatchStats {
                jobs,
                completed,
                failed: jobs - completed,
                obligations,
                wall_us,
                latency: latency.summary(),
                obligations_per_sec,
            },
            records,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_spec() -> JobSpec {
        // A deliberately tiny design: one probe over a 2-identity
        // gallery keeps the simulation levels cheap in debug tests.
        let mut spec = JobSpec::default();
        spec.design.dataset.identities = 2;
        spec.design.probes = 1;
        spec
    }

    #[test]
    fn lifecycle_events_land_on_the_journal_in_order() {
        let mut service = Service::new(ServiceConfig::default());
        let id = service.submit("acme", quick_spec()).expect("admitted");
        assert_eq!(id.label(), "job-0001");
        assert_eq!(service.queue_len(), 1);
        let record = service.run_next().expect("one job queued");
        assert_eq!(record.id, id);
        assert_eq!(record.tenant, "acme");
        assert!(record.report().expect("completed").all_ok());
        assert!(record.obligations() > 0);
        assert!(service.run_next().is_none());

        let labels: Vec<&'static str> = service
            .journal()
            .events()
            .iter()
            .map(|e| e.kind.label())
            .collect();
        assert_eq!(labels.first(), Some(&"job_admitted"));
        assert_eq!(labels.get(1), Some(&"job_started"));
        assert_eq!(labels.last(), Some(&"job_finished"));
        assert!(
            labels
                .iter()
                .filter(|l| **l == "job_obligation_done")
                .count()
                > 0
        );
        // Every streamed line is schema-valid.
        for line in service.journal().deterministic_jsonl().lines() {
            telemetry::journal::validate_line(line).expect("valid journal line");
        }
    }

    #[test]
    fn admission_errors_are_typed_and_journaled() {
        let mut service = Service::new(ServiceConfig {
            queue_depth: 2,
            tenant_depth: 1,
            ..ServiceConfig::default()
        });
        assert_eq!(
            service.submit("", quick_spec()),
            Err(AdmissionError::EmptyTenant)
        );
        service.submit("a", quick_spec()).expect("admitted");
        assert_eq!(
            service.submit("a", quick_spec()),
            Err(AdmissionError::TenantQueueFull {
                tenant: "a".to_owned(),
                queued: 1,
                tenant_depth: 1,
            })
        );
        service.submit("b", quick_spec()).expect("admitted");
        assert_eq!(
            service.submit("c", quick_spec()),
            Err(AdmissionError::QueueFull {
                queued: 2,
                queue_depth: 2,
            })
        );
        let rejected = service
            .journal()
            .events()
            .iter()
            .filter(|e| e.kind.label() == "job_rejected")
            .count();
        assert_eq!(rejected, 3);
        // The queue still drains normally after rejections.
        let batch = service.drain();
        assert_eq!(batch.stats.jobs, 2);
        assert_eq!(batch.stats.failed, 0);
    }

    #[test]
    fn drain_serves_tenants_fairly() {
        // Quantum 1: each backlogged tenant gets one cost unit per round.
        let mut service = Service::new(ServiceConfig {
            quantum: 1,
            ..ServiceConfig::default()
        });
        for _ in 0..3 {
            service.submit("heavy", quick_spec()).expect("admitted");
        }
        service.submit("light", quick_spec()).expect("admitted");
        let batch = service.drain();
        let tenants: Vec<&str> = batch.records.iter().map(|r| r.tenant.as_str()).collect();
        // DRR: the light tenant is served in the first round, not last.
        assert_eq!(tenants[1], "light");
        assert!(batch.all_ok());
    }
}
