//! SymbC: formal consistency checking of reconfiguration-instrumented SW.
//!
//! Level 3 of the Symbad flow instruments the embedded software with FPGA
//! reconfiguration calls. SymbC verifies the fundamental consistency
//! property the paper states verbatim: *"each time the software requires a
//! hardware resource of the reconfigurable part, this resource is actually
//! available"* — producing either *"a certificate of consistency (proving
//! formally that any function is only invoked when it is present in the
//! FPGA) or a counter-example showing a problem."*
//!
//! The engine is an abstract interpretation over the structured control
//! flow of the software (a `behav` [`Function`]): the abstract state is the
//! set of configurations possibly loaded (`⊥` = nothing loaded yet), joins
//! at branch merges are set unions, and loops run to a fixpoint — the
//! lattice is finite, so termination is guaranteed. The analysis is
//! *sound*: every concrete execution's configuration is contained in the
//! abstract set, so a certificate covers all paths, including ones no
//! simulation would try. Data-dependent branches make it conservative: a
//! reported violation on a semantically dead path is possible, which is
//! why each violation carries a best-effort concrete witness.
//!
//! # Example
//!
//! ```
//! use behav::{ConfigId, Expr, FunctionBuilder};
//! use symbc::{check, ConfigMap};
//!
//! let mut map = ConfigMap::new();
//! let cfg1 = map.add_config("config1");
//! map.add_function(cfg1, "distance");
//!
//! let mut fb = FunctionBuilder::new("sw", 8);
//! fb.reconfigure(cfg1);
//! fb.resource_call("distance", vec![], None);
//! fb.ret(Expr::constant(0, 8));
//! let sw = fb.build();
//! assert!(check(&sw, &map).is_consistent());
//! ```

use behav::{CondId, ConfigId, Function, Stmt, StmtId};
use std::collections::BTreeSet;
use std::fmt;

/// The configuration table: which FPGA function is present in which
/// configuration (the paper's "configuration information" input to SymbC).
#[derive(Debug, Clone, Default)]
pub struct ConfigMap {
    configs: Vec<(String, BTreeSet<String>)>,
}

impl ConfigMap {
    /// Creates an empty table.
    pub fn new() -> Self {
        ConfigMap::default()
    }

    /// Declares a configuration (context); returns its id.
    pub fn add_config(&mut self, name: &str) -> ConfigId {
        self.configs.push((name.to_owned(), BTreeSet::new()));
        ConfigId((self.configs.len() - 1) as u32)
    }

    /// Declares that `func` is implemented in configuration `config`.
    ///
    /// # Panics
    ///
    /// Panics if `config` was not declared.
    pub fn add_function(&mut self, config: ConfigId, func: &str) {
        self.configs[config.index()].1.insert(func.to_owned());
    }

    /// Whether `func` is available in `config`.
    pub fn provides(&self, config: ConfigId, func: &str) -> bool {
        self.configs
            .get(config.index())
            .map(|(_, fs)| fs.contains(func))
            .unwrap_or(false)
    }

    /// Name of a configuration.
    pub fn config_name(&self, config: ConfigId) -> &str {
        &self.configs[config.index()].0
    }

    /// Number of declared configurations.
    pub fn num_configs(&self) -> usize {
        self.configs.len()
    }

    /// All configurations providing `func`.
    pub fn configs_providing(&self, func: &str) -> Vec<ConfigId> {
        (0..self.configs.len())
            .filter(|&i| self.configs[i].1.contains(func))
            .map(|i| ConfigId(i as u32))
            .collect()
    }
}

/// Abstract configuration state: the set of configurations possibly loaded.
/// `None` represents "nothing loaded yet".
pub type AbstractConfig = BTreeSet<Option<ConfigId>>;

/// One consistency violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The offending resource-call statement.
    pub stmt: StmtId,
    /// The required FPGA function.
    pub func: String,
    /// Configurations under which the call may execute while the function
    /// is absent (`None` = no configuration loaded at all).
    pub offending: Vec<Option<ConfigId>>,
    /// A concrete branch-decision witness `(condition, direction)` leading
    /// to the violation, when the bounded path search found one.
    pub witness: Option<Vec<(CondId, bool)>>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "resource `{}` called at statement {} while possibly unavailable",
            self.func,
            self.stmt.index()
        )
    }
}

/// The consistency certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// Resource calls proven consistent.
    pub checked_calls: usize,
    /// Reconfiguration statements encountered.
    pub reconfigurations: usize,
}

/// Result of a SymbC run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Every resource call is provably consistent on every path.
    Consistent(Certificate),
    /// At least one call may execute with its function unavailable.
    Inconsistent(Vec<Violation>),
}

impl Verdict {
    /// Whether consistency was certified.
    pub fn is_consistent(&self) -> bool {
        matches!(self, Verdict::Consistent(_))
    }
}

/// Checks the consistency property on instrumented software.
pub fn check(program: &Function, map: &ConfigMap) -> Verdict {
    let mut analysis = Analysis {
        map,
        violations: Vec::new(),
        checked_calls: 0,
        reconfigurations: 0,
    };
    let mut init: AbstractConfig = BTreeSet::new();
    init.insert(None);
    analysis.block(program.body(), Some(init));
    if analysis.violations.is_empty() {
        Verdict::Consistent(Certificate {
            checked_calls: analysis.checked_calls,
            reconfigurations: analysis.reconfigurations,
        })
    } else {
        // Attach best-effort concrete witnesses.
        let mut violations = analysis.violations;
        for v in &mut violations {
            v.witness = find_witness(program, map, v.stmt);
        }
        Verdict::Inconsistent(violations)
    }
}

struct Analysis<'m> {
    map: &'m ConfigMap,
    violations: Vec<Violation>,
    checked_calls: usize,
    reconfigurations: usize,
}

impl Analysis<'_> {
    /// Executes a block abstractly. `state = None` means the block is
    /// unreachable (all paths already returned). Returns the state at the
    /// block's fall-through exit (`None` when every path returns inside).
    fn block(
        &mut self,
        stmts: &[Stmt],
        mut state: Option<AbstractConfig>,
    ) -> Option<AbstractConfig> {
        for s in stmts {
            state = self.stmt(s, state);
            if state.is_none() {
                break;
            }
        }
        state
    }

    fn stmt(&mut self, s: &Stmt, state: Option<AbstractConfig>) -> Option<AbstractConfig> {
        let state = state?;
        match s {
            Stmt::Reconfigure { config, .. } => {
                self.reconfigurations += 1;
                let mut next = BTreeSet::new();
                next.insert(Some(*config));
                Some(next)
            }
            Stmt::ResourceCall { id, func, .. } => {
                self.checked_calls += 1;
                let offending: Vec<Option<ConfigId>> = state
                    .iter()
                    .filter(|c| match c {
                        None => true,
                        Some(cfg) => !self.map.provides(*cfg, func),
                    })
                    .copied()
                    .collect();
                if !offending.is_empty() {
                    // Dedupe on (stmt, func).
                    if !self
                        .violations
                        .iter()
                        .any(|v| v.stmt == *id && v.func == *func)
                    {
                        self.violations.push(Violation {
                            stmt: *id,
                            func: func.clone(),
                            offending,
                            witness: None,
                        });
                    }
                }
                Some(state)
            }
            Stmt::If { then_, else_, .. } => {
                let t = self.block(then_, Some(state.clone()));
                let e = self.block(else_, Some(state));
                join_opt(t, e)
            }
            Stmt::While { body, .. } => {
                // Fixpoint over the finite powerset lattice. Violations are
                // deduplicated, so re-running the body is harmless.
                let mut entry = state;
                loop {
                    let exit = self.block(body, Some(entry.clone()));
                    let joined = match exit {
                        None => entry.clone(), // body always returns: loop runs ≤ once
                        Some(x) => entry.union(&x).copied().collect(),
                    };
                    if joined == entry {
                        break;
                    }
                    entry = joined;
                }
                Some(entry)
            }
            Stmt::Return { .. } => None,
            Stmt::Assign { .. } | Stmt::Store { .. } => Some(state),
        }
    }
}

fn join_opt(a: Option<AbstractConfig>, b: Option<AbstractConfig>) -> Option<AbstractConfig> {
    match (a, b) {
        (None, x) | (x, None) => x,
        (Some(x), Some(y)) => Some(x.union(&y).copied().collect()),
    }
}

/// Bounded DFS over branch decisions (loops tried for 0, 1 and 2
/// iterations — two suffice to expose config cycling) looking for a
/// concrete path on which the call at `target` executes with its function
/// unavailable. The path is control-flow-feasible by construction but may
/// be data-infeasible; soundness lives in the abstract analysis, the
/// witness is a debugging aid.
fn find_witness(
    program: &Function,
    map: &ConfigMap,
    target: StmtId,
) -> Option<Vec<(CondId, bool)>> {
    let mut path = Vec::new();
    let mut stack: Vec<(&[Stmt], usize)> = vec![(program.body(), 0)];
    if dfs(&mut stack, map, target, None, &mut path, 0) {
        Some(path)
    } else {
        None
    }
}

/// Executes the continuation `stack` (frames of `(block, next index)`),
/// branching on every `If`/`While`. Returns `true` when the target call is
/// reached with its function unavailable; `path` then holds the decisions.
fn dfs(
    stack: &mut Vec<(&[Stmt], usize)>,
    map: &ConfigMap,
    target: StmtId,
    mut config: Option<ConfigId>,
    path: &mut Vec<(CondId, bool)>,
    depth: u32,
) -> bool {
    if depth > 64 {
        return false;
    }
    loop {
        let Some(&(stmts, idx)) = stack.last() else {
            return false;
        };
        if idx >= stmts.len() {
            stack.pop();
            continue;
        }
        stack.last_mut().expect("non-empty").1 = idx + 1;
        match &stmts[idx] {
            Stmt::Reconfigure { config: c, .. } => config = Some(*c),
            Stmt::ResourceCall { id, func, .. } => {
                if *id == target {
                    let unavailable = match config {
                        None => true,
                        Some(cfg) => !map.provides(cfg, func),
                    };
                    if unavailable {
                        return true;
                    }
                }
            }
            Stmt::Return { .. } => return false,
            Stmt::Assign { .. } | Stmt::Store { .. } => {}
            Stmt::If {
                cond_id,
                then_,
                else_,
                ..
            } => {
                for (dir, arm) in [(true, then_), (false, else_)] {
                    let mut branch_stack = stack.clone();
                    branch_stack.push((arm, 0));
                    path.push((*cond_id, dir));
                    if dfs(&mut branch_stack, map, target, config, path, depth + 1) {
                        return true;
                    }
                    path.pop();
                }
                return false;
            }
            Stmt::While { cond_id, body, .. } => {
                for iters in [0usize, 1, 2] {
                    let mut branch_stack = stack.clone();
                    // Stacked frames run the body `iters` times in sequence
                    // before falling back to the parent frame.
                    for _ in 0..iters {
                        branch_stack.push((body, 0));
                    }
                    let mark = path.len();
                    for _ in 0..iters {
                        path.push((*cond_id, true));
                    }
                    path.push((*cond_id, false));
                    if dfs(&mut branch_stack, map, target, config, path, depth + 1) {
                        return true;
                    }
                    path.truncate(mark);
                }
                return false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use behav::{Expr, FunctionBuilder};

    /// The paper's configuration split: DISTANCE in config1, ROOT in
    /// config2.
    fn paper_map() -> (ConfigMap, ConfigId, ConfigId) {
        let mut map = ConfigMap::new();
        let c1 = map.add_config("config1");
        let c2 = map.add_config("config2");
        map.add_function(c1, "distance");
        map.add_function(c1, "calcdist");
        map.add_function(c2, "root");
        (map, c1, c2)
    }

    #[test]
    fn correctly_instrumented_sw_is_certified() {
        let (map, c1, c2) = paper_map();
        let mut fb = FunctionBuilder::new("sw", 16);
        let d = fb.local("d", 16);
        fb.reconfigure(c1);
        fb.resource_call("distance", vec![Expr::constant(3, 16)], Some(d));
        fb.reconfigure(c2);
        fb.resource_call("root", vec![Expr::var(d)], Some(d));
        fb.ret(Expr::var(d));
        let sw = fb.build();
        match check(&sw, &map) {
            Verdict::Consistent(cert) => {
                assert_eq!(cert.checked_calls, 2);
                assert_eq!(cert.reconfigurations, 2);
            }
            Verdict::Inconsistent(v) => panic!("expected certificate, got {v:?}"),
        }
    }

    #[test]
    fn missing_reconfiguration_is_reported() {
        let (map, c1, _) = paper_map();
        let mut fb = FunctionBuilder::new("sw", 16);
        let d = fb.local("d", 16);
        fb.reconfigure(c1);
        fb.resource_call("distance", vec![], Some(d));
        // BUG: root needs config2 but config1 is still loaded.
        fb.resource_call("root", vec![Expr::var(d)], Some(d));
        fb.ret(Expr::var(d));
        let sw = fb.build();
        match check(&sw, &map) {
            Verdict::Inconsistent(violations) => {
                assert_eq!(violations.len(), 1);
                assert_eq!(violations[0].func, "root");
                assert_eq!(violations[0].offending, vec![Some(c1)]);
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn call_before_any_reconfiguration_is_reported() {
        let (map, _, _) = paper_map();
        let mut fb = FunctionBuilder::new("sw", 16);
        fb.resource_call("distance", vec![], None);
        fb.ret(Expr::constant(0, 16));
        let sw = fb.build();
        match check(&sw, &map) {
            Verdict::Inconsistent(violations) => {
                assert_eq!(violations[0].offending, vec![None]);
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn branch_local_reconfiguration_leaks_into_join() {
        let (map, c1, c2) = paper_map();
        let mut fb = FunctionBuilder::new("sw", 16);
        let x = fb.param("x", 16);
        fb.reconfigure(c1);
        fb.if_(Expr::gt(Expr::var(x), Expr::constant(5, 16)), |t| {
            t.reconfigure(c2);
            t.resource_call("root", vec![], None);
        });
        // After the if, the loaded config may be config1 OR config2:
        // calling distance here is only valid under config1 → violation.
        fb.resource_call("distance", vec![], None);
        fb.ret(Expr::constant(0, 16));
        let sw = fb.build();
        match check(&sw, &map) {
            Verdict::Inconsistent(violations) => {
                assert_eq!(violations.len(), 1);
                assert_eq!(violations[0].func, "distance");
                assert_eq!(violations[0].offending, vec![Some(c2)]);
                assert!(violations[0].witness.is_some());
                // The witness takes the then-branch.
                let w = violations[0].witness.as_ref().unwrap();
                assert!(w[0].1);
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn reconfiguration_in_both_arms_is_fine() {
        let (map, c1, c2) = paper_map();
        let mut fb = FunctionBuilder::new("sw", 16);
        let x = fb.param("x", 16);
        fb.if_else(
            Expr::gt(Expr::var(x), Expr::constant(5, 16)),
            |t| t.reconfigure(c2),
            |e| e.reconfigure(c2),
        );
        fb.resource_call("root", vec![], None);
        let _ = c1;
        fb.ret(Expr::constant(0, 16));
        let sw = fb.build();
        assert!(check(&sw, &map).is_consistent());
    }

    #[test]
    fn loop_carried_configuration_is_caught_by_fixpoint() {
        // Loop body: call distance (needs c1), then switch to c2 for root.
        // First iteration enters with c1 (fine); the second enters with c2
        // → distance call is inconsistent. Only the fixpoint sees this.
        let (map, c1, c2) = paper_map();
        let mut fb = FunctionBuilder::new("sw", 16);
        let i = fb.local("i", 16);
        fb.reconfigure(c1);
        fb.while_(Expr::lt(Expr::var(i), Expr::constant(10, 16)), |b| {
            b.resource_call("distance", vec![], None);
            b.reconfigure(c2);
            b.resource_call("root", vec![], None);
            b.assign(i, Expr::add(Expr::var(i), Expr::constant(1, 16)));
        });
        fb.ret(Expr::constant(0, 16));
        let sw = fb.build();
        match check(&sw, &map) {
            Verdict::Inconsistent(violations) => {
                assert_eq!(violations.len(), 1);
                assert_eq!(violations[0].func, "distance");
                assert_eq!(violations[0].offending, vec![Some(c2)]);
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn loop_with_reconfiguration_at_top_is_consistent() {
        let (map, c1, c2) = paper_map();
        let mut fb = FunctionBuilder::new("sw", 16);
        let i = fb.local("i", 16);
        fb.while_(Expr::lt(Expr::var(i), Expr::constant(10, 16)), |b| {
            b.reconfigure(c1);
            b.resource_call("distance", vec![], None);
            b.reconfigure(c2);
            b.resource_call("root", vec![], None);
            b.assign(i, Expr::add(Expr::var(i), Expr::constant(1, 16)));
        });
        fb.ret(Expr::constant(0, 16));
        let sw = fb.build();
        assert!(check(&sw, &map).is_consistent());
    }

    #[test]
    fn function_in_multiple_configs_is_flexible() {
        let mut map = ConfigMap::new();
        let c1 = map.add_config("config1");
        let c2 = map.add_config("config2");
        map.add_function(c1, "shared");
        map.add_function(c2, "shared");
        let mut fb = FunctionBuilder::new("sw", 16);
        let x = fb.param("x", 16);
        fb.if_else(
            Expr::gt(Expr::var(x), Expr::constant(5, 16)),
            |t| t.reconfigure(c1),
            |e| e.reconfigure(c2),
        );
        // `shared` exists in both configurations: consistent despite the
        // ambiguous abstract state.
        fb.resource_call("shared", vec![], None);
        fb.ret(Expr::constant(0, 16));
        let sw = fb.build();
        assert!(check(&sw, &map).is_consistent());
        assert_eq!(map.configs_providing("shared").len(), 2);
    }

    #[test]
    fn code_after_return_is_not_analyzed() {
        let (map, _, _) = paper_map();
        let mut fb = FunctionBuilder::new("sw", 16);
        fb.ret(Expr::constant(0, 16));
        // Dead call after return: unreachable, so no violation.
        fb.resource_call("distance", vec![], None);
        let sw = fb.build();
        assert!(check(&sw, &map).is_consistent());
    }

    #[test]
    fn config_map_accessors() {
        let (map, c1, c2) = paper_map();
        assert_eq!(map.config_name(c1), "config1");
        assert_eq!(map.num_configs(), 2);
        assert!(map.provides(c1, "distance"));
        assert!(!map.provides(c1, "root"));
        assert_eq!(map.configs_providing("root"), vec![c2]);
        assert!(map.configs_providing("ghost").is_empty());
    }
}
