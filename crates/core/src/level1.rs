//! Level 1: the untimed functional model (Figure 2).
//!
//! "The level 1 description is a pure functional un-timed point-to-point
//! communication model" (§4.1). Every Figure-2 module is a kernel process
//! on the `sim` kernel connected by capacity-1 FIFOs; simulation order is
//! purely data-driven. Functional verification is trace comparison against
//! the C reference model — [`Level1Report::matches_reference`] is the
//! paper's "functionality was fully verified against the reference model".

use crate::msg::Msg;
use crate::workload::Workload;
use behav::bytecode::BehavExec;
use media::kernels::CompiledKernel;
use media::pipeline::{
    bay, calcdist, calcline, crtbord, crtline, edge, ellipse, erosion, root, winner,
};
use media::reference::RecognitionResult;
use sim::{Activation, FifoId, Outcome, Process, ProcessCtx, SimError, SimTime, Simulator, Trace};
use std::collections::VecDeque;

/// Packs an ellipse fit into one trace scalar (fields are small and
/// non-negative for any real frame; the reference model packs identically).
pub fn pack_ellipse(cx: i32, cy: i32, a: i32, b: i32) -> u64 {
    (cx as u16 as u64)
        | ((cy as u16 as u64) << 16)
        | ((a as u16 as u64) << 32)
        | ((b as u16 as u64) << 48)
}

/// A source process emitting a fixed token sequence, one per poll.
struct Source {
    name: &'static str,
    out: FifoId,
    tokens: VecDeque<Msg>,
}

impl Process<Msg> for Source {
    fn poll(&mut self, ctx: &mut ProcessCtx<'_, Msg>) -> Activation {
        match self.tokens.pop_front() {
            None => Activation::Done,
            Some(tok) => match ctx.try_write(self.out, tok) {
                Ok(()) => Activation::Continue,
                Err(tok) => {
                    self.tokens.push_front(tok);
                    Activation::WaitFifoWritable(self.out)
                }
            },
        }
    }
    fn name(&self) -> &str {
        self.name
    }
}

/// A map stage: reads one token, applies the kernel function, traces
/// observations, writes the outputs. Retires cleanly after `expected`
/// inputs, so a complete run ends [`sim::RunResult::Quiescent`] and a
/// reported deadlock is always a real one (the property LPV checks).
struct Stage {
    name: &'static str,
    inp: FifoId,
    out: Option<FifoId>,
    expected: u64,
    #[allow(clippy::type_complexity)]
    func: Box<dyn FnMut(Msg) -> (Vec<(&'static str, Msg)>, Vec<Msg>)>,
    pending: VecDeque<Msg>,
}

impl Process<Msg> for Stage {
    fn poll(&mut self, ctx: &mut ProcessCtx<'_, Msg>) -> Activation {
        // Drain pending outputs first.
        if let Some(out) = self.out {
            while let Some(tok) = self.pending.pop_front() {
                if let Err(tok) = ctx.try_write(out, tok) {
                    self.pending.push_front(tok);
                    return Activation::WaitFifoWritable(out);
                }
            }
        }
        if self.expected == 0 {
            return Activation::Done;
        }
        match ctx.try_read(self.inp) {
            None => Activation::WaitFifoReadable(self.inp),
            Some(tok) => {
                let (traces, outs) = (self.func)(tok);
                for (src, obs) in traces {
                    ctx.trace(src, obs);
                }
                self.pending.extend(outs);
                self.expected -= 1;
                Activation::Continue
            }
        }
    }
    fn name(&self) -> &str {
        self.name
    }
}

/// DISTANCE: pairs one probe signature with the stream of gallery entries.
struct DistanceProc {
    features_in: FifoId,
    gallery_in: FifoId,
    out: FifoId,
    gallery_len: usize,
    probes_left: u64,
    current: Option<Vec<u16>>,
    seen: usize,
    pending: VecDeque<Msg>,
    /// The DISTANCE step kernel compiled once for the whole run (the
    /// bytecode-VM fast path); per-element squares are exact for u16
    /// features, so traces stay bit-identical to `pipeline::distance`.
    kernel: CompiledKernel,
}

impl Process<Msg> for DistanceProc {
    fn poll(&mut self, ctx: &mut ProcessCtx<'_, Msg>) -> Activation {
        while let Some(tok) = self.pending.pop_front() {
            if let Err(tok) = ctx.try_write(self.out, tok) {
                self.pending.push_front(tok);
                return Activation::WaitFifoWritable(self.out);
            }
        }
        if self.current.is_none() {
            if self.probes_left == 0 {
                return Activation::Done;
            }
            match ctx.try_read(self.features_in) {
                None => return Activation::WaitFifoReadable(self.features_in),
                Some(Msg::Features(f)) => {
                    self.current = Some(f);
                    self.seen = 0;
                }
                Some(other) => panic!("DISTANCE expected features, got {other:?}"),
            }
        }
        match ctx.try_read(self.gallery_in) {
            None => Activation::WaitFifoReadable(self.gallery_in),
            Some(Msg::GalleryEntry(idx, g)) => {
                let f = self.current.as_ref().expect("features present");
                let sq: Vec<u64> = f
                    .iter()
                    .zip(&g)
                    .map(|(&x, &y)| self.kernel.run(&[x as u64, y as u64, 0]))
                    .collect();
                self.pending.push_back(Msg::SquaredDiffs(idx, sq));
                self.seen += 1;
                if self.seen == self.gallery_len {
                    self.current = None;
                    self.probes_left -= 1;
                }
                Activation::Continue
            }
            Some(other) => panic!("DISTANCE expected gallery entry, got {other:?}"),
        }
    }
    fn name(&self) -> &str {
        "distance"
    }
}

/// WINNER: collects all rooted distances of one probe and emits the argmin.
struct WinnerProc {
    inp: FifoId,
    gallery_len: usize,
    probes_left: u64,
    collected: Vec<u32>,
    results: Vec<usize>,
}

impl Process<Msg> for WinnerProc {
    fn poll(&mut self, ctx: &mut ProcessCtx<'_, Msg>) -> Activation {
        if self.probes_left == 0 {
            return Activation::Done;
        }
        match ctx.try_read(self.inp) {
            None => Activation::WaitFifoReadable(self.inp),
            Some(Msg::Dist(idx, d)) => {
                debug_assert_eq!(idx, self.collected.len());
                ctx.trace("root", Msg::Dist(idx, d));
                self.collected.push(d);
                if self.collected.len() == self.gallery_len {
                    let best = winner(&self.collected);
                    ctx.trace("winner", Msg::Winner(best));
                    self.results.push(best);
                    self.collected.clear();
                    self.probes_left -= 1;
                }
                Activation::Continue
            }
            Some(other) => panic!("WINNER expected dist, got {other:?}"),
        }
    }
    fn name(&self) -> &str {
        "winner"
    }
}

/// Report of a level-1 run.
#[derive(Debug, Clone)]
pub struct Level1Report {
    /// Recognized identity per probe.
    pub recognized: Vec<usize>,
    /// Whether the simulation trace matches the C reference model's.
    pub matches_reference: bool,
    /// First trace divergence, when any.
    pub mismatch: Option<String>,
    /// Kernel outcome/statistics.
    pub outcome: Outcome,
    /// The recorded observation trace.
    pub trace: Trace<Msg>,
}

/// Builds the expected observation trace from the reference results.
pub fn reference_trace(results: &[RecognitionResult]) -> Trace<Msg> {
    let mut t = Trace::new();
    let z = SimTime::ZERO;
    for r in results {
        t.record(z, "bay", Msg::Scalar(r.trace.bay_checksum));
        t.record(z, "erosion", Msg::Scalar(r.trace.erosion_checksum));
        t.record(z, "edge", Msg::Scalar(r.trace.edge_count));
        let (cx, cy, a, b) = r.trace.ellipse;
        t.record(z, "ellipse", Msg::Scalar(pack_ellipse(cx, cy, a, b)));
        t.record(z, "calcline", Msg::Features(r.trace.features.clone()));
        for (i, &d) in r.trace.distances.iter().enumerate() {
            t.record(z, "root", Msg::Dist(i, d));
        }
        t.record(z, "winner", Msg::Winner(r.trace.winner_entry));
    }
    t
}

/// Constructs and runs the level-1 model for a workload.
///
/// # Errors
///
/// Propagates kernel errors (the livelock guard).
pub fn run(workload: &Workload) -> Result<Level1Report, SimError> {
    run_instrumented(workload, &telemetry::noop())
}

/// [`run`] with telemetry: the kernel reports its scheduling counters and
/// FIFO depth/watermark gauges through `instrument`. The level-1 model is
/// untimed, so all gauges sit at tick 0 — the interesting signals here are
/// the poll and FIFO statistics.
///
/// # Errors
///
/// Propagates kernel errors (the livelock guard).
pub fn run_instrumented(
    workload: &Workload,
    instrument: &telemetry::SharedInstrument,
) -> Result<Level1Report, SimError> {
    let mut sim: Simulator<Msg> = Simulator::new();
    sim.set_poll_limit(200_000_000);
    sim.set_instrument(instrument.clone());

    // Point-to-point channels, capacity 1 (pure dataflow), except the
    // database stream which gets a little slack.
    let ch_cam = sim.add_fifo("camera→bay", 1);
    let ch_bay = sim.add_fifo("bay→erosion", 1);
    let ch_ero = sim.add_fifo("erosion→edge", 1);
    let ch_edge = sim.add_fifo("edge→ellipse", 1);
    let ch_ell = sim.add_fifo("ellipse→crtbord", 1);
    let ch_bord = sim.add_fifo("crtbord→crtline", 1);
    let ch_line = sim.add_fifo("crtline→calcline", 1);
    let ch_feat = sim.add_fifo("calcline→distance", 1);
    let ch_db = sim.add_fifo("database→distance", 2);
    let ch_sq = sim.add_fifo("distance→calcdist", 1);
    let ch_sum = sim.add_fifo("calcdist→root", 1);
    let ch_root = sim.add_fifo("root→winner", 1);

    // CAMERA.
    let frames: VecDeque<Msg> = workload
        .probes
        .iter()
        .map(|&(id, pose, seed)| Msg::Frame(workload.dataset.frame(id, pose, seed)))
        .collect();
    sim.add_process(Source {
        name: "camera",
        out: ch_cam,
        tokens: frames,
    });

    // DATABASE: the full gallery stream, once per probe.
    let mut db_tokens = VecDeque::new();
    for _ in 0..workload.probes.len() {
        for (i, (_, _, f)) in workload.gallery.entries.iter().enumerate() {
            db_tokens.push_back(Msg::GalleryEntry(i, f.clone()));
        }
    }
    sim.add_process(Source {
        name: "database",
        out: ch_db,
        tokens: db_tokens,
    });

    // Pixel pipeline. Each stage keeps the *real* data moving so the
    // functional results are genuine, and traces the same checkpoints the
    // reference model exposes.
    sim.add_process(Stage {
        name: "bay",
        inp: ch_cam,
        out: Some(ch_bay),
        expected: workload.probes.len() as u64,
        pending: VecDeque::new(),
        func: Box::new(|tok| match tok {
            Msg::Frame(f) => {
                let g = bay(&f);
                let sum: u64 = g.data.iter().map(|&p| p as u64).sum();
                (
                    vec![("bay", Msg::Scalar(sum))],
                    vec![Msg::Frame(BayerFromGray::wrap(g))],
                )
            }
            other => panic!("bay expected frame, got {other:?}"),
        }),
    });
    sim.add_process(Stage {
        name: "erosion",
        inp: ch_bay,
        out: Some(ch_ero),
        expected: workload.probes.len() as u64,
        pending: VecDeque::new(),
        func: Box::new(|tok| match tok {
            Msg::Frame(f) => {
                let g = BayerFromGray::unwrap(f);
                let e = erosion(&g);
                let sum: u64 = e.data.iter().map(|&p| p as u64).sum();
                (
                    vec![("erosion", Msg::Scalar(sum))],
                    vec![Msg::Frame(BayerFromGray::wrap(e))],
                )
            }
            other => panic!("erosion expected frame, got {other:?}"),
        }),
    });
    sim.add_process(Stage {
        name: "edge_ellipse_crtbord_crtline_calcline",
        inp: ch_ero,
        out: Some(ch_feat),
        expected: workload.probes.len() as u64,
        pending: VecDeque::new(),
        func: Box::new(move |tok| match tok {
            Msg::Frame(f) => {
                let g = BayerFromGray::unwrap(f);
                let edges = edge(&g);
                let fit = ellipse(&edges);
                let region = crtbord(g.width, g.height, &fit);
                let raw = crtline(&g, &region);
                let features = calcline(&raw);
                (
                    vec![
                        ("edge", Msg::Scalar(edges.count_ones() as u64)),
                        (
                            "ellipse",
                            Msg::Scalar(pack_ellipse(fit.cx, fit.cy, fit.a, fit.b)),
                        ),
                        ("calcline", Msg::Features(features.clone())),
                    ],
                    vec![Msg::Features(features)],
                )
            }
            other => panic!("edge expected frame, got {other:?}"),
        }),
    });
    // NOTE: EDGE…CALCLINE are modelled above as one fused stage at level 1
    // to avoid inventing channel payloads the reference model does not
    // observe; levels 2–3 keep the same fusion for the SW partition, which
    // matches the paper ("SW modules have been collapsed to a single large
    // SW task"). The unused intermediate channels document the full
    // Figure-2 topology for the LPV abstraction.
    let _ = (ch_edge, ch_ell, ch_bord, ch_line);

    sim.add_process(DistanceProc {
        features_in: ch_feat,
        gallery_in: ch_db,
        out: ch_sq,
        gallery_len: workload.gallery_len(),
        probes_left: workload.probes.len() as u64,
        current: None,
        seen: 0,
        pending: VecDeque::new(),
        kernel: CompiledKernel::distance_step(BehavExec::default()),
    });
    sim.add_process(Stage {
        name: "calcdist",
        inp: ch_sq,
        out: Some(ch_sum),
        expected: workload.probes.len() as u64 * workload.gallery_len() as u64,
        pending: VecDeque::new(),
        func: Box::new(|tok| match tok {
            Msg::SquaredDiffs(i, sq) => (vec![], vec![Msg::SumSq(i, calcdist(&sq))]),
            other => panic!("calcdist expected squared diffs, got {other:?}"),
        }),
    });
    sim.add_process(Stage {
        name: "root",
        inp: ch_sum,
        out: Some(ch_root),
        expected: workload.probes.len() as u64 * workload.gallery_len() as u64,
        pending: VecDeque::new(),
        func: {
            // ROOT through the compiled 32-bit kernel. Feature sums always
            // fit (128 × 255² ≪ 2³²); the guard keeps the function total
            // for arbitrary inputs without changing any real trace.
            let mut kernel = CompiledKernel::root(BehavExec::default());
            Box::new(move |tok| match tok {
                Msg::SumSq(i, s) => {
                    let r = if s < (1u64 << 32) {
                        kernel.run(&[s]) as u32
                    } else {
                        root(s)
                    };
                    (vec![], vec![Msg::Dist(i, r)])
                }
                other => panic!("root expected sum, got {other:?}"),
            })
        },
    });
    let winner_pid = sim.add_process(WinnerProc {
        inp: ch_root,
        gallery_len: workload.gallery_len(),
        probes_left: workload.probes.len() as u64,
        collected: Vec::new(),
        results: Vec::new(),
    });
    let _ = winner_pid;

    let outcome = sim.run(SimTime::MAX)?;
    let trace = sim.take_trace();

    // Compare against the reference model.
    let reference = workload.reference_results();
    let expected = reference_trace(&reference);
    let cmp = trace.matches_untimed(&expected);
    let recognized: Vec<usize> = trace
        .items_for("winner")
        .into_iter()
        .map(|m| match m {
            Msg::Winner(entry) => workload.gallery.entries[*entry].0,
            other => panic!("winner trace holds {other:?}"),
        })
        .collect();

    Ok(Level1Report {
        recognized,
        matches_reference: cmp.is_ok(),
        mismatch: cmp.err().map(|e| e.to_string()),
        outcome,
        trace,
    })
}

/// The pixel stages move whole grayscale images. Rather than widening
/// [`Msg`] with a grayscale variant (levels 2–3 never ship raw grayscale
/// over the bus), the gray image rides inside the `Frame` variant's
/// container — widths/heights/data are preserved exactly.
pub fn gray_as_frame(g: media::image::GrayImage) -> media::image::BayerImage {
    media::image::BayerImage {
        width: g.width,
        height: g.height,
        data: g.data,
    }
}

/// Inverse of [`gray_as_frame`].
pub fn frame_as_gray(f: media::image::BayerImage) -> media::image::GrayImage {
    media::image::GrayImage {
        width: f.width,
        height: f.height,
        data: f.data,
    }
}

struct BayerFromGray;

impl BayerFromGray {
    fn wrap(g: media::image::GrayImage) -> media::image::BayerImage {
        gray_as_frame(g)
    }

    fn unwrap(f: media::image::BayerImage) -> media::image::GrayImage {
        frame_as_gray(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level1_matches_reference_on_small_workload() {
        let w = Workload::small();
        let report = run(&w).expect("simulation runs");
        assert!(report.matches_reference, "mismatch: {:?}", report.mismatch);
        // A complete run retires every process: quiescent, not deadlocked.
        assert!(report.outcome.is_quiescent(), "{:?}", report.outcome.result);
        // Winner identities equal the reference's.
        let expected: Vec<usize> = w.reference_results().iter().map(|r| r.identity).collect();
        assert_eq!(report.recognized, expected);
    }

    #[test]
    fn level1_processes_every_probe() {
        let w = Workload::new(
            media::dataset::DatasetConfig {
                identities: 3,
                poses: 2,
                width: 64,
                height: 64,
                noise_amp: 4,
            },
            5,
        );
        let report = run(&w).expect("simulation runs");
        assert_eq!(report.recognized.len(), 5);
        assert_eq!(
            report.trace.items_for("winner").len(),
            5,
            "one winner per probe"
        );
        assert_eq!(
            report.trace.items_for("root").len(),
            5 * w.gallery_len(),
            "one distance per gallery entry per probe"
        );
    }

    #[test]
    fn level1_run_is_deterministic() {
        let w = Workload::small();
        let a = run(&w).expect("run a");
        let b = run(&w).expect("run b");
        assert_eq!(a.recognized, b.recognized);
        assert_eq!(a.outcome.stats.polls, b.outcome.stats.polls);
    }

    #[test]
    fn ellipse_packing_is_injective_for_small_fields() {
        let a = pack_ellipse(1, 2, 3, 4);
        let b = pack_ellipse(2, 1, 3, 4);
        let c = pack_ellipse(1, 2, 4, 3);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
