//! Level 3: the reconfigurable platform model.
//!
//! "Level 3 of the methodology flow is the heart of the reconfigurable
//! platform. Here the dynamic reconfigurable device (FPGA) is instantiated
//! into the design and some of the HW modules … are carried inside the
//! FPGA" (§4.1). DISTANCE (with its CALCDIST accumulator) and ROOT live in
//! contexts `config1`/`config2`; the software loads a configuration before
//! calling into it, and bitstream downloads ride the same bus as the data.

use crate::partition::{ArchConfig, Partition};
use crate::timed::{self, MatcherKind, ReconfigStrategy, RecoveryPolicy, RunError, TimedReport};
use crate::workload::Workload;
use sim::{FaultPlan, SimError};

/// Runs the level-3 model with the paper's context split
/// (`config1` = DISTANCE, `config2` = ROOT) and hoisted reconfiguration.
///
/// ```
/// let workload = symbad_core::Workload::small();
/// let report = symbad_core::level3::run(&workload).expect("level-3 simulation");
/// assert!(report.matches_reference);
/// // Level 3 instantiates the FPGA: kernels now live in contexts, so the
/// // run must have reconfigured and downloaded bitstreams over the bus.
/// let fpga = report.fpga.expect("level 3 reports FPGA activity");
/// assert!(fpga.reconfigurations > 0);
/// assert!(fpga.download_words > 0);
/// ```
///
/// # Errors
///
/// Propagates kernel errors.
pub fn run(workload: &Workload) -> Result<TimedReport, SimError> {
    run_with(
        workload,
        &Partition::paper_level3(),
        &ArchConfig::default(),
        ReconfigStrategy::Hoisted,
    )
}

/// [`run`] with telemetry: bus spans, per-frame CPU spans, FPGA
/// reconfiguration spans and latency histograms, and kernel counters are
/// reported through `instrument`.
///
/// # Errors
///
/// Propagates kernel errors.
pub fn run_instrumented(
    workload: &Workload,
    instrument: &telemetry::SharedInstrument,
) -> Result<TimedReport, SimError> {
    timed::run_faulted_instrumented(
        workload,
        &Partition::paper_level3(),
        &ArchConfig::default(),
        MatcherKind::Fpga {
            strategy: ReconfigStrategy::Hoisted,
            rtl_cosim: false,
        },
        None,
        RecoveryPolicy::default(),
        instrument,
    )
    .map_err(|e| match e {
        RunError::Sim(e) => e,
        RunError::Platform(f) => unreachable!("platform fault without a fault plan: {f}"),
    })
}

/// Runs the level-3 model with explicit partition/platform/strategy.
///
/// # Errors
///
/// Propagates kernel errors.
pub fn run_with(
    workload: &Workload,
    partition: &Partition,
    arch: &ArchConfig,
    strategy: ReconfigStrategy,
) -> Result<TimedReport, SimError> {
    timed::run(
        workload,
        partition,
        arch,
        MatcherKind::Fpga {
            strategy,
            rtl_cosim: false,
        },
    )
}

/// Runs the level-3 model (paper partition, hoisted strategy) with fault
/// injection under `plan` and the given recovery policy.
///
/// With recovery enabled, the run's functional results still match the
/// reference bit-for-bit — injected faults change timing (retries,
/// software fallback), never function. With [`RecoveryPolicy::disabled`],
/// any injected fault surfaces as a typed [`RunError::Platform`].
///
/// # Errors
///
/// [`RunError::Sim`] on kernel errors, [`RunError::Platform`] on
/// unrecovered platform faults.
pub fn run_with_faults(
    workload: &Workload,
    plan: FaultPlan,
    recovery: RecoveryPolicy,
) -> Result<TimedReport, RunError> {
    run_with_faults_instrumented(workload, plan, recovery, &telemetry::noop())
}

/// [`run_with_faults`] with telemetry: in addition to the regular level-3
/// signals, injected faults and recovery actions surface as `faults.*` and
/// `recovery.*` counters.
///
/// # Errors
///
/// Same as [`run_with_faults`].
pub fn run_with_faults_instrumented(
    workload: &Workload,
    plan: FaultPlan,
    recovery: RecoveryPolicy,
    instrument: &telemetry::SharedInstrument,
) -> Result<TimedReport, RunError> {
    timed::run_faulted_instrumented(
        workload,
        &Partition::paper_level3(),
        &ArchConfig::default(),
        MatcherKind::Fpga {
            strategy: ReconfigStrategy::Hoisted,
            rtl_cosim: false,
        },
        Some(plan),
        recovery,
        instrument,
    )
}

/// Runs the level-3 model with the ROOT kernel computed by co-simulating
/// its synthesized RTL netlist — functionally identical, much slower on
/// the host. This is the cost the paper cites for "HW/SW
/// co-emulation/simulation … still too expensive", made measurable.
///
/// # Errors
///
/// Propagates kernel errors.
pub fn run_with_rtl_cosim(workload: &Workload) -> Result<TimedReport, SimError> {
    timed::run(
        workload,
        &Partition::paper_level3(),
        &ArchConfig::default(),
        MatcherKind::Fpga {
            strategy: ReconfigStrategy::Hoisted,
            rtl_cosim: true,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level3_matches_reference_and_level2() {
        let w = Workload::small();
        let l3 = run(&w).expect("level-3 run");
        assert!(l3.matches_reference, "mismatch: {:?}", l3.mismatch);
        let l2 = crate::level2::run(&w).expect("level-2 run");
        assert_eq!(l2.recognized, l3.recognized);
        assert!(l2.trace.matches_untimed(&l3.trace).is_ok());
    }

    #[test]
    fn reconfiguration_costs_time_and_bus() {
        let w = Workload::small();
        let l2 = crate::level2::run(&w).expect("level 2");
        let l3 = run(&w).expect("level 3");
        let fpga = l3.fpga.as_ref().expect("level 3 has an FPGA");
        // Two contexts ping-pong once per frame: 2 reconfigs per frame
        // (the very first distance load included).
        assert_eq!(fpga.reconfigurations, 2 * w.probes.len() as u64);
        assert!(fpga.download_words > 0);
        // Reconfiguration + slower fabric make level 3 slower than level 2.
        assert!(
            l3.total_ticks > l2.total_ticks,
            "l3 {} vs l2 {}",
            l3.total_ticks,
            l2.total_ticks
        );
    }

    #[test]
    fn rtl_cosimulation_is_functionally_identical() {
        let w = Workload::small();
        let native = run(&w).expect("native level 3");
        let cosim = run_with_rtl_cosim(&w).expect("co-simulated level 3");
        // Same recognitions, same trace, same simulated time — only the
        // host-side cost differs (measured in the report/bench harness).
        assert_eq!(native.recognized, cosim.recognized);
        assert!(native.trace.matches_untimed(&cosim.trace).is_ok());
        assert_eq!(native.total_ticks, cosim.total_ticks);
    }

    #[test]
    fn naive_strategy_reconfigures_far_more() {
        let w = Workload::small();
        let hoisted = run(&w).expect("hoisted");
        let naive = run_with(
            &w,
            &crate::Partition::paper_level3(),
            &crate::partition::ArchConfig::default(),
            ReconfigStrategy::Naive,
        )
        .expect("naive");
        let h = hoisted.fpga.as_ref().unwrap().reconfigurations;
        let n = naive.fpga.as_ref().unwrap().reconfigurations;
        assert!(
            n > 4 * h,
            "naive ({n}) must reconfigure much more than hoisted ({h})"
        );
        assert!(naive.total_ticks > hoisted.total_ticks);
        assert_eq!(naive.recognized, hoisted.recognized);
    }

    #[test]
    fn merged_context_avoids_ping_pong() {
        let w = Workload::small();
        let split = run(&w).expect("split contexts");
        let merged = run_with(
            &w,
            &crate::Partition::merged_context(),
            &crate::partition::ArchConfig::default(),
            ReconfigStrategy::Hoisted,
        )
        .expect("merged context");
        let ms = merged.fpga.as_ref().unwrap();
        let ss = split.fpga.as_ref().unwrap();
        // One context: a single download, ever.
        assert_eq!(ms.reconfigurations, 1);
        assert!(ss.reconfigurations > ms.reconfigurations);
        assert_eq!(merged.recognized, split.recognized);
    }
}
