//! The shared timed transaction-level model behind levels 2 and 3.
//!
//! Three masters contend for the AMBA-class bus, mirroring the case-study
//! architecture:
//!
//! * **HW front-end** — the hardwired pixel pipeline (CAMERA, BAY,
//!   EROSION); writes the processed frame to CPU memory over the bus.
//! * **CPU task** — the paper's "single large SW task" executing every
//!   SW-mapped module in cyclostatic order, with simulated time advancing
//!   by the automatic annotation (operation mix × CPU cycle table). At
//!   level 3 the CPU also initiates FPGA reconfigurations, following a
//!   [`ReconfigStrategy`].
//! * **Matcher** — DISTANCE/CALCDIST/ROOT as hardwired logic (level 2) or
//!   FPGA contexts (level 3). It fetches gallery signatures from the flash
//!   DATABASE over the bus and serves requests from the CPU.
//!
//! The *functional* results are computed by the very same `media` kernels
//! as level 1 and the reference model, so the cross-level trace comparison
//! is meaningful; only the timing annotations differ between levels.

use crate::msg::Msg;
use crate::partition::{ArchConfig, Domain, Partition};
use crate::workload::Workload;
use behav::bytecode::BehavExec;
use media::kernels::CompiledKernel;
use media::pipeline::{
    bay, calcdist, calcline, crtbord, crtline, edge, ellipse, erosion, root, winner, FeatureVector,
};
use media::profile::module_mix;
use platform::{Context, ContextId, Fpga, FpgaError, FpgaReport, SharedFpga};
use sim::faults::{FaultLog, FaultPlan, SharedFaultPlan};
use sim::{Activation, FifoId, Outcome, Process, ProcessCtx, SimError, SimTime, Simulator, Trace};
use std::cell::RefCell;
use std::collections::{BTreeSet, VecDeque};
use std::fmt;
use std::rc::Rc;
use tlm::{AccessKind, Bus, BusError, BusReport, Payload, Reservation, SharedBus};

/// When the SW issues reconfiguration calls (experiment E10).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReconfigStrategy {
    /// Load the needed context once per *batch* of calls (loop-invariant
    /// hoisting — the paper's manually optimized instrumentation).
    Hoisted,
    /// Load the needed context before *every* resource call (the naive
    /// instrumentation the paper warns about).
    Naive,
}

/// The matcher implementation chosen by the level.
#[derive(Debug, Clone)]
pub enum MatcherKind {
    /// Hardwired DISTANCE/CALCDIST/ROOT (level 2).
    Hardwired,
    /// FPGA-resident kernels with the given context assignment
    /// (module → context index) and reconfiguration strategy (level 3).
    Fpga {
        /// Reconfiguration placement strategy.
        strategy: ReconfigStrategy,
        /// When set, the ROOT function's results are computed by
        /// *simulating the synthesized RTL netlist* instead of the native
        /// kernel — TL/RTL co-simulation. Functionally identical (the
        /// netlist is proven equivalent), dramatically more host work per
        /// call: the cost the paper calls "still too expensive".
        rtl_cosim: bool,
    },
}

/// How the level-3 driver reacts to platform faults (failed bitstream
/// downloads, bus error responses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Retry attempts per operation before giving up (0 = fail fast).
    pub max_retries: u32,
    /// Ticks to back off after a failed attempt before retrying.
    pub backoff_ticks: u64,
    /// When a context download permanently fails, fall back to executing
    /// its functions in software (slower, functionally identical) instead
    /// of aborting the run.
    pub degrade_to_sw: bool,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_retries: 3,
            backoff_ticks: 256,
            degrade_to_sw: true,
        }
    }
}

impl RecoveryPolicy {
    /// No retries, no degradation: every injected fault surfaces as a
    /// typed [`RunError::Platform`] — never a silent wrong answer.
    pub fn disabled() -> Self {
        RecoveryPolicy {
            max_retries: 0,
            backoff_ticks: 0,
            degrade_to_sw: false,
        }
    }
}

/// A platform-level fault that recovery could not (or was not allowed to)
/// absorb.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlatformFault {
    /// The reconfigurable device failed (download CRC, timeout, residency).
    Fpga(FpgaError),
    /// A data transfer failed on the bus.
    Bus(BusError),
}

impl fmt::Display for PlatformFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformFault::Fpga(e) => write!(f, "FPGA fault: {e}"),
            PlatformFault::Bus(e) => write!(f, "bus fault: {e}"),
        }
    }
}

impl std::error::Error for PlatformFault {}

/// Why a timed run failed: either the simulation kernel itself, or an
/// unrecovered platform fault (the latter only with fault injection on).
#[derive(Debug)]
pub enum RunError {
    /// Kernel error (deadlock, poll-limit, …).
    Sim(SimError),
    /// Unrecovered platform fault.
    Platform(PlatformFault),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Sim(e) => write!(f, "simulation error: {e}"),
            RunError::Platform(e) => write!(f, "unrecovered platform fault: {e}"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<SimError> for RunError {
    fn from(e: SimError) -> Self {
        RunError::Sim(e)
    }
}

/// What fault injection did to a run, and what recovery did about it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Faults the plan injected, by kind.
    pub injected: FaultLog,
    /// Retry attempts issued (bus transfers and context downloads).
    pub retries: u64,
    /// Operations that succeeded after at least one retry.
    pub recovered: u64,
    /// Functions degraded to their software fallback, in sorted order.
    pub degraded: Vec<String>,
}

/// Recovery bookkeeping shared by the processes of one run.
#[derive(Debug, Default)]
struct RecoveryState {
    retries: u64,
    recovered: u64,
    degraded: BTreeSet<String>,
    failure: Option<PlatformFault>,
}

type SharedRecovery = Rc<RefCell<RecoveryState>>;

/// Records the first unrecovered fault and retires the process; the
/// driver surfaces the fault in preference to the deadlock that follows.
fn fail(state: &SharedRecovery, fault: PlatformFault) -> Activation {
    let mut s = state.borrow_mut();
    if s.failure.is_none() {
        s.failure = Some(fault);
    }
    Activation::Done
}

/// Issues `payload` at `start`, retrying transient slave errors under
/// `policy` (each failed attempt still occupies the bus; retries start at
/// the failed burst's end plus the backoff). Permanent decode/master
/// errors are never retried.
fn transfer_with_recovery(
    bus: &SharedBus,
    policy: &RecoveryPolicy,
    state: &SharedRecovery,
    start: SimTime,
    payload: &Payload,
) -> Result<Reservation, PlatformFault> {
    let mut at = start;
    let mut attempts = 0u32;
    loop {
        match bus.borrow_mut().transfer(at, payload) {
            Ok(r) => {
                if attempts > 0 {
                    state.borrow_mut().recovered += 1;
                }
                return Ok(r);
            }
            Err(BusError::Slave { at: end, .. }) if attempts < policy.max_retries => {
                attempts += 1;
                state.borrow_mut().retries += 1;
                at = end.saturating_add_ticks(policy.backoff_ticks);
            }
            Err(e) => return Err(PlatformFault::Bus(e)),
        }
    }
}

/// Everything a timed run reports.
#[derive(Debug, Clone)]
pub struct TimedReport {
    /// Recognized identity per probe.
    pub recognized: Vec<usize>,
    /// Whether the functional trace matches the reference model's.
    pub matches_reference: bool,
    /// First divergence if any.
    pub mismatch: Option<String>,
    /// Kernel outcome and statistics.
    pub outcome: Outcome,
    /// Total simulated ticks.
    pub total_ticks: u64,
    /// Ticks per processed frame (end-to-end throughput).
    pub ticks_per_frame: f64,
    /// Bus contention report.
    pub bus: BusReport,
    /// FPGA activity (level 3 only).
    pub fpga: Option<FpgaReport>,
    /// Fault-injection summary (only when a fault plan was installed).
    pub faults: Option<FaultReport>,
    /// The observation trace.
    pub trace: Trace<Msg>,
}

/// Bus address map used by the timed models.
pub mod addr {
    /// CPU main memory.
    pub const RAM_BASE: u64 = 0x0000_0000;
    /// CPU memory size (bytes of address space).
    pub const RAM_SIZE: u64 = 0x0010_0000;
    /// Flash region holding the face DATABASE.
    pub const FLASH_BASE: u64 = 0x0010_0000;
    /// Flash size.
    pub const FLASH_SIZE: u64 = 0x0010_0000;
    /// Matcher (HW block or FPGA data port).
    pub const MATCH_BASE: u64 = 0x0020_0000;
    /// Matcher region size.
    pub const MATCH_SIZE: u64 = 0x0001_0000;
    /// FPGA configuration port (bitstream downloads).
    pub const FPGA_CFG_BASE: u64 = 0x0021_0000;
    /// FPGA configuration region size.
    pub const FPGA_CFG_SIZE: u64 = 0x0001_0000;
}

/// The hardwired front-end: per probe, charges CAMERA/BAY/EROSION time,
/// then DMA-writes the processed frame into CPU memory.
struct HwFront {
    frames: VecDeque<(media::image::GrayImage, u64)>, // (processed, charge)
    out: FifoId,
    bus: SharedBus,
    master: usize,
    policy: RecoveryPolicy,
    recovery: SharedRecovery,
    /// Phase: 0 = charge compute, 1 = bus write, 2 = hand over.
    phase: u8,
    staged: Option<media::image::GrayImage>,
}

impl Process<Msg> for HwFront {
    fn poll(&mut self, ctx: &mut ProcessCtx<'_, Msg>) -> Activation {
        match self.phase {
            0 => match self.frames.pop_front() {
                None => Activation::Done,
                Some((img, charge)) => {
                    self.staged = Some(img);
                    self.phase = 1;
                    Activation::WaitTime(SimTime::from_ticks(charge))
                }
            },
            1 => {
                let img = self.staged.as_ref().expect("staged");
                let words = (img.data.len() as u32).div_ceil(4);
                let r = match transfer_with_recovery(
                    &self.bus,
                    &self.policy,
                    &self.recovery,
                    ctx.now(),
                    &Payload::burst(self.master, addr::RAM_BASE, AccessKind::Write, words),
                ) {
                    Ok(r) => r,
                    Err(f) => return fail(&self.recovery, f),
                };
                self.phase = 2;
                Activation::WaitTime(r.delay_from(ctx.now()))
            }
            _ => {
                let img = self.staged.take().expect("staged");
                match ctx.try_write(self.out, Msg::Frame(crate::level1::gray_as_frame(img))) {
                    Ok(()) => {
                        self.phase = 0;
                        Activation::Continue
                    }
                    Err(Msg::Frame(f)) => {
                        self.staged = Some(crate::level1::frame_as_gray(f));
                        Activation::WaitFifoWritable(self.out)
                    }
                    Err(_) => unreachable!("we wrote a frame"),
                }
            }
        }
    }
    fn name(&self) -> &str {
        "hw_front"
    }
}

/// The matcher: hardwired block or FPGA. Serves jobs from the CPU.
struct Matcher {
    inp: FifoId,
    out: FifoId,
    bus: SharedBus,
    master: usize,
    gallery: Rc<Vec<(usize, usize, FeatureVector)>>,
    /// Cycles per gallery entry for the distance+calcdist pass.
    distance_cycles: u64,
    /// Cycles per root evaluation.
    root_cycles: u64,
    /// Software-fallback cycles per gallery entry (graceful degradation).
    distance_sw_cycles: u64,
    /// Software-fallback cycles per root evaluation.
    root_sw_cycles: u64,
    fpga: Option<SharedFpga>,
    policy: RecoveryPolicy,
    recovery: SharedRecovery,
    /// RTL netlist co-simulated for ROOT calls (level 3 co-simulation).
    root_rtl: Option<hdl::Rtl>,
    /// DISTANCE step kernel compiled once per run (bytecode-VM fast path).
    distance_kernel: CompiledKernel,
    /// ROOT kernel compiled once per run, used when no RTL is co-simulated.
    root_kernel: CompiledKernel,
    /// In-flight work: the remaining per-entry distance jobs.
    current: Option<(FeatureVector, usize)>,
    pending: VecDeque<Msg>,
}

impl Matcher {
    /// Cycles to charge for `func`: hardwired cycles (level 2), the
    /// FPGA's residency-checked cost (level 3), or the software fallback
    /// when the function was degraded after a permanent download failure.
    /// A residency violation — the SymbC-class error — surfaces as a
    /// typed [`PlatformFault::Fpga`], never a silent wrong answer.
    fn compute_cycles(&self, func: &str) -> Result<u64, PlatformFault> {
        let (hw, sw) = match func {
            "distance" => (self.distance_cycles, self.distance_sw_cycles),
            _ => (self.root_cycles, self.root_sw_cycles),
        };
        match &self.fpga {
            None => Ok(hw),
            Some(f) => {
                if self.recovery.borrow().degraded.contains(func) {
                    return Ok(sw);
                }
                f.borrow_mut().call(func).map_err(PlatformFault::Fpga)
            }
        }
    }

    fn transfer(&self, start: SimTime, payload: &Payload) -> Result<Reservation, PlatformFault> {
        transfer_with_recovery(&self.bus, &self.policy, &self.recovery, start, payload)
    }
}

impl Process<Msg> for Matcher {
    fn poll(&mut self, ctx: &mut ProcessCtx<'_, Msg>) -> Activation {
        // Drain pending responses (bus-written back to CPU memory).
        while let Some(tok) = self.pending.pop_front() {
            if let Err(tok) = ctx.try_write(self.out, tok) {
                self.pending.push_front(tok);
                return Activation::WaitFifoWritable(self.out);
            }
        }
        // Continue an in-flight distance batch: one gallery entry per poll.
        if let Some((features, next_entry)) = self.current.take() {
            let entry = next_entry;
            let (_, _, g) = &self.gallery[entry];
            // Fetch the signature from flash over the bus.
            let words = (g.len() as u32).div_ceil(2);
            let fetch = match self.transfer(
                ctx.now(),
                &Payload::burst(self.master, addr::FLASH_BASE, AccessKind::Read, words),
            ) {
                Ok(r) => r,
                Err(f) => return fail(&self.recovery, f),
            };
            // Per-element squares through the compiled kernel — exact for
            // u16 features (|x − y|² < 2³²), so sums match `distance`.
            let sq: Vec<u64> = features
                .iter()
                .zip(g)
                .map(|(&x, &y)| self.distance_kernel.run(&[x as u64, y as u64, 0]))
                .collect();
            let sum = calcdist(&sq);
            // Residency check + cycles (FPGA, SW fallback, or hardwired).
            let compute = match self.compute_cycles("distance") {
                Ok(c) => c,
                Err(f) => return fail(&self.recovery, f),
            };
            // Write the 2-word response into CPU memory.
            let resp = match self.transfer(
                fetch.end.saturating_add_ticks(compute),
                &Payload::burst(self.master, addr::RAM_BASE, AccessKind::Write, 2),
            ) {
                Ok(r) => r,
                Err(f) => return fail(&self.recovery, f),
            };
            self.pending.push_back(Msg::SumSq(entry, sum));
            if entry + 1 < self.gallery.len() {
                self.current = Some((features, entry + 1));
            }
            return Activation::WaitTime(resp.end - ctx.now());
        }
        match ctx.try_read(self.inp) {
            None => Activation::WaitFifoReadable(self.inp),
            Some(Msg::Features(f)) => {
                self.current = Some((f, 0));
                Activation::Continue
            }
            Some(Msg::SumSq(i, s)) => {
                let compute = match self.compute_cycles("root") {
                    Ok(c) => c,
                    Err(f) => return fail(&self.recovery, f),
                };
                let r = match &self.root_rtl {
                    // Co-simulation: evaluate the synthesized netlist. The
                    // 32-bit kernel roots the sum in two halves to cover
                    // 64-bit sums exactly when they fit in 32 bits (the
                    // feature arithmetic guarantees this: 128 × 255² ≪ 2³²).
                    Some(rtl) => {
                        debug_assert!(s < (1u64 << 32), "sum exceeds kernel width");
                        rtl.eval_combinational(&[s])[0] as u32
                    }
                    None => {
                        if s < (1u64 << 32) {
                            self.root_kernel.run(&[s]) as u32
                        } else {
                            root(s)
                        }
                    }
                };
                let resp = match self.transfer(
                    ctx.now().saturating_add_ticks(compute),
                    &Payload::write(self.master, addr::RAM_BASE),
                ) {
                    Ok(res) => res,
                    Err(f) => return fail(&self.recovery, f),
                };
                self.pending.push_back(Msg::Dist(i, r));
                Activation::WaitTime(resp.end - ctx.now())
            }
            Some(other) => panic!("matcher got unexpected {other:?}"),
        }
    }
    fn name(&self) -> &str {
        "matcher"
    }
}

/// Phases of the CPU task's cyclostatic schedule (one cycle per probe).
enum CpuPhase {
    AwaitFrame,
    ChargeFrontSw {
        /// Remaining ticks already scheduled (we enter the next phase).
        features: FeatureVector,
        trace: Vec<(&'static str, Msg)>,
    },
    LoadContext {
        context: ContextId,
        then: Box<CpuPhase>,
    },
    SendFeatures {
        features: FeatureVector,
    },
    CollectSums {
        sums: Vec<(usize, u64)>,
    },
    SendSum {
        sums: Vec<(usize, u64)>, // remaining to send
        sent: usize,
        dists: Vec<(usize, u32)>,
    },
    CollectDists {
        outstanding: usize,
        dists: Vec<(usize, u32)>,
    },
    ChargeWinner {
        dists: Vec<(usize, u32)>,
    },
}

/// The collapsed SW task.
struct CpuTask {
    inp_frames: FifoId,
    to_matcher: FifoId,
    from_matcher: FifoId,
    bus: SharedBus,
    master: usize,
    fpga: Option<SharedFpga>,
    policy: RecoveryPolicy,
    recovery: SharedRecovery,
    strategy: ReconfigStrategy,
    distance_ctx: ContextId,
    root_ctx: ContextId,
    front_sw_cycles: u64,
    winner_cycles: u64,
    gallery_len: usize,
    phase: CpuPhase,
    frames_left: usize,
}

impl CpuTask {
    /// Issues a context load; returns ticks to wait (0 if already loaded).
    ///
    /// Failed downloads are retried under the recovery policy (each
    /// attempt consumes real bus time; retries start at the failed
    /// attempt's `busy_until` plus the backoff). When retries exhaust:
    /// with `degrade_to_sw` the context's functions are marked degraded —
    /// the matcher computes them in software from then on and the load is
    /// never attempted again — otherwise the fault is returned and the
    /// run aborts with a typed error.
    fn reconfigure(&self, ctx_id: ContextId, now: SimTime) -> Result<u64, PlatformFault> {
        let fpga = self.fpga.as_ref().expect("reconfigure only at level 3");
        let all_degraded = {
            let st = self.recovery.borrow();
            let fb = fpga.borrow();
            let funcs = &fb.contexts()[ctx_id.0].functions;
            !funcs.is_empty() && funcs.iter().all(|(n, _)| st.degraded.contains(n))
        };
        if all_degraded {
            return Ok(0);
        }
        let mut at = now;
        let mut attempts = 0u32;
        loop {
            let attempt = fpga.borrow_mut().load(ctx_id, at, &self.bus, self.master);
            match attempt {
                Ok(Some(r)) => {
                    if attempts > 0 {
                        self.recovery.borrow_mut().recovered += 1;
                    }
                    return Ok(r.end.ticks_since(now));
                }
                Ok(None) => return Ok(0),
                Err(fault) if attempts < self.policy.max_retries => {
                    attempts += 1;
                    self.recovery.borrow_mut().retries += 1;
                    at = fault
                        .busy_until
                        .saturating_add_ticks(self.policy.backoff_ticks);
                }
                Err(fault) => {
                    if self.policy.degrade_to_sw {
                        let fb = fpga.borrow();
                        let mut st = self.recovery.borrow_mut();
                        for (name, _) in &fb.contexts()[ctx_id.0].functions {
                            st.degraded.insert(name.clone());
                        }
                        // The failed attempts consumed real bus time.
                        return Ok(fault.busy_until.ticks_since(now));
                    }
                    return Err(PlatformFault::Fpga(fault.error));
                }
            }
        }
    }
}

impl Process<Msg> for CpuTask {
    fn poll(&mut self, ctx: &mut ProcessCtx<'_, Msg>) -> Activation {
        match std::mem::replace(&mut self.phase, CpuPhase::AwaitFrame) {
            CpuPhase::AwaitFrame => {
                if self.frames_left == 0 {
                    return Activation::Done;
                }
                match ctx.try_read(self.inp_frames) {
                    None => Activation::WaitFifoReadable(self.inp_frames),
                    Some(Msg::Frame(f)) => {
                        let instr = ctx.instrument();
                        if instr.enabled() {
                            instr.span_begin("cpu", "frame", ctx.now().ticks());
                        }
                        let gray = crate::level1::frame_as_gray(f);
                        // Execute the SW front half natively (edge …
                        // calcline), recording the same checkpoints as the
                        // other levels. Time is charged next.
                        let edges = edge(&gray);
                        let fit = ellipse(&edges);
                        let region = crtbord(gray.width, gray.height, &fit);
                        let raw = crtline(&gray, &region);
                        let features = calcline(&raw);
                        let trace = vec![
                            ("edge", Msg::Scalar(edges.count_ones() as u64)),
                            (
                                "ellipse",
                                Msg::Scalar(crate::level1::pack_ellipse(
                                    fit.cx, fit.cy, fit.a, fit.b,
                                )),
                            ),
                            ("calcline", Msg::Features(features.clone())),
                        ];
                        self.phase = CpuPhase::ChargeFrontSw { features, trace };
                        Activation::WaitTime(SimTime::from_ticks(self.front_sw_cycles))
                    }
                    Some(other) => panic!("cpu expected frame, got {other:?}"),
                }
            }
            CpuPhase::ChargeFrontSw { features, trace } => {
                for (src, obs) in trace {
                    ctx.trace(src, obs);
                }
                if self.fpga.is_some() {
                    // Level 3: make sure config1 (distance) is loaded. Both
                    // strategies load here; they differ in the root phase.
                    self.phase = CpuPhase::LoadContext {
                        context: self.distance_ctx,
                        then: Box::new(CpuPhase::SendFeatures { features }),
                    };
                } else {
                    self.phase = CpuPhase::SendFeatures { features };
                }
                Activation::Continue
            }
            CpuPhase::LoadContext { context, then } => {
                let wait = match self.reconfigure(context, ctx.now()) {
                    Ok(w) => w,
                    Err(f) => return fail(&self.recovery, f),
                };
                self.phase = *then;
                if wait > 0 {
                    Activation::WaitTime(SimTime::from_ticks(wait))
                } else {
                    Activation::Continue
                }
            }
            CpuPhase::SendFeatures { features } => {
                // Bus-write the signature to the matcher.
                let words = (features.len() as u32).div_ceil(2);
                let r = match transfer_with_recovery(
                    &self.bus,
                    &self.policy,
                    &self.recovery,
                    ctx.now(),
                    &Payload::burst(self.master, addr::MATCH_BASE, AccessKind::Write, words),
                ) {
                    Ok(r) => r,
                    Err(f) => return fail(&self.recovery, f),
                };
                match ctx.try_write(self.to_matcher, Msg::Features(features)) {
                    Ok(()) => {
                        self.phase = CpuPhase::CollectSums { sums: Vec::new() };
                        Activation::WaitTime(r.delay_from(ctx.now()))
                    }
                    Err(Msg::Features(f)) => {
                        self.phase = CpuPhase::SendFeatures { features: f };
                        Activation::WaitFifoWritable(self.to_matcher)
                    }
                    Err(_) => unreachable!(),
                }
            }
            CpuPhase::CollectSums { mut sums } => match ctx.try_read(self.from_matcher) {
                None => {
                    self.phase = CpuPhase::CollectSums { sums };
                    Activation::WaitFifoReadable(self.from_matcher)
                }
                Some(Msg::SumSq(i, s)) => {
                    sums.push((i, s));
                    if sums.len() == self.gallery_len {
                        if self.fpga.is_some() {
                            self.phase = CpuPhase::LoadContext {
                                context: self.root_ctx,
                                then: Box::new(CpuPhase::SendSum {
                                    sums,
                                    sent: 0,
                                    dists: Vec::new(),
                                }),
                            };
                        } else {
                            self.phase = CpuPhase::SendSum {
                                sums,
                                sent: 0,
                                dists: Vec::new(),
                            };
                        }
                    } else {
                        self.phase = CpuPhase::CollectSums { sums };
                    }
                    Activation::Continue
                }
                Some(other) => panic!("cpu expected sum, got {other:?}"),
            },
            CpuPhase::SendSum { sums, sent, dists } => {
                if sent == sums.len() {
                    self.phase = CpuPhase::CollectDists {
                        outstanding: sums.len() - dists.len(),
                        dists,
                    };
                    return Activation::Continue;
                }
                // Naive strategy: reconfigure before *every* call. The
                // matcher context ping-pong comes from re-loading the
                // distance context after each root at the *next* frame; for
                // the naive ablation we alternate eagerly.
                if self.fpga.is_some() && self.strategy == ReconfigStrategy::Naive {
                    let wait = match self.reconfigure(self.root_ctx, ctx.now()) {
                        Ok(w) => w,
                        Err(f) => return fail(&self.recovery, f),
                    };
                    if wait > 0 {
                        self.phase = CpuPhase::SendSum { sums, sent, dists };
                        return Activation::WaitTime(SimTime::from_ticks(wait));
                    }
                }
                let (i, s) = sums[sent];
                let r = match transfer_with_recovery(
                    &self.bus,
                    &self.policy,
                    &self.recovery,
                    ctx.now(),
                    &Payload::burst(self.master, addr::MATCH_BASE, AccessKind::Write, 2),
                ) {
                    Ok(r) => r,
                    Err(f) => return fail(&self.recovery, f),
                };
                match ctx.try_write(self.to_matcher, Msg::SumSq(i, s)) {
                    Ok(()) => {
                        // In the naive ablation the FPGA is immediately
                        // flipped back to the distance context, simulating
                        // unhoisted per-call instrumentation.
                        let extra = if self.fpga.is_some()
                            && self.strategy == ReconfigStrategy::Naive
                            && sent + 1 < sums.len()
                        {
                            let flip = self
                                .reconfigure(self.distance_ctx, r.end)
                                .and_then(|_| self.reconfigure(self.root_ctx, r.end));
                            match flip {
                                Ok(back) => back,
                                Err(f) => return fail(&self.recovery, f),
                            }
                        } else {
                            0
                        };
                        self.phase = CpuPhase::SendSum {
                            sums,
                            sent: sent + 1,
                            dists,
                        };
                        Activation::WaitTime(r.delay_from(ctx.now()).saturating_add_ticks(extra))
                    }
                    Err(_) => {
                        self.phase = CpuPhase::SendSum { sums, sent, dists };
                        Activation::WaitFifoWritable(self.to_matcher)
                    }
                }
            }
            CpuPhase::CollectDists {
                outstanding,
                mut dists,
            } => match ctx.try_read(self.from_matcher) {
                None => {
                    self.phase = CpuPhase::CollectDists { outstanding, dists };
                    Activation::WaitFifoReadable(self.from_matcher)
                }
                Some(Msg::Dist(i, d)) => {
                    dists.push((i, d));
                    if dists.len() == self.gallery_len {
                        self.phase = CpuPhase::ChargeWinner { dists };
                        Activation::WaitTime(SimTime::from_ticks(self.winner_cycles))
                    } else {
                        self.phase = CpuPhase::CollectDists {
                            outstanding: outstanding - 1,
                            dists,
                        };
                        Activation::Continue
                    }
                }
                Some(other) => panic!("cpu expected dist, got {other:?}"),
            },
            CpuPhase::ChargeWinner { mut dists } => {
                dists.sort_by_key(|&(i, _)| i);
                for &(i, d) in &dists {
                    ctx.trace("root", Msg::Dist(i, d));
                }
                let values: Vec<u32> = dists.iter().map(|&(_, d)| d).collect();
                let best = winner(&values);
                ctx.trace("winner", Msg::Winner(best));
                let instr = ctx.instrument();
                if instr.enabled() {
                    instr.span_end("cpu", ctx.now().ticks());
                }
                self.frames_left -= 1;
                self.phase = CpuPhase::AwaitFrame;
                Activation::Continue
            }
        }
    }
    fn name(&self) -> &str {
        "cpu_task"
    }
}

/// Builds and runs the timed model (no fault injection).
///
/// # Errors
///
/// Propagates kernel errors.
///
/// # Panics
///
/// Panics if the partition maps front-end pixel modules to the FPGA (the
/// case study only maps the match kernels there).
pub fn run(
    workload: &Workload,
    partition: &Partition,
    arch: &ArchConfig,
    matcher_kind: MatcherKind,
) -> Result<TimedReport, SimError> {
    run_faulted(
        workload,
        partition,
        arch,
        matcher_kind,
        None,
        RecoveryPolicy::default(),
    )
    .map_err(|e| match e {
        RunError::Sim(e) => e,
        // Without a fault plan nothing injects platform faults, and
        // decode/master errors are construction bugs this driver rules out.
        RunError::Platform(f) => unreachable!("platform fault without a fault plan: {f}"),
    })
}

/// Builds and runs the timed model with optional fault injection and the
/// given recovery policy. This is the level-3 robustness driver: the plan
/// is installed into both the bus and the FPGA, the processes retry and
/// degrade per `recovery`, and the report carries a [`FaultReport`].
///
/// # Errors
///
/// [`RunError::Sim`] on kernel errors; [`RunError::Platform`] when an
/// injected fault exhausts the recovery policy (always a typed error —
/// injected faults never produce silently wrong results).
///
/// # Panics
///
/// Panics if the partition maps front-end pixel modules to the FPGA (the
/// case study only maps the match kernels there).
pub fn run_faulted(
    workload: &Workload,
    partition: &Partition,
    arch: &ArchConfig,
    matcher_kind: MatcherKind,
    faults: Option<FaultPlan>,
    recovery: RecoveryPolicy,
) -> Result<TimedReport, RunError> {
    run_faulted_instrumented(
        workload,
        partition,
        arch,
        matcher_kind,
        faults,
        recovery,
        &telemetry::noop(),
    )
}

/// [`run_faulted`] with telemetry: the instrument is installed into the
/// kernel, the bus, and (at level 3) the FPGA, the CPU task opens a
/// `cpu`-track span per frame, and the fault/recovery summary is flushed
/// as `faults.*` / `recovery.*` counters at the end of the run.
///
/// With the no-op instrument this is exactly [`run_faulted`]: telemetry
/// never perturbs scheduling, timing, or functional results.
///
/// # Errors
///
/// Same as [`run_faulted`].
///
/// # Panics
///
/// Same as [`run_faulted`].
#[allow(clippy::too_many_lines)]
pub fn run_faulted_instrumented(
    workload: &Workload,
    partition: &Partition,
    arch: &ArchConfig,
    matcher_kind: MatcherKind,
    faults: Option<FaultPlan>,
    recovery: RecoveryPolicy,
    instrument: &telemetry::SharedInstrument,
) -> Result<TimedReport, RunError> {
    let config = *workload.dataset.config();
    let gallery_len = workload.gallery_len();

    // Per-module cycle charges.
    let charge = |module: &str| -> u64 {
        let mix = module_mix(module, &config, gallery_len);
        match partition.domain(module) {
            Domain::Sw => arch.cpu.cycles(mix),
            Domain::Hw => arch.hw_cycles(mix.total()),
            Domain::Fpga(_) => arch.fpga_cycles(mix.total()),
        }
    };
    // The matcher charges are *per gallery entry*.
    let distance_entry_cycles =
        (charge("distance") + charge("calcdist")).div_ceil(gallery_len as u64);
    let root_entry_cycles = charge("root").div_ceil(gallery_len as u64);

    // Software-fallback matcher costs (per gallery entry), used when a
    // context download permanently fails and the run degrades gracefully.
    let sw_charge =
        |module: &str| -> u64 { arch.cpu.cycles(module_mix(module, &config, gallery_len)) };
    let distance_sw_entry_cycles =
        (sw_charge("distance") + sw_charge("calcdist")).div_ceil(gallery_len as u64);
    let root_sw_entry_cycles = sw_charge("root").div_ceil(gallery_len as u64);

    let plan: Option<SharedFaultPlan> = faults.map(FaultPlan::shared);
    let recovery_state: SharedRecovery = Rc::new(RefCell::new(RecoveryState::default()));

    let mut sim: Simulator<Msg> = Simulator::new();
    sim.set_poll_limit(500_000_000);
    sim.set_instrument(instrument.clone());
    let bus = Bus::shared("amba", arch.bus);
    bus.borrow_mut().set_instrument(instrument.clone());
    if let Some(p) = &plan {
        bus.borrow_mut().set_fault_plan(p.clone());
    }
    {
        let mut b = bus.borrow_mut();
        b.map_region("ram", addr::RAM_BASE, addr::RAM_SIZE, 0);
        b.map_region("flash", addr::FLASH_BASE, addr::FLASH_SIZE, 4);
        b.map_region("match", addr::MATCH_BASE, addr::MATCH_SIZE, 0);
        b.map_region("fpga_cfg", addr::FPGA_CFG_BASE, addr::FPGA_CFG_SIZE, 0);
    }
    let m_front = bus.borrow_mut().add_master("hw_front");
    let m_cpu = bus.borrow_mut().add_master("cpu");
    let m_match = bus.borrow_mut().add_master("matcher");

    // FPGA (level 3 only).
    let fpga: Option<SharedFpga> = match matcher_kind {
        MatcherKind::Hardwired => None,
        MatcherKind::Fpga { .. } => {
            let f = Fpga::shared("efpga", addr::FPGA_CFG_BASE, arch.fpga_switch_cycles);
            f.borrow_mut().set_instrument(instrument.clone());
            if let Some(p) = &plan {
                f.borrow_mut().set_fault_plan(p.clone());
            }
            let num_ctx = partition.num_contexts().max(1);
            let mut per_ctx: Vec<Vec<(String, u64)>> = vec![Vec::new(); num_ctx];
            for (module, c) in partition.fpga_modules() {
                let mix = module_mix(module, &config, gallery_len);
                let per_call = match module {
                    "distance" | "calcdist" => {
                        (arch.fpga_cycles(mix.total())).div_ceil(gallery_len as u64)
                    }
                    "root" => (arch.fpga_cycles(mix.total())).div_ceil(gallery_len as u64),
                    other => panic!("module `{other}` cannot be FPGA-mapped in this model"),
                };
                per_ctx[c].push((module.to_owned(), per_call));
            }
            // Merge distance+calcdist into the single "distance" resource.
            {
                let mut fb = f.borrow_mut();
                for (ci, funcs) in per_ctx.into_iter().enumerate() {
                    let mut merged: Vec<(String, u64)> = Vec::new();
                    let mut dist_cycles = 0u64;
                    for (name, cyc) in funcs {
                        if name == "distance" || name == "calcdist" {
                            dist_cycles += cyc;
                        } else {
                            merged.push((name, cyc));
                        }
                    }
                    if dist_cycles > 0 {
                        merged.push(("distance".to_owned(), dist_cycles));
                    }
                    let words = arch.bitstream_words_per_function * merged.len().max(1) as u32;
                    fb.add_context(Context {
                        name: format!("config{}", ci + 1),
                        functions: merged,
                        bitstream_words: words,
                    });
                }
            }
            Some(f)
        }
    };
    let (strategy, rtl_cosim) = match matcher_kind {
        MatcherKind::Hardwired => (ReconfigStrategy::Hoisted, false),
        MatcherKind::Fpga {
            strategy,
            rtl_cosim,
        } => (strategy, rtl_cosim),
    };
    let root_rtl = if rtl_cosim {
        let unrolled = behav::unroll::unroll(
            &media::kernels::root_function(),
            media::kernels::ROOT_ITERATIONS,
        );
        Some(hdl::synth::synthesize(&unrolled).expect("root kernel synthesizes"))
    } else {
        None
    };
    let distance_ctx = fpga
        .as_ref()
        .and_then(|f| f.borrow().context_of("distance"))
        .unwrap_or(ContextId(0));
    let root_ctx = fpga
        .as_ref()
        .and_then(|f| f.borrow().context_of("root"))
        .unwrap_or(ContextId(0));

    // Channels.
    let ch_frames = sim.add_fifo("front→cpu", 2);
    let ch_req = sim.add_fifo("cpu→matcher", 2);
    let ch_resp = sim.add_fifo("matcher→cpu", gallery_len.max(2));

    // HW front-end: precompute frames + charges, trace checkpoints now —
    // no: checkpoints must be traced in-simulation. The front-end traces
    // bay/erosion checksums when it hands the frame over.
    let front_charge: u64 = ["camera", "bay", "erosion"].iter().map(|m| charge(m)).sum();
    let frames: VecDeque<(media::image::GrayImage, u64)> = workload
        .probes
        .iter()
        .map(|&(id, pose, seed)| {
            let raw = workload.dataset.frame(id, pose, seed);
            let gray = bay(&raw);
            let eroded = erosion(&gray);
            (eroded, front_charge)
        })
        .collect();
    // Checkpoint traces for bay/erosion are emitted by a thin wrapper
    // process reading the handover FIFO.
    let bay_sums: VecDeque<(u64, u64)> = workload
        .probes
        .iter()
        .map(|&(id, pose, seed)| {
            let raw = workload.dataset.frame(id, pose, seed);
            let g = bay(&raw);
            let e = erosion(&g);
            (
                g.data.iter().map(|&p| p as u64).sum(),
                e.data.iter().map(|&p| p as u64).sum(),
            )
        })
        .collect();
    let ch_traced = sim.add_fifo("front_traced", 2);
    sim.add_process(HwFront {
        frames,
        out: ch_frames,
        bus: bus.clone(),
        master: m_front,
        policy: recovery,
        recovery: recovery_state.clone(),
        phase: 0,
        staged: None,
    });
    sim.add_process(FrontTracer {
        inp: ch_frames,
        out: ch_traced,
        checksums: bay_sums,
        staged: None,
    });

    sim.add_process(CpuTask {
        inp_frames: ch_traced,
        to_matcher: ch_req,
        from_matcher: ch_resp,
        bus: bus.clone(),
        master: m_cpu,
        fpga: fpga.clone(),
        policy: recovery,
        recovery: recovery_state.clone(),
        strategy,
        distance_ctx,
        root_ctx,
        front_sw_cycles: ["edge", "ellipse", "crtbord", "crtline", "calcline"]
            .iter()
            .map(|m| charge(m))
            .sum(),
        winner_cycles: charge("winner"),
        gallery_len,
        phase: CpuPhase::AwaitFrame,
        frames_left: workload.probes.len(),
    });

    sim.add_process(Matcher {
        inp: ch_req,
        out: ch_resp,
        bus: bus.clone(),
        master: m_match,
        gallery: Rc::new(workload.gallery.entries.clone()),
        distance_cycles: distance_entry_cycles,
        root_cycles: root_entry_cycles,
        distance_sw_cycles: distance_sw_entry_cycles,
        root_sw_cycles: root_sw_entry_cycles,
        fpga: fpga.clone(),
        policy: recovery,
        recovery: recovery_state.clone(),
        root_rtl,
        distance_kernel: CompiledKernel::distance_step(BehavExec::default()),
        root_kernel: CompiledKernel::root(BehavExec::default()),
        current: None,
        pending: VecDeque::new(),
    });

    let sim_result = sim.run(SimTime::MAX);
    // An unrecovered platform fault retires its process and usually
    // starves the others into a deadlock; report the root cause, not the
    // symptom.
    if let Some(fault) = recovery_state.borrow_mut().failure.take() {
        return Err(RunError::Platform(fault));
    }
    let outcome = sim_result?;
    let trace = sim.take_trace();
    let total_ticks = outcome.stats.final_time.ticks();

    let reference = workload.reference_results();
    let expected = crate::level1::reference_trace(&reference);
    let cmp = trace.matches_untimed(&expected);
    let recognized: Vec<usize> = trace
        .items_for("winner")
        .into_iter()
        .map(|m| match m {
            Msg::Winner(entry) => workload.gallery.entries[*entry].0,
            other => panic!("winner trace holds {other:?}"),
        })
        .collect();

    let bus_report = bus.borrow().report(outcome.stats.final_time);
    let fpga_report = fpga.map(|f| f.borrow().report());
    let fault_report = plan.map(|p| {
        let st = recovery_state.borrow();
        FaultReport {
            injected: *p.borrow().log(),
            retries: st.retries,
            recovered: st.recovered,
            degraded: st.degraded.iter().cloned().collect(),
        }
    });
    if instrument.enabled() {
        instrument.counter_add("run.frames", workload.probes.len() as u64);
        if let Some(fr) = &fault_report {
            instrument.counter_add(
                "faults.bitstream_corruptions",
                fr.injected.bitstream_corruptions,
            );
            instrument.counter_add("faults.bus_errors", fr.injected.bus_errors);
            instrument.counter_add("faults.load_timeouts", fr.injected.load_timeouts);
            instrument.counter_add("faults.slave_stalls", fr.injected.slave_stalls);
            instrument.counter_add("recovery.retries", fr.retries);
            instrument.counter_add("recovery.recovered", fr.recovered);
            instrument.counter_add("recovery.degraded_functions", fr.degraded.len() as u64);
        }
    }
    Ok(TimedReport {
        recognized,
        matches_reference: cmp.is_ok(),
        mismatch: cmp.err().map(|e| e.to_string()),
        outcome,
        total_ticks,
        ticks_per_frame: if workload.probes.is_empty() {
            0.0
        } else {
            total_ticks as f64 / workload.probes.len() as f64
        },
        bus: bus_report,
        fpga: fpga_report,
        faults: fault_report,
        trace,
    })
}

/// Emits the bay/erosion checkpoints as frames pass the handover FIFO.
struct FrontTracer {
    inp: FifoId,
    out: FifoId,
    checksums: VecDeque<(u64, u64)>,
    staged: Option<Msg>,
}

impl Process<Msg> for FrontTracer {
    fn poll(&mut self, ctx: &mut ProcessCtx<'_, Msg>) -> Activation {
        if let Some(tok) = self.staged.take() {
            if let Err(tok) = ctx.try_write(self.out, tok) {
                self.staged = Some(tok);
                return Activation::WaitFifoWritable(self.out);
            }
            return Activation::Continue;
        }
        match ctx.try_read(self.inp) {
            None => Activation::WaitFifoReadable(self.inp),
            Some(tok) => {
                let (bay_sum, ero_sum) = self
                    .checksums
                    .pop_front()
                    .expect("one checksum pair per frame");
                ctx.trace("bay", Msg::Scalar(bay_sum));
                ctx.trace("erosion", Msg::Scalar(ero_sum));
                self.staged = Some(tok);
                Activation::Continue
            }
        }
    }
    fn name(&self) -> &str {
        "front_tracer"
    }
}
