//! Service job descriptors: everything a tenant submits to the batch
//! server, as plain data.
//!
//! A [`JobSpec`] names one full-flow verification run — a design
//! ([`DesignSpec`]), an optional fault-injection campaign
//! ([`FaultPlanSpec`]), a platform variant ([`PlatformSpec`]) and a
//! [`SupervisionPolicy`] — reusing the flow/supervise types rather than
//! inventing a parallel vocabulary. Specs are deterministic values: two
//! equal specs describe bit-identical runs, which is what lets the
//! `serve` crate promise order- and worker-count-independent batch
//! reports, and what makes [`JobSpec::fingerprint`] a sound identity for
//! cross-batch comparisons.

use crate::partition::ArchConfig;
use crate::supervise::SupervisionPolicy;
use crate::workload::Workload;
use cache::{Fingerprint, FingerprintBuilder};
use media::DatasetConfig;
use sim::FaultPlan;

/// The design axis of a job: the synthetic recognition workload the flow
/// simulates and verifies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DesignSpec {
    /// Synthetic dataset parameters (identities, poses, frame geometry,
    /// noise amplitude).
    pub dataset: DatasetConfig,
    /// Number of probe frames presented to the camera.
    pub probes: usize,
}

impl DesignSpec {
    /// The default test-scale design — exactly [`Workload::small`].
    pub fn small() -> Self {
        DesignSpec {
            dataset: DatasetConfig {
                identities: 4,
                poses: 2,
                width: 64,
                height: 64,
                noise_amp: 6,
            },
            probes: 2,
        }
    }

    /// Materializes the workload this design describes.
    pub fn workload(&self) -> Workload {
        Workload::new(self.dataset, self.probes)
    }
}

impl Default for DesignSpec {
    fn default() -> Self {
        DesignSpec::small()
    }
}

/// The fault axis of a job: a seeded, reproducible level-3 fault
/// campaign.
///
/// Jobs always run their fault plans under the *default*
/// [`crate::timed::RecoveryPolicy`] (bounded retry, degrade-to-software),
/// and the spec deliberately exposes only the fault kinds that policy
/// always absorbs — bitstream corruption, load timeouts and slave stalls
/// all end in retry or software fallback, so injected faults change a
/// job's timing, never its function or its verdicts (the PR-1
/// invariant). Bus data errors, which can exhaust retries and surface a
/// typed platform error, stay out of the service surface on purpose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlanSpec {
    /// Seed of the deterministic fault schedule.
    pub seed: u64,
    /// Bitstream-corruption rate, in ppm of context downloads.
    pub bitstream_corruption_ppm: u32,
    /// Load-timeout rate, in ppm of context downloads.
    pub load_timeout_ppm: u32,
    /// Slave-stall rate, in ppm of bus transfers (timing-only fault).
    pub slave_stall_ppm: u32,
    /// Ticks a stalled slave responds late.
    pub stall_ticks: u64,
}

impl FaultPlanSpec {
    /// A moderate campaign under `seed`: 20% corrupted downloads, 10%
    /// load timeouts, 5% slave stalls of 8 ticks.
    pub fn seeded(seed: u64) -> Self {
        FaultPlanSpec {
            seed,
            bitstream_corruption_ppm: 200_000,
            load_timeout_ppm: 100_000,
            slave_stall_ppm: 50_000,
            stall_ticks: 8,
        }
    }

    /// Materializes the seeded fault plan.
    pub fn plan(&self) -> FaultPlan {
        FaultPlan::new(self.seed)
            .with_bitstream_corruption(self.bitstream_corruption_ppm)
            .with_load_timeouts(self.load_timeout_ppm)
            .with_slave_stalls(self.slave_stall_ppm, self.stall_ticks)
    }
}

/// The platform axis of a job: the level-3 architecture knobs a tenant
/// may vary (relative fabric speeds and reconfiguration costs). Bus and
/// CPU models stay at the workspace defaults — they are the paper's
/// fixed substrate, not a per-job choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlatformSpec {
    /// HW speedup of an FPGA kernel call over the SW implementation.
    pub hw_speedup: u64,
    /// Slowdown of reconfigurable fabric vs hard-wired logic.
    pub fpga_slowdown: u64,
    /// Bitstream words per downloaded function.
    pub bitstream_words_per_function: u32,
    /// Ticks to switch the active context after a download.
    pub fpga_switch_cycles: u64,
}

impl Default for PlatformSpec {
    fn default() -> Self {
        let arch = ArchConfig::default();
        PlatformSpec {
            hw_speedup: arch.hw_speedup,
            fpga_slowdown: arch.fpga_slowdown,
            bitstream_words_per_function: arch.bitstream_words_per_function,
            fpga_switch_cycles: arch.fpga_switch_cycles,
        }
    }
}

impl PlatformSpec {
    /// Materializes the [`ArchConfig`] this spec describes (defaults for
    /// everything the spec does not expose).
    pub fn arch(&self) -> ArchConfig {
        ArchConfig {
            hw_speedup: self.hw_speedup,
            fpga_slowdown: self.fpga_slowdown,
            bitstream_words_per_function: self.bitstream_words_per_function,
            fpga_switch_cycles: self.fpga_switch_cycles,
            ..ArchConfig::default()
        }
    }
}

/// One complete service job: design × faults × platform × supervision.
///
/// `JobSpec::default()` is the canonical single-tenant job — running it
/// through the service is bit-identical to calling
/// [`crate::flow::run_full_flow_supervised`] on [`Workload::small`] with
/// the default policy (pinned by `tests/service_equivalence.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JobSpec {
    /// The design to push through the flow.
    pub design: DesignSpec,
    /// Optional level-3 fault campaign.
    pub faults: Option<FaultPlanSpec>,
    /// Level-3 platform variant.
    pub platform: PlatformSpec,
    /// Supervision policy for the verification obligations.
    pub policy: SupervisionPolicy,
}

impl JobSpec {
    /// Scheduling cost charged against the tenant's deficit-round-robin
    /// deficit: one unit per probe frame (the axis that scales the
    /// simulation work), never less than 1.
    pub fn cost(&self) -> u64 {
        (self.design.probes as u64).max(1)
    }

    /// Content-addressed identity of the spec (dual-FNV, the obligation
    /// cache's fingerprint construction): equal specs — and only equal
    /// specs, up to hash collision — share a fingerprint, so batch
    /// harnesses can match jobs across submission orders and services.
    pub fn fingerprint(&self) -> Fingerprint {
        let mut b = FingerprintBuilder::new("job")
            .param(self.design.dataset.identities as u64)
            .param(self.design.dataset.poses as u64)
            .param(self.design.dataset.width as u64)
            .param(self.design.dataset.height as u64)
            .param(self.design.dataset.noise_amp as u64)
            .param(self.design.probes as u64);
        b = match self.faults {
            None => b.param(0),
            Some(f) => b
                .param(1)
                .param(f.seed)
                .param(u64::from(f.bitstream_corruption_ppm))
                .param(u64::from(f.load_timeout_ppm))
                .param(u64::from(f.slave_stall_ppm))
                .param(f.stall_ticks),
        };
        b = b
            .param(self.platform.hw_speedup)
            .param(self.platform.fpga_slowdown)
            .param(u64::from(self.platform.bitstream_words_per_function))
            .param(self.platform.fpga_switch_cycles);
        b = b
            .param(self.policy.effort.sat_conflicts.map_or(0, |v| v + 1))
            .param(self.policy.effort.sat_decisions.map_or(0, |v| v + 1))
            .param(self.policy.effort.bdd_nodes.map_or(0, |v| v + 1))
            .param(u64::from(self.policy.retry_panicked))
            .param(u64::from(self.policy.sim_vectors))
            .param(u64::from(self.policy.sim_cycles));
        b.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_design_is_the_small_workload() {
        let w = DesignSpec::default().workload();
        let small = Workload::small();
        assert_eq!(w.probes.len(), small.probes.len());
        assert_eq!(w.gallery_len(), small.gallery_len());
    }

    #[test]
    fn default_platform_is_the_default_arch() {
        assert_eq!(PlatformSpec::default().arch(), ArchConfig::default());
    }

    #[test]
    fn fault_spec_materializes_a_live_plan() {
        let plan = FaultPlanSpec::seeded(7).plan();
        assert!(!plan.is_inert());
        assert_eq!(plan.seed(), 7);
    }

    #[test]
    fn fingerprints_separate_every_axis() {
        let base = JobSpec::default();
        let mut variants = vec![base];
        let mut design = base;
        design.design.probes = 3;
        variants.push(design);
        let mut faults = base;
        faults.faults = Some(FaultPlanSpec::seeded(7));
        variants.push(faults);
        let mut faults2 = faults;
        faults2.faults = Some(FaultPlanSpec::seeded(8));
        variants.push(faults2);
        let mut platform = base;
        platform.platform.hw_speedup = 8;
        variants.push(platform);
        let mut policy = base;
        policy.policy.effort = exec::Effort::bounded(100);
        variants.push(policy);
        // An unbounded axis is distinct from a zero-capped one.
        let mut zero_cap = base;
        zero_cap.policy.effort.sat_conflicts = Some(0);
        variants.push(zero_cap);
        let fps: Vec<_> = variants.iter().map(JobSpec::fingerprint).collect();
        for i in 0..fps.len() {
            for j in (i + 1)..fps.len() {
                assert_ne!(fps[i], fps[j], "specs {i} and {j} collide");
            }
        }
        // Equal specs share a fingerprint.
        assert_eq!(base.fingerprint(), JobSpec::default().fingerprint());
    }
}
