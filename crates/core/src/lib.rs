//! Symbad: the integrated four-level design and verification flow.
//!
//! This crate is the paper's primary contribution — the methodology of
//! Figure 1 — assembled from the substrate crates:
//!
//! | Level | Module | Model | Verification |
//! |-------|--------|-------|--------------|
//! | 1 | [`level1`] | untimed functional dataflow network (Figure 2) on the `sim` kernel | trace match vs the C reference (`media::reference`); ATPG (`atpg`); LPV deadlock freeness (`lp`) |
//! | 2 | [`level2`] | HW/SW-partitioned timed TL model: CPU + AMBA-class bus, automatic SW annotation | trace match vs level 1; LPV deadlines and FIFO sizing |
//! | 3 | [`level3`] | level 2 + embedded FPGA with contexts and bitstream downloads | trace match vs level 2; SymbC consistency |
//! | 4 | [`level4`] | behavioural synthesis of the FPGA kernels to RTL + bus wrapper FSMs | model checking (BMC / k-induction / BDD) + PCC property coverage |
//!
//! [`partition`] holds the architecture description shared by levels 2–4;
//! [`explore`] implements the architecture-exploration sweeps (partitioning
//! and context-splitting ablations, experiments E9/E10); [`cascade`] runs
//! the full verification cascade of Figure 1 end-to-end and attributes each
//! seeded error class to the stage that catches it (experiment E12);
//! [`supervise`] provides the supervised-execution vocabulary (panic
//! isolation, deterministic effort budgets, degraded partial verdicts)
//! used by the `*_supervised` entry points of [`flow`], [`level4`], and
//! [`cascade`].
//!
//! # Quickstart
//!
//! ```
//! use symbad_core::workload::Workload;
//! use symbad_core::level1;
//!
//! // A small workload: 4 identities × 2 poses, 2 probe frames.
//! let workload = Workload::small();
//! let report = level1::run(&workload).expect("level-1 simulation");
//! assert!(report.matches_reference);
//! ```

pub mod cascade;
pub mod explore;
pub mod flow;
pub mod job;
pub mod level1;
pub mod level2;
pub mod level3;
pub mod level4;
pub mod msg;
pub mod partition;
pub mod supervise;
pub mod timed;
pub mod workload;

pub use msg::Msg;
pub use partition::{Domain, Partition};
pub use supervise::{DegradationSummary, ObligationOutcome, ObligationStatus, SupervisionPolicy};
pub use timed::{FaultReport, PlatformFault, RecoveryPolicy, RunError};
pub use workload::Workload;
