//! The token type of the case-study simulations.
//!
//! One enum carries every payload that flows through the Figure-2 network,
//! so a single `sim::Simulator<Msg>` hosts all abstraction levels and
//! traces stay comparable across them.

use media::image::BayerImage;
use media::pipeline::FeatureVector;

/// A dataflow token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Msg {
    /// A raw camera frame.
    Frame(BayerImage),
    /// A normalized face signature.
    Features(FeatureVector),
    /// A gallery signature tagged with its entry index.
    GalleryEntry(usize, FeatureVector),
    /// Per-element squared differences (DISTANCE output) with entry index.
    SquaredDiffs(usize, Vec<u64>),
    /// An accumulated squared distance (CALCDIST output) with entry index.
    SumSq(usize, u64),
    /// A rooted distance (ROOT output) with entry index.
    Dist(usize, u32),
    /// The recognized gallery entry index (WINNER output).
    Winner(usize),
    /// A scalar observation (checksums and counters used in traces).
    Scalar(u64),
}

impl Msg {
    /// Approximate size of the token in bus words — what a boundary
    /// crossing costs on the level-2/3 bus.
    pub fn bus_words(&self) -> u32 {
        match self {
            // 4 packed 8-bit pixels per 32-bit word.
            Msg::Frame(f) => (f.data.len() as u32).div_ceil(4),
            // 2 packed 16-bit elements per word.
            Msg::Features(v) | Msg::GalleryEntry(_, v) => (v.len() as u32).div_ceil(2),
            // One 64-bit value = 2 words.
            Msg::SquaredDiffs(_, v) => 2 * v.len() as u32,
            Msg::SumSq(..) => 2,
            Msg::Dist(..) | Msg::Winner(_) | Msg::Scalar(_) => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bus_word_sizes() {
        let f = BayerImage::new(64, 64);
        assert_eq!(Msg::Frame(f).bus_words(), 64 * 64 / 4);
        assert_eq!(Msg::Features(vec![0; 128]).bus_words(), 64);
        assert_eq!(Msg::Features(vec![0; 3]).bus_words(), 2);
        assert_eq!(Msg::SquaredDiffs(0, vec![0; 10]).bus_words(), 20);
        assert_eq!(Msg::Dist(0, 5).bus_words(), 1);
        assert_eq!(Msg::SumSq(0, 5).bus_words(), 2);
        assert_eq!(Msg::Winner(1).bus_words(), 1);
        assert_eq!(Msg::Scalar(9).bus_words(), 1);
    }
}
