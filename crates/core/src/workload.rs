//! Workload description shared by all levels.

use media::dataset::{Dataset, DatasetConfig};
use media::reference::{enroll, Gallery};

/// One probe to recognize: `(identity, pose, noise_seed)`.
pub type Probe = (usize, usize, u64);

/// A complete recognition workload: the dataset, the enrolled gallery and
/// the probe sequence. All levels simulate exactly this workload, which is
/// what makes their traces comparable.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The synthetic dataset.
    pub dataset: Dataset,
    /// The enrolled gallery (noise-free signatures).
    pub gallery: Gallery,
    /// Probes presented to the camera, in order.
    pub probes: Vec<Probe>,
}

impl Workload {
    /// Builds a workload: enrols the dataset and schedules `num_probes`
    /// probes round-robin over identities/poses with distinct noise seeds.
    pub fn new(config: DatasetConfig, num_probes: usize) -> Self {
        let dataset = Dataset::new(config);
        let gallery = enroll(&dataset);
        let probes = (0..num_probes)
            .map(|i| {
                let id = i % config.identities;
                let pose = (i / config.identities) % config.poses;
                (id, pose, 1 + i as u64)
            })
            .collect();
        Workload {
            dataset,
            gallery,
            probes,
        }
    }

    /// The paper-scale workload: 20 identities, 4 poses (80-entry gallery).
    pub fn paper(num_probes: usize) -> Self {
        Workload::new(DatasetConfig::default(), num_probes)
    }

    /// A small workload for tests and doc examples: 4 identities × 2 poses,
    /// 2 probes.
    pub fn small() -> Self {
        Workload::new(
            DatasetConfig {
                identities: 4,
                poses: 2,
                width: 64,
                height: 64,
                noise_amp: 6,
            },
            2,
        )
    }

    /// Number of gallery entries.
    pub fn gallery_len(&self) -> usize {
        self.gallery.entries.len()
    }

    /// Expected (reference-model) recognition results for every probe.
    pub fn reference_results(&self) -> Vec<media::reference::RecognitionResult> {
        self.probes
            .iter()
            .map(|&(id, pose, seed)| {
                let frame = self.dataset.frame(id, pose, seed);
                media::reference::recognize(&frame, &self.gallery)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_workload_shape() {
        let w = Workload::small();
        assert_eq!(w.gallery_len(), 8);
        assert_eq!(w.probes.len(), 2);
        assert_eq!(w.probes[0], (0, 0, 1));
        assert_eq!(w.probes[1], (1, 0, 2));
    }

    #[test]
    fn paper_workload_has_80_entries() {
        let w = Workload::paper(1);
        assert_eq!(w.gallery_len(), 80);
    }

    #[test]
    fn reference_results_align_with_probes() {
        let w = Workload::small();
        let results = w.reference_results();
        assert_eq!(results.len(), 2);
    }
}
