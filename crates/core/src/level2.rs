//! Level 2: the HW/SW-partitioned timed transaction-level model.
//!
//! "At level 2, the description obtained is mapped onto an architecture …
//! simulation is used intensively for evaluating the different possible
//! architectures" (§3.2). This module instantiates the shared timed model
//! with a hardwired matcher (no reconfigurable hardware yet) and the
//! paper's level-2 partition by default.

use crate::partition::{ArchConfig, Partition};
use crate::timed::{self, MatcherKind, TimedReport};
use crate::workload::Workload;
use sim::SimError;

/// Runs the level-2 model with the paper's default partition.
///
/// ```
/// let workload = symbad_core::Workload::small();
/// let report = symbad_core::level2::run(&workload).expect("level-2 simulation");
/// // The timed mapping must preserve level-1 functionality and yield a
/// // measurable throughput — the quantities §3.2 simulates for.
/// assert!(report.matches_reference);
/// assert!(report.ticks_per_frame > 0.0);
/// ```
///
/// # Errors
///
/// Propagates kernel errors.
pub fn run(workload: &Workload) -> Result<TimedReport, SimError> {
    run_with(workload, &Partition::paper_level2(), &ArchConfig::default())
}

/// [`run`] with telemetry: bus spans, FIFO gauges, and kernel counters are
/// reported through `instrument`.
///
/// # Errors
///
/// Propagates kernel errors.
pub fn run_instrumented(
    workload: &Workload,
    instrument: &telemetry::SharedInstrument,
) -> Result<TimedReport, SimError> {
    timed::run_faulted_instrumented(
        workload,
        &Partition::paper_level2(),
        &ArchConfig::default(),
        MatcherKind::Hardwired,
        None,
        crate::timed::RecoveryPolicy::default(),
        instrument,
    )
    .map_err(|e| match e {
        crate::timed::RunError::Sim(e) => e,
        crate::timed::RunError::Platform(f) => {
            unreachable!("platform fault without a fault plan: {f}")
        }
    })
}

/// Runs the level-2 model with an explicit partition and platform
/// configuration (the architecture-exploration entry point).
///
/// # Errors
///
/// Propagates kernel errors.
pub fn run_with(
    workload: &Workload,
    partition: &Partition,
    arch: &ArchConfig,
) -> Result<TimedReport, SimError> {
    timed::run(workload, partition, arch, MatcherKind::Hardwired)
}

/// LPV FIFO dimensioning applied to the level-2 model's own channels:
/// derives producer/consumer rates from the annotated module timings and
/// returns the minimal safe capacity per inter-process channel.
///
/// The returned bounds are what E6 calls "FIFO channel dimensioning"; the
/// test below checks them against watermarks observed in simulation.
pub fn dimension_channels(
    workload: &Workload,
    partition: &Partition,
    arch: &ArchConfig,
) -> Vec<(String, lp::FifoBound)> {
    dimension_channels_mode(workload, partition, arch, exec::ExecMode::Sequential)
}

/// [`dimension_channels`] with each channel dimensioned as an independent
/// LP obligation, optionally across worker threads. Bounds are
/// bit-identical to the sequential run (the rate derivation is pure and
/// the batch preserves channel order).
pub fn dimension_channels_mode(
    workload: &Workload,
    partition: &Partition,
    arch: &ArchConfig,
    mode: exec::ExecMode,
) -> Vec<(String, lp::FifoBound)> {
    use media::profile::module_mix;
    let config = workload.dataset.config();
    let gallery = workload.gallery_len();
    let charge = |module: &str| -> u64 {
        let mix = module_mix(module, config, gallery);
        match partition.domain(module) {
            crate::Domain::Sw => arch.cpu.cycles(mix),
            _ => arch.hw_cycles(mix.total()),
        }
    };
    // Channel `front→cpu`: producer = HW front-end (camera+bay+erosion per
    // frame), consumer = CPU task (SW front half + match orchestration).
    let front_period: u64 = ["camera", "bay", "erosion"].iter().map(|m| charge(m)).sum();
    let cpu_period: u64 = [
        "edge", "ellipse", "crtbord", "crtline", "calcline", "winner",
    ]
    .iter()
    .map(|m| charge(m))
    .sum::<u64>()
        + charge("distance")
        + charge("calcdist")
        + charge("root");
    let horizon = (front_period + cpu_period) * workload.probes.len() as u64;
    // Channel `matcher→cpu`: the matcher bursts one response per gallery
    // entry while the CPU drains them one at a time.
    let match_entry: u64 = (charge("distance") + charge("calcdist"))
        .div_ceil(gallery as u64)
        .max(1);
    let rates = [
        lp::ChannelRates {
            producer_burst: 1,
            producer_period: front_period.max(1),
            consumer_period: cpu_period.max(1),
            consumer_latency: 0,
            horizon: horizon.max(1),
        },
        lp::ChannelRates {
            producer_burst: 1,
            producer_period: match_entry,
            consumer_period: 1,
            consumer_latency: match_entry * gallery as u64,
            horizon: horizon.max(1),
        },
    ];
    let bounds = lp::dimension_fifo_batch(&rates, mode);
    ["front→cpu", "matcher→cpu"]
        .iter()
        .map(|n| (*n).to_owned())
        .zip(bounds)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level2_matches_reference() {
        let w = Workload::small();
        let report = run(&w).expect("level-2 run");
        assert!(report.matches_reference, "mismatch: {:?}", report.mismatch);
        assert!(report.total_ticks > 0, "time must advance at level 2");
        assert!(report.fpga.is_none());
    }

    #[test]
    fn level2_matches_level1_functionally() {
        let w = Workload::small();
        let l1 = crate::level1::run(&w).expect("level 1");
        let l2 = run(&w).expect("level 2");
        assert_eq!(l1.recognized, l2.recognized);
        // Full untimed trace equivalence between adjacent levels — the
        // paper's per-refinement verification step.
        assert!(l1.trace.matches_untimed(&l2.trace).is_ok());
    }

    #[test]
    fn bus_sees_traffic_from_all_masters() {
        let w = Workload::small();
        let report = run(&w).expect("run");
        for m in &report.bus.masters {
            assert!(
                m.transactions > 0,
                "master {} issued no transactions",
                m.name
            );
        }
        assert!(report.bus.utilization > 0.0);
    }

    #[test]
    fn lpv_fifo_bounds_are_positive_and_finite() {
        let w = Workload::small();
        let bounds = dimension_channels(&w, &Partition::paper_level2(), &ArchConfig::default());
        assert_eq!(bounds.len(), 2);
        for (name, b) in &bounds {
            assert!(b.capacity >= 1, "{name} bound must be at least one token");
            assert!(
                b.capacity <= 4096,
                "{name} bound implausibly large: {}",
                b.capacity
            );
        }
        // The slow-consumer response channel needs more slack than the
        // frame channel (the matcher bursts a whole gallery's worth).
        assert!(bounds[1].1.capacity >= bounds[0].1.capacity);
    }

    #[test]
    fn parallel_dimensioning_is_bit_identical() {
        let w = Workload::small();
        let partition = Partition::paper_level2();
        let arch = ArchConfig::default();
        let reference = dimension_channels(&w, &partition, &arch);
        for workers in [2, 8] {
            assert_eq!(
                dimension_channels_mode(
                    &w,
                    &partition,
                    &arch,
                    exec::ExecMode::Parallel { workers }
                ),
                reference
            );
        }
    }

    #[test]
    fn all_sw_partition_is_much_slower() {
        let w = Workload::small();
        let hw = run(&w).expect("partitioned");
        let sw = run_with(&w, &Partition::all_sw(), &ArchConfig::default()).expect("all-sw");
        assert!(
            sw.total_ticks > 2 * hw.total_ticks,
            "all-SW ({}) should be far slower than partitioned ({})",
            sw.total_ticks,
            hw.total_ticks
        );
        assert_eq!(sw.recognized, hw.recognized, "functionality unchanged");
    }
}
