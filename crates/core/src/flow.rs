//! The complete Figure-1 flow as one call.
//!
//! [`run_full_flow`] executes every phase of the methodology in order —
//! level-1 functional model, LPV checks, level-2 mapping, level-3
//! reconfigurable platform, SymbC, level-4 RTL + model checking + PCC —
//! with the cross-level equivalence checks between refinements, and
//! aggregates the evidence into one [`FlowReport`]. This is the "system
//! level design platform" deliverable the abstract promises, as a library
//! entry point.

use crate::partition::ArchConfig;
use crate::workload::Workload;
use crate::{cascade, level1, level2, level3, level4};
use lp::lpv::LivenessVerdict;
use sim::SimError;

/// One phase's summary line.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSummary {
    /// Phase name.
    pub phase: &'static str,
    /// Whether the phase's checks all passed.
    pub ok: bool,
    /// Evidence in one line.
    pub detail: String,
}

/// Aggregated evidence of a full flow run.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowReport {
    /// Per-phase summaries in flow order.
    pub phases: Vec<PhaseSummary>,
    /// Recognized identity per probe (identical across all levels when
    /// the flow is healthy).
    pub recognized: Vec<usize>,
}

impl FlowReport {
    /// Whether every phase passed.
    pub fn all_ok(&self) -> bool {
        self.phases.iter().all(|p| p.ok)
    }
}

/// Runs the complete four-level flow on a workload.
///
/// # Errors
///
/// Propagates kernel errors from the simulations.
pub fn run_full_flow(workload: &Workload) -> Result<FlowReport, SimError> {
    let mut phases = Vec::new();

    // ── Level 1: functional model vs reference ────────────────────────
    let l1 = level1::run(workload)?;
    phases.push(PhaseSummary {
        phase: "level 1: functional model",
        ok: l1.matches_reference && l1.outcome.is_quiescent(),
        detail: format!(
            "trace vs C reference: {}; clean completion: {}",
            l1.matches_reference,
            l1.outcome.is_quiescent()
        ),
    });

    // ── Level 1 verification: LPV deadlock freeness ────────────────────
    let net = cascade::fig2_petri_net(1);
    let liveness = lp::check_liveness(&net);
    phases.push(PhaseSummary {
        phase: "level 1: LPV deadlock freeness",
        ok: liveness.is_live(),
        detail: match &liveness {
            LivenessVerdict::Live { min_cycle_tokens } => {
                format!("live; min cycle tokens {min_cycle_tokens}")
            }
            other => format!("{other:?}"),
        },
    });

    // ── Level 2: architecture mapping ──────────────────────────────────
    let arch = ArchConfig::default();
    let l2 = level2::run(workload)?;
    let l2_matches_l1 = l1.trace.matches_untimed(&l2.trace).is_ok();
    phases.push(PhaseSummary {
        phase: "level 2: timed TL mapping",
        ok: l2.matches_reference && l2_matches_l1,
        detail: format!(
            "{:.0} ticks/frame; bus {:.1}%; trace ≡ level 1: {l2_matches_l1}",
            l2.ticks_per_frame,
            l2.bus.utilization * 100.0
        ),
    });

    // ── Level 2 verification: deadline LP ──────────────────────────────
    let bounds = level2::dimension_channels(workload, &crate::Partition::paper_level2(), &arch);
    phases.push(PhaseSummary {
        phase: "level 2: LPV FIFO dimensioning",
        ok: bounds.iter().all(|(_, b)| b.capacity >= 1),
        detail: bounds
            .iter()
            .map(|(n, b)| format!("{n}: {} tokens", b.capacity))
            .collect::<Vec<_>>()
            .join(", "),
    });

    // ── Level 3: reconfigurable platform ───────────────────────────────
    let l3 = level3::run(workload)?;
    let l3_matches_l2 = l2.trace.matches_untimed(&l3.trace).is_ok();
    let fpga = l3.fpga.clone().expect("level 3 has an FPGA");
    phases.push(PhaseSummary {
        phase: "level 3: reconfigurable platform",
        ok: l3.matches_reference && l3_matches_l2,
        detail: format!(
            "{:.0} ticks/frame; {} reconfigs, {} bitstream words; trace ≡ level 2: {l3_matches_l2}",
            l3.ticks_per_frame, fpga.reconfigurations, fpga.download_words
        ),
    });

    // ── Level 3 verification: SymbC ────────────────────────────────────
    let (sw, map) = cascade::instrumented_sw(true);
    let symbc_verdict = symbc::check(&sw, &map);
    phases.push(PhaseSummary {
        phase: "level 3: SymbC consistency",
        ok: symbc_verdict.is_consistent(),
        detail: format!("{symbc_verdict:?}"),
    });

    // ── Level 4: RTL + formal ──────────────────────────────────────────
    let l4 = level4::run();
    let kernels_ok = l4.kernels.iter().all(|(_, _, eq)| *eq);
    let props_ok = l4.properties.iter().all(|(_, _, p)| *p);
    phases.push(PhaseSummary {
        phase: "level 4: RTL, model checking, PCC",
        ok: kernels_ok && props_ok && l4.pcc_extended.pct() > l4.pcc_initial.pct(),
        detail: format!(
            "kernels equivalent: {kernels_ok}; {} properties proven; PCC {:.0}% → {:.0}%",
            l4.properties.len(),
            l4.pcc_initial.pct(),
            l4.pcc_extended.pct()
        ),
    });

    Ok(FlowReport {
        phases,
        recognized: l1.recognized,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_flow_passes_on_small_workload() {
        let w = Workload::small();
        let report = run_full_flow(&w).expect("flow runs");
        assert_eq!(report.phases.len(), 7);
        for p in &report.phases {
            assert!(p.ok, "{} failed: {}", p.phase, p.detail);
        }
        assert!(report.all_ok());
        assert_eq!(report.recognized.len(), w.probes.len());
    }
}
