//! The complete Figure-1 flow as one call.
//!
//! [`run_full_flow`] executes every phase of the methodology in order —
//! level-1 functional model, LPV checks, level-2 mapping, level-3
//! reconfigurable platform, SymbC, level-4 RTL + model checking + PCC —
//! with the cross-level equivalence checks between refinements, and
//! aggregates the evidence into one [`FlowReport`]. This is the "system
//! level design platform" deliverable the abstract promises, as a library
//! entry point.

use crate::job::JobSpec;
use crate::partition::ArchConfig;
use crate::supervise::{
    self, DegradationSummary, ObligationOutcome, ObligationStatus, SupervisionPolicy,
};
use crate::timed::{self, MatcherKind, ReconfigStrategy, RecoveryPolicy, RunError};
use crate::workload::Workload;
use crate::{cascade, level1, level2, level3, level4};
use lp::lpv::LivenessVerdict;
use sim::{FaultPlan, SimError};

/// One phase's summary line.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSummary {
    /// Phase name.
    pub phase: &'static str,
    /// Whether the phase's checks all passed.
    pub ok: bool,
    /// Evidence in one line.
    pub detail: String,
}

/// Key quantitative results of a flow run, pulled out of the phase
/// summaries for programmatic consumption (benchmark harnesses, the CI
/// `BENCH_flow.json` artifact).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlowMetrics {
    /// Probe frames processed per level.
    pub frames: u64,
    /// Level-2 total simulated ticks.
    pub l2_total_ticks: u64,
    /// Level-2 ticks per frame.
    pub l2_ticks_per_frame: f64,
    /// Level-3 total simulated ticks.
    pub l3_total_ticks: u64,
    /// Level-3 ticks per frame.
    pub l3_ticks_per_frame: f64,
    /// Level-3 bus utilization (0..1).
    pub l3_bus_utilization: f64,
    /// Level-3 context downloads.
    pub fpga_reconfigurations: u64,
    /// Level-3 bitstream words moved over the bus.
    pub fpga_download_words: u64,
}

/// Aggregated evidence of a full flow run.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowReport {
    /// Per-phase summaries in flow order.
    pub phases: Vec<PhaseSummary>,
    /// Recognized identity per probe (identical across all levels when
    /// the flow is healthy).
    pub recognized: Vec<usize>,
    /// Quantitative summary across the levels.
    pub metrics: FlowMetrics,
    /// Supervision outcome taxonomy — `Some` only on the supervised path
    /// ([`run_full_flow_supervised`]); the legacy entry points leave it
    /// `None` and render byte-identically to before supervision existed.
    pub degradation: Option<DegradationSummary>,
}

impl FlowReport {
    /// Whether every phase passed.
    pub fn all_ok(&self) -> bool {
        self.phases.iter().all(|p| p.ok)
    }

    /// Whether every phase passed *and* every supervised obligation ended
    /// conclusively (no budget-exhausted Unknowns, no panics). For the
    /// legacy entry points this equals [`FlowReport::all_ok`]; for the
    /// supervised flow it is the stronger claim — a degraded report can
    /// have `all_ok() == false` with `conclusive() == false` telling you
    /// whether the failures are verdicts or missing evidence.
    pub fn conclusive(&self) -> bool {
        self.all_ok()
            && self
                .degradation
                .as_ref()
                .is_none_or(DegradationSummary::is_clean)
    }

    /// Builds the structured report (phases, metrics, recognition).
    pub fn to_report(&self) -> telemetry::Report {
        let mut phases = telemetry::Section::new("phases");
        for p in &self.phases {
            phases.push(
                p.phase,
                format!("[{}] {}", if p.ok { "PASS" } else { "FAIL" }, p.detail),
            );
        }
        let metrics = telemetry::Section::new("metrics")
            .entry("frames", self.metrics.frames)
            .entry("l2_total_ticks", self.metrics.l2_total_ticks)
            .entry("l2_ticks_per_frame", self.metrics.l2_ticks_per_frame)
            .entry("l3_total_ticks", self.metrics.l3_total_ticks)
            .entry("l3_ticks_per_frame", self.metrics.l3_ticks_per_frame)
            .entry("l3_bus_utilization", self.metrics.l3_bus_utilization)
            .entry("fpga_reconfigurations", self.metrics.fpga_reconfigurations)
            .entry("fpga_download_words", self.metrics.fpga_download_words);
        let recognition = telemetry::Section::new("recognition")
            .entry("recognized", format!("{:?}", self.recognized))
            .entry("all_ok", self.all_ok());
        let mut report = telemetry::Report::new("Symbad full-flow report")
            .section(phases)
            .section(metrics)
            .section(recognition);
        // Only supervised runs carry the degradation section — legacy
        // reports (and their goldens) stay byte-identical.
        if let Some(d) = &self.degradation {
            let mut degradation = telemetry::Section::new("degradation")
                .entry("obligations", d.total as u64)
                .entry("proved", d.proved as u64)
                .entry("refuted", d.refuted as u64)
                .entry("unknown", d.unknown as u64)
                .entry("panicked", d.panicked as u64)
                .entry("retries", d.retries as u64)
                .entry("conclusive", self.conclusive());
            for o in &d.degraded {
                degradation.push(
                    &o.name,
                    format!(
                        "[{}{}] {}",
                        o.status.as_str().to_uppercase(),
                        if o.retried { ", retried" } else { "" },
                        o.detail
                    ),
                );
            }
            report = report.section(degradation);
        }
        report
    }

    /// Renders as aligned human-readable text.
    pub fn to_text(&self) -> String {
        self.to_report().to_text()
    }

    /// Renders as deterministic pretty-printed JSON.
    pub fn to_json(&self) -> String {
        self.to_report().to_json()
    }
}

/// Runs the complete four-level flow on a workload.
///
/// ```
/// let workload = symbad_core::Workload::small();
/// let report = symbad_core::flow::run_full_flow(&workload).expect("flow runs");
/// // Every phase of Figure 1 passes and the probes are recognized.
/// assert!(report.all_ok());
/// assert_eq!(report.recognized, vec![0, 1]);
/// ```
///
/// # Errors
///
/// Propagates kernel errors from the simulations.
pub fn run_full_flow(workload: &Workload) -> Result<FlowReport, SimError> {
    run_full_flow_instrumented(workload, &telemetry::noop())
}

/// [`run_full_flow`] with the verification obligations dispatched across
/// worker threads when `mode` is parallel. The simulations of levels 1–3
/// stay sequential (they are single trajectories); the LPV dimensioning,
/// the level-4 miters/model checking/PCC, and the SAT portfolio fan out.
/// The report — verdicts, counterexamples, coverage, and JSON rendering —
/// is bit-identical to the sequential run for any worker count.
///
/// # Errors
///
/// Propagates kernel errors from the simulations.
pub fn run_full_flow_mode(
    workload: &Workload,
    mode: exec::ExecMode,
) -> Result<FlowReport, SimError> {
    run_full_flow_instrumented_mode(workload, &telemetry::noop(), mode)
}

/// [`run_full_flow`] with telemetry: every level runs with the given
/// instrument (bus spans, FPGA activity, engine counters accumulate into
/// one collector), and the flow itself adds a `flow` track whose time axis
/// is the *phase index* — one span per Figure-1 phase plus a
/// `flow.phase_ok` gauge. Simulation levels each restart their own
/// sim-time axis at 0; the phase index keeps the flow's ordering explicit.
///
/// # Errors
///
/// Propagates kernel errors from the simulations.
pub fn run_full_flow_instrumented(
    workload: &Workload,
    instrument: &telemetry::SharedInstrument,
) -> Result<FlowReport, SimError> {
    run_full_flow_instrumented_mode(workload, instrument, exec::ExecMode::Sequential)
}

/// [`run_full_flow_instrumented`] with an explicit [`exec::ExecMode`] —
/// see [`run_full_flow_mode`] for what parallelizes. On the sequential
/// path the telemetry stream is byte-identical to
/// [`run_full_flow_instrumented`]; on parallel paths the per-obligation
/// collectors are merged back in obligation order (the SAT portfolio
/// contestants stay uninstrumented because their winner is
/// wall-clock-dependent).
///
/// # Errors
///
/// Propagates kernel errors from the simulations.
pub fn run_full_flow_instrumented_mode(
    workload: &Workload,
    instrument: &telemetry::SharedInstrument,
    mode: exec::ExecMode,
) -> Result<FlowReport, SimError> {
    run_full_flow_cached(workload, instrument, mode, cache::noop())
}

/// [`run_full_flow_instrumented_mode`] backed by the obligation cache:
/// every SAT/BDD verification obligation of the flow — the level-4 kernel
/// miters, wrapper model checking, and PCC kill checks — consults `cache`
/// before running an engine and stores its verdict after. On a warm cache
/// the verification phases replay from stored verdicts, and the
/// [`FlowReport`] (phases, metrics, recognition, JSON rendering) is
/// bit-identical to the cold run — cached payloads are the engines' own
/// encoded verdicts, decoded exactly.
///
/// The cache is in-memory; persist it across processes with
/// [`cache::ObligationCache::save`] / [`cache::ObligationCache::load_or_empty`]
/// (see `examples/full_flow.rs`, which keeps it under
/// `target/symbad-cache/`).
///
/// ```
/// use symbad_core::flow::run_full_flow_cached;
///
/// let workload = symbad_core::Workload::small();
/// let obligations = cache::ObligationCache::new();
/// let cold = run_full_flow_cached(
///     &workload, &telemetry::noop(), exec::ExecMode::Sequential, &obligations,
/// ).expect("cold flow runs");
/// let warm = run_full_flow_cached(
///     &workload, &telemetry::noop(), exec::ExecMode::Sequential, &obligations,
/// ).expect("warm flow runs");
/// // The warm run replays every obligation from the cache…
/// let stats = obligations.stats();
/// assert!(stats.hits > 0);
/// // …and the report is bit-identical to the cold one.
/// assert_eq!(warm.to_json(), cold.to_json());
/// ```
///
/// # Errors
///
/// Propagates kernel errors from the simulations.
pub fn run_full_flow_cached(
    workload: &Workload,
    instrument: &telemetry::SharedInstrument,
    mode: exec::ExecMode,
    cache: &cache::ObligationCache,
) -> Result<FlowReport, SimError> {
    run_full_flow_cached_impl(workload, instrument, mode, cache, None)
}

/// [`run_full_flow_cached`] with a flight recorder: every phase
/// transition lands on the journal's deterministic lane as a `phase`
/// event, and the level-3 reconfiguration summary as an `fpga_reconfig`
/// event. The journal never perturbs the flow — the [`FlowReport`]
/// (including its JSON rendering) is byte-identical to
/// [`run_full_flow_cached`], and the deterministic lane is bit-identical
/// across worker counts.
///
/// # Errors
///
/// Propagates kernel errors from the simulations.
pub fn run_full_flow_cached_journaled(
    workload: &Workload,
    instrument: &telemetry::SharedInstrument,
    mode: exec::ExecMode,
    cache: &cache::ObligationCache,
    journal: &telemetry::Journal,
) -> Result<FlowReport, SimError> {
    run_full_flow_cached_impl(workload, instrument, mode, cache, Some(journal))
}

fn run_full_flow_cached_impl(
    workload: &Workload,
    instrument: &telemetry::SharedInstrument,
    mode: exec::ExecMode,
    cache: &cache::ObligationCache,
    journal: Option<&telemetry::Journal>,
) -> Result<FlowReport, SimError> {
    let mut phases: Vec<PhaseSummary> = Vec::new();
    let note_phase = |phases: &mut Vec<PhaseSummary>, summary: PhaseSummary| {
        let idx = phases.len() as u64;
        instrument.span("flow", summary.phase, idx, idx + 1);
        instrument.gauge_set("flow.phase_ok", idx, i64::from(summary.ok));
        if let Some(j) = journal {
            j.emit(telemetry::EventKind::Phase {
                index: idx,
                name: summary.phase.to_owned(),
                ok: summary.ok,
            });
        }
        phases.push(summary);
    };

    // ── Level 1: functional model vs reference ────────────────────────
    let l1 = level1::run_instrumented(workload, instrument)?;
    note_phase(
        &mut phases,
        PhaseSummary {
            phase: "level 1: functional model",
            ok: l1.matches_reference && l1.outcome.is_quiescent(),
            detail: format!(
                "trace vs C reference: {}; clean completion: {}",
                l1.matches_reference,
                l1.outcome.is_quiescent()
            ),
        },
    );

    // ── Level 1 verification: LPV deadlock freeness ────────────────────
    let net = cascade::fig2_petri_net(1);
    let liveness = lp::check_liveness(&net);
    note_phase(
        &mut phases,
        PhaseSummary {
            phase: "level 1: LPV deadlock freeness",
            ok: liveness.is_live(),
            detail: match &liveness {
                LivenessVerdict::Live { min_cycle_tokens } => {
                    format!("live; min cycle tokens {min_cycle_tokens}")
                }
                other => format!("{other:?}"),
            },
        },
    );

    // ── Level 2: architecture mapping ──────────────────────────────────
    let arch = ArchConfig::default();
    let l2 = level2::run_instrumented(workload, instrument)?;
    let l2_matches_l1 = l1.trace.matches_untimed(&l2.trace).is_ok();
    note_phase(
        &mut phases,
        PhaseSummary {
            phase: "level 2: timed TL mapping",
            ok: l2.matches_reference && l2_matches_l1,
            detail: format!(
                "{:.0} ticks/frame; bus {:.1}%; trace ≡ level 1: {l2_matches_l1}",
                l2.ticks_per_frame,
                l2.bus.utilization * 100.0
            ),
        },
    );

    // ── Level 2 verification: deadline LP ──────────────────────────────
    let bounds =
        level2::dimension_channels_mode(workload, &crate::Partition::paper_level2(), &arch, mode);
    note_phase(
        &mut phases,
        PhaseSummary {
            phase: "level 2: LPV FIFO dimensioning",
            ok: bounds.iter().all(|(_, b)| b.capacity >= 1),
            detail: bounds
                .iter()
                .map(|(n, b)| format!("{n}: {} tokens", b.capacity))
                .collect::<Vec<_>>()
                .join(", "),
        },
    );

    // ── Level 3: reconfigurable platform ───────────────────────────────
    let l3 = level3::run_instrumented(workload, instrument)?;
    let l3_matches_l2 = l2.trace.matches_untimed(&l3.trace).is_ok();
    let fpga = l3.fpga.clone().expect("level 3 has an FPGA");
    note_phase(
        &mut phases,
        PhaseSummary {
            phase: "level 3: reconfigurable platform",
            ok: l3.matches_reference && l3_matches_l2,
            detail: format!(
            "{:.0} ticks/frame; {} reconfigs, {} bitstream words; trace ≡ level 2: {l3_matches_l2}",
            l3.ticks_per_frame, fpga.reconfigurations, fpga.download_words
        ),
        },
    );
    if let Some(j) = journal {
        j.emit(telemetry::EventKind::FpgaReconfig {
            reconfigurations: fpga.reconfigurations,
            download_words: fpga.download_words,
        });
    }

    // ── Level 3 verification: SymbC ────────────────────────────────────
    let (sw, map) = cascade::instrumented_sw(true);
    let symbc_verdict = symbc::check(&sw, &map);
    note_phase(
        &mut phases,
        PhaseSummary {
            phase: "level 3: SymbC consistency",
            ok: symbc_verdict.is_consistent(),
            detail: format!("{symbc_verdict:?}"),
        },
    );

    // ── Level 4: RTL + formal ──────────────────────────────────────────
    let l4 = level4::run_cached(mode, instrument, cache);
    let kernels_ok = l4.kernels.iter().all(|(_, _, eq)| *eq);
    let props_ok = l4.properties.iter().all(|(_, _, p)| *p);
    note_phase(
        &mut phases,
        PhaseSummary {
            phase: "level 4: RTL, model checking, PCC",
            ok: kernels_ok && props_ok && l4.pcc_extended.pct() > l4.pcc_initial.pct(),
            detail: format!(
                "kernels equivalent: {kernels_ok}; {} properties proven; PCC {:.0}% → {:.0}%",
                l4.properties.len(),
                l4.pcc_initial.pct(),
                l4.pcc_extended.pct()
            ),
        },
    );

    let metrics = FlowMetrics {
        frames: workload.probes.len() as u64,
        l2_total_ticks: l2.total_ticks,
        l2_ticks_per_frame: l2.ticks_per_frame,
        l3_total_ticks: l3.total_ticks,
        l3_ticks_per_frame: l3.ticks_per_frame,
        l3_bus_utilization: l3.bus.utilization,
        fpga_reconfigurations: fpga.reconfigurations,
        fpga_download_words: fpga.download_words,
    };
    Ok(FlowReport {
        phases,
        recognized: l1.recognized,
        metrics,
        degradation: None,
    })
}

/// [`run_full_flow_cached`] under a [`SupervisionPolicy`]: the
/// verification obligations of the flow — LPV liveness, LPV FIFO
/// dimensioning, SymbC, and every level-4 obligation — run panic-isolated
/// and effort-budgeted, and the report carries the
/// [`DegradationSummary`] taxonomy in `degradation` (rendered as a
/// `degradation` section by [`FlowReport::to_report`]).
///
/// The levels 1–3 *simulations* are not supervised: they are the flow's
/// subject, propagate their own typed [`SimError`]s, and a corrupted
/// simulation invalidates everything downstream anyway.
///
/// Degradation is graceful and deterministic: a panicked obligation is
/// retried once (when the policy says so) and then recorded as
/// `Panicked` with its exact panic message; a budget-exhausted
/// model-checking obligation is cross-checked by deterministic
/// simulation and recorded as `Refuted` (witness found) or `Unknown`;
/// phases over degraded obligations report `ok: false` with the
/// degradation spelled out in their detail line. The partial report is
/// bit-identical across worker counts.
///
/// # Errors
///
/// Propagates kernel errors from the simulations (supervision does not
/// mask them).
pub fn run_full_flow_supervised(
    workload: &Workload,
    instrument: &telemetry::SharedInstrument,
    mode: exec::ExecMode,
    cache: &cache::ObligationCache,
    policy: &SupervisionPolicy,
) -> Result<FlowReport, SimError> {
    run_full_flow_supervised_impl(
        workload,
        instrument,
        mode,
        cache,
        policy,
        None,
        &ArchConfig::default(),
        None,
    )
}

/// [`run_full_flow_supervised`] with a flight recorder: phases, the FPGA
/// reconfiguration summary, and the complete lifecycle of every
/// supervised obligation — start, cache probes, per-axis budget spend,
/// panics/retries, provenance-carrying finishes with effort attribution,
/// degradations — stream onto the journal's deterministic lane in
/// obligation order; wall latencies and worker/queue attribution go to
/// its timing lane.
///
/// Instrumentation never perturbs results: the report is bit-identical to
/// [`run_full_flow_supervised`], and the deterministic lane is
/// bit-identical across worker counts (the PR-2 invariant extended to the
/// journal).
///
/// # Errors
///
/// Propagates kernel errors from the simulations.
pub fn run_full_flow_supervised_journaled(
    workload: &Workload,
    instrument: &telemetry::SharedInstrument,
    mode: exec::ExecMode,
    cache: &cache::ObligationCache,
    policy: &SupervisionPolicy,
    journal: &telemetry::Journal,
) -> Result<FlowReport, SimError> {
    run_full_flow_supervised_impl(
        workload,
        instrument,
        mode,
        cache,
        policy,
        Some(journal),
        &ArchConfig::default(),
        None,
    )
}

/// Runs the complete supervised flow a [`JobSpec`] describes: the spec's
/// design becomes the workload, its platform variant drives the level-3
/// architecture and the level-2 FIFO dimensioning, its fault campaign
/// (if any) is injected into the level-3 simulation under the default
/// [`RecoveryPolicy`], and its supervision policy budgets the
/// verification obligations. With `JobSpec::default()` this is exactly
/// [`run_full_flow_supervised`] on [`Workload::small`] — same phases,
/// same verdicts, bit-identical JSON (pinned by
/// `tests/service_equivalence.rs`).
///
/// This is the batch service's per-job entry point, but it is an
/// ordinary library call: no queue, no tenancy, usable directly.
///
/// # Errors
///
/// Propagates kernel errors from the simulations.
pub fn run_full_flow_job(
    spec: &JobSpec,
    instrument: &telemetry::SharedInstrument,
    mode: exec::ExecMode,
    cache: &cache::ObligationCache,
) -> Result<FlowReport, SimError> {
    run_full_flow_supervised_impl(
        &spec.design.workload(),
        instrument,
        mode,
        cache,
        &spec.policy,
        None,
        &spec.platform.arch(),
        spec.faults.map(|f| f.plan()),
    )
}

/// [`run_full_flow_job`] with a flight recorder — the journal contract of
/// [`run_full_flow_supervised_journaled`], driven by a [`JobSpec`].
///
/// # Errors
///
/// Propagates kernel errors from the simulations.
pub fn run_full_flow_job_journaled(
    spec: &JobSpec,
    instrument: &telemetry::SharedInstrument,
    mode: exec::ExecMode,
    cache: &cache::ObligationCache,
    journal: &telemetry::Journal,
) -> Result<FlowReport, SimError> {
    run_full_flow_supervised_impl(
        &spec.design.workload(),
        instrument,
        mode,
        cache,
        &spec.policy,
        Some(journal),
        &spec.platform.arch(),
        spec.faults.map(|f| f.plan()),
    )
}

#[allow(clippy::too_many_arguments)] // private plumbing behind 4 focused entry points
fn run_full_flow_supervised_impl(
    workload: &Workload,
    instrument: &telemetry::SharedInstrument,
    mode: exec::ExecMode,
    cache: &cache::ObligationCache,
    policy: &SupervisionPolicy,
    journal: Option<&telemetry::Journal>,
    arch: &ArchConfig,
    faults: Option<FaultPlan>,
) -> Result<FlowReport, SimError> {
    use ObligationStatus::{Panicked, Proved, Refuted};

    let retry = policy.retry_panicked;
    let enabled = instrument.enabled();
    let mut phases: Vec<PhaseSummary> = Vec::new();
    let mut outcomes: Vec<ObligationOutcome> = Vec::new();
    let note_phase = |phases: &mut Vec<PhaseSummary>, summary: PhaseSummary| {
        let idx = phases.len() as u64;
        instrument.span("flow", summary.phase, idx, idx + 1);
        instrument.gauge_set("flow.phase_ok", idx, i64::from(summary.ok));
        if let Some(j) = journal {
            j.emit(telemetry::EventKind::Phase {
                index: idx,
                name: summary.phase.to_owned(),
                ok: summary.ok,
            });
        }
        phases.push(summary);
    };
    // The flow-level obligations run sequentially on this thread, so
    // recording straight into the shared instrument keeps the stream
    // deterministic.
    let note_panics = |caught: u64| {
        if enabled && caught > 0 {
            instrument.counter_add("exec.panics_caught", caught);
        }
    };
    // The three flow-level obligations (LPV liveness, LPV dimensioning,
    // SymbC) are panic-supervised but not effort-budgeted and carry no
    // private collector, so their journal records attribute zero effort.
    let note_started = |name: &str, engine: &str| {
        if let Some(j) = journal {
            j.emit(telemetry::EventKind::ObligationStarted {
                obligation: name.to_owned(),
                engine: engine.to_owned(),
            });
        }
    };
    let note_obligation = |name: &str,
                           engine: &str,
                           sup_panic: Option<&str>,
                           sup_retried: bool,
                           sup_wall_us: u64,
                           status: ObligationStatus,
                           detail: &str| {
        if let Some(j) = journal {
            supervise::journal_obligation(
                j,
                name,
                engine,
                sup_panic,
                sup_retried,
                sup_wall_us,
                &telemetry::EffortSpent::default(),
                None,
                status,
                detail,
            );
        }
    };

    // ── Level 1: functional model vs reference ────────────────────────
    let l1 = level1::run_instrumented(workload, instrument)?;
    note_phase(
        &mut phases,
        PhaseSummary {
            phase: "level 1: functional model",
            ok: l1.matches_reference && l1.outcome.is_quiescent(),
            detail: format!(
                "trace vs C reference: {}; clean completion: {}",
                l1.matches_reference,
                l1.outcome.is_quiescent()
            ),
        },
    );

    // ── Level 1 verification: LPV deadlock freeness (supervised) ──────
    note_started("lpv:liveness", "lpv");
    let sup = supervise::run_supervised_job(retry, || {
        let net = cascade::fig2_petri_net(1);
        lp::check_liveness(&net)
    });
    note_panics(sup.panics_caught());
    let (ok, detail, status, odetail) = match &sup.value {
        Some(liveness) => {
            let detail = match liveness {
                LivenessVerdict::Live { min_cycle_tokens } => {
                    format!("live; min cycle tokens {min_cycle_tokens}")
                }
                other => format!("{other:?}"),
            };
            let ok = liveness.is_live();
            let status = if ok { Proved } else { Refuted };
            (ok, detail.clone(), status, detail)
        }
        None => {
            let msg = sup.panic.as_deref().unwrap_or("?");
            let detail = format!("panicked: {msg}");
            (false, detail.clone(), Panicked, detail)
        }
    };
    note_obligation(
        "lpv:liveness",
        "lpv",
        sup.panic.as_deref(),
        sup.retried,
        sup.wall_us,
        status,
        &odetail,
    );
    note_phase(
        &mut phases,
        PhaseSummary {
            phase: "level 1: LPV deadlock freeness",
            ok,
            detail,
        },
    );
    outcomes.push(ObligationOutcome {
        name: "lpv:liveness".to_owned(),
        status,
        detail: odetail,
        retried: sup.retried,
    });

    // ── Level 2: architecture mapping ──────────────────────────────────
    let l2 = level2::run_instrumented(workload, instrument)?;
    let l2_matches_l1 = l1.trace.matches_untimed(&l2.trace).is_ok();
    note_phase(
        &mut phases,
        PhaseSummary {
            phase: "level 2: timed TL mapping",
            ok: l2.matches_reference && l2_matches_l1,
            detail: format!(
                "{:.0} ticks/frame; bus {:.1}%; trace ≡ level 1: {l2_matches_l1}",
                l2.ticks_per_frame,
                l2.bus.utilization * 100.0
            ),
        },
    );

    // ── Level 2 verification: deadline LP (supervised) ─────────────────
    note_started("lpv:dimensioning", "lpv");
    let sup = supervise::run_supervised_job(retry, || {
        level2::dimension_channels_mode(workload, &crate::Partition::paper_level2(), arch, mode)
    });
    note_panics(sup.panics_caught());
    let (ok, detail, status, odetail) = match &sup.value {
        Some(bounds) => {
            let ok = bounds.iter().all(|(_, b)| b.capacity >= 1);
            let detail = bounds
                .iter()
                .map(|(n, b)| format!("{n}: {} tokens", b.capacity))
                .collect::<Vec<_>>()
                .join(", ");
            let status = if ok { Proved } else { Refuted };
            (ok, detail.clone(), status, detail)
        }
        None => {
            let msg = sup.panic.as_deref().unwrap_or("?");
            let detail = format!("panicked: {msg}");
            (false, detail.clone(), Panicked, detail)
        }
    };
    note_obligation(
        "lpv:dimensioning",
        "lpv",
        sup.panic.as_deref(),
        sup.retried,
        sup.wall_us,
        status,
        &odetail,
    );
    note_phase(
        &mut phases,
        PhaseSummary {
            phase: "level 2: LPV FIFO dimensioning",
            ok,
            detail,
        },
    );
    outcomes.push(ObligationOutcome {
        name: "lpv:dimensioning".to_owned(),
        status,
        detail: odetail,
        retried: sup.retried,
    });

    // ── Level 3: reconfigurable platform ───────────────────────────────
    // Unlike the unsupervised flow this honors the caller's platform
    // variant and fault campaign. The job surface only exposes fault
    // kinds the default recovery policy always absorbs (retry or
    // degrade-to-software), so a platform error here is a contract
    // violation, not a reachable outcome.
    let l3 = timed::run_faulted_instrumented(
        workload,
        &crate::Partition::paper_level3(),
        arch,
        MatcherKind::Fpga {
            strategy: ReconfigStrategy::Hoisted,
            rtl_cosim: false,
        },
        faults,
        RecoveryPolicy::default(),
        instrument,
    )
    .map_err(|e| match e {
        RunError::Sim(e) => e,
        RunError::Platform(f) => unreachable!("default recovery absorbs platform faults: {f}"),
    })?;
    let l3_matches_l2 = l2.trace.matches_untimed(&l3.trace).is_ok();
    let fpga = l3.fpga.clone().expect("level 3 has an FPGA");
    note_phase(
        &mut phases,
        PhaseSummary {
            phase: "level 3: reconfigurable platform",
            ok: l3.matches_reference && l3_matches_l2,
            detail: format!(
            "{:.0} ticks/frame; {} reconfigs, {} bitstream words; trace ≡ level 2: {l3_matches_l2}",
            l3.ticks_per_frame, fpga.reconfigurations, fpga.download_words
        ),
        },
    );
    if let Some(j) = journal {
        j.emit(telemetry::EventKind::FpgaReconfig {
            reconfigurations: fpga.reconfigurations,
            download_words: fpga.download_words,
        });
    }

    // ── Level 3 verification: SymbC (supervised) ───────────────────────
    note_started("symbc:consistency", "symbc");
    let sup = supervise::run_supervised_job(retry, || {
        let (sw, map) = cascade::instrumented_sw(true);
        symbc::check(&sw, &map)
    });
    note_panics(sup.panics_caught());
    let (ok, detail, status, odetail) = match &sup.value {
        Some(verdict) => {
            let ok = verdict.is_consistent();
            let detail = format!("{verdict:?}");
            let status = if ok { Proved } else { Refuted };
            (ok, detail.clone(), status, detail)
        }
        None => {
            let msg = sup.panic.as_deref().unwrap_or("?");
            let detail = format!("panicked: {msg}");
            (false, detail.clone(), Panicked, detail)
        }
    };
    note_obligation(
        "symbc:consistency",
        "symbc",
        sup.panic.as_deref(),
        sup.retried,
        sup.wall_us,
        status,
        &odetail,
    );
    note_phase(
        &mut phases,
        PhaseSummary {
            phase: "level 3: SymbC consistency",
            ok,
            detail,
        },
    );
    outcomes.push(ObligationOutcome {
        name: "symbc:consistency".to_owned(),
        status,
        detail: odetail,
        retried: sup.retried,
    });

    // ── Level 4: RTL + formal, fully supervised ────────────────────────
    let (l4, l4_outcomes) =
        level4::run_supervised_journaled(mode, instrument, cache, policy, journal);
    outcomes.extend(l4_outcomes);
    let kernels_ok = l4.kernels.iter().all(|(_, _, eq)| *eq);
    let props_ok = l4.properties.iter().all(|(_, _, p)| *p);
    note_phase(
        &mut phases,
        PhaseSummary {
            phase: "level 4: RTL, model checking, PCC",
            ok: kernels_ok && props_ok && l4.pcc_extended.pct() > l4.pcc_initial.pct(),
            detail: format!(
                "kernels equivalent: {kernels_ok}; {} properties proven; PCC {:.0}% → {:.0}%",
                l4.properties.len(),
                l4.pcc_initial.pct(),
                l4.pcc_extended.pct()
            ),
        },
    );

    let degradation = DegradationSummary::from_outcomes(&outcomes);
    if enabled {
        if !degradation.degraded.is_empty() {
            instrument.counter_add(
                "flow.degraded_obligations",
                degradation.degraded.len() as u64,
            );
        }
        if degradation.retries > 0 {
            instrument.counter_add("flow.retries", degradation.retries as u64);
        }
    }

    let metrics = FlowMetrics {
        frames: workload.probes.len() as u64,
        l2_total_ticks: l2.total_ticks,
        l2_ticks_per_frame: l2.ticks_per_frame,
        l3_total_ticks: l3.total_ticks,
        l3_ticks_per_frame: l3.ticks_per_frame,
        l3_bus_utilization: l3.bus.utilization,
        fpga_reconfigurations: fpga.reconfigurations,
        fpga_download_words: fpga.download_words,
    };
    Ok(FlowReport {
        phases,
        recognized: l1.recognized,
        metrics,
        degradation: Some(degradation),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_flow_passes_on_small_workload() {
        let w = Workload::small();
        let collector = telemetry::Collector::shared();
        let instr: telemetry::SharedInstrument = collector.clone();
        let report = run_full_flow_instrumented(&w, &instr).expect("flow runs");
        assert_eq!(report.phases.len(), 7);
        for p in &report.phases {
            assert!(p.ok, "{} failed: {}", p.phase, p.detail);
        }
        assert!(report.all_ok());
        assert_eq!(report.recognized.len(), w.probes.len());

        // Metrics mirror the phase evidence.
        assert!(report.metrics.l3_total_ticks > report.metrics.l2_total_ticks);
        assert!(report.metrics.fpga_reconfigurations > 0);
        assert_eq!(report.metrics.frames, w.probes.len() as u64);

        // The flow track carries one span per phase, in order.
        let flow_spans: Vec<_> = collector
            .spans()
            .into_iter()
            .filter(|s| s.track == "flow")
            .collect();
        assert_eq!(flow_spans.len(), 7);
        for (i, s) in flow_spans.iter().enumerate() {
            assert_eq!((s.start, s.end), (i as u64, i as u64 + 1));
            assert_eq!(s.name, report.phases[i].phase);
        }
        // Substrate and engine signals from every level accumulated.
        assert!(collector.counter("bus.transactions") > 0);
        assert!(collector.counter("fpga.reconfigurations") > 0);
        assert!(collector.counter("sat.solve_calls") > 0);
        assert!(collector.counter("sim.polls") > 0);

        // Both renderings carry the phase verdicts.
        let text = report.to_text();
        assert!(text.contains("level 3: reconfigurable platform"));
        assert!(text.contains("[PASS]"));
        let json = report.to_json();
        assert!(json.contains("\"fpga_reconfigurations\""));
    }
}
