//! Level 4: RTL generation and formal verification.
//!
//! "At level 4, the RTL code is produced … Model checking and SAT solving
//! are used at this level" (§3.4). This module:
//!
//! 1. behaviourally synthesizes the FPGA kernels (DISTANCE step, unrolled
//!    ROOT) from their `behav` sources to combinational RTL,
//! 2. proves RTL/behavioural equivalence by SAT miter (the synthesis
//!    correctness check),
//! 3. generates the bus-interface wrapper FSM ("the construction of
//!    dedicated wrappers … was manually performed for each HW module" —
//!    here it is automated, as the paper anticipates),
//! 4. model-checks the interface properties (BMC + exact BDD reachability),
//! 5. runs PCC to measure property-set completeness, demonstrating the
//!    paper's refinement loop: the initial property set leaves faults
//!    uncovered; the extended set closes the gap.

use crate::supervise::{self, ObligationOutcome, ObligationStatus, SupervisionPolicy};
use behav::unroll::unroll;
use behav::Function;
use hdl::fsm::bus_wrapper_fsm;
use hdl::lower::{lower, BitCtx, CnfBackend};
use hdl::synth::synthesize;
use hdl::Rtl;
use mc::prop::{BoolExpr, Property};
use mc::{bmc, reach, Verdict};
use media::kernels::{distance_step_function, root_function, ROOT_ITERATIONS};
use pcc::{check_coverage_cached, PccConfig, PccReport};

/// Outcome of the level-4 phase.
#[derive(Debug, Clone)]
pub struct Level4Report {
    /// Synthesized kernels: `(name, nodes, proven equivalent)`.
    pub kernels: Vec<(String, usize, bool)>,
    /// Wrapper property verdicts: `(property name, engine, proven)`.
    pub properties: Vec<(String, &'static str, bool)>,
    /// PCC coverage of the *initial* property set.
    pub pcc_initial: PccReport,
    /// PCC coverage after extending the property set.
    pub pcc_extended: PccReport,
}

/// Proves RTL ≡ behavioural source with a SAT miter over all inputs.
///
/// Returns `true` when no distinguishing input exists.
pub fn prove_equivalence(func: &Function, rtl: &Rtl) -> bool {
    prove_equivalence_instrumented(func, rtl, &telemetry::noop())
}

/// [`prove_equivalence`] with telemetry: the miter's SAT solver reports
/// its decision/conflict/propagation counters through `instrument`.
pub fn prove_equivalence_instrumented(
    func: &Function,
    rtl: &Rtl,
    instrument: &telemetry::SharedInstrument,
) -> bool {
    prove_equivalence_cached(func, rtl, instrument, cache::noop())
}

/// [`prove_equivalence_instrumented`] backed by the obligation cache
/// (engine tag `"level4.miter"`): the fingerprint covers the full miter
/// CNF, the shared input literal layout, and the "any output bit differs"
/// root, so a hit returns the stored equivalence verdict without solving.
/// The same fingerprint recipe is used by
/// [`prove_equivalence_portfolio_cached`], so portfolio winners populate
/// entries this path can replay (and vice versa).
pub fn prove_equivalence_cached(
    func: &Function,
    rtl: &Rtl,
    instrument: &telemetry::SharedInstrument,
    cache: &cache::ObligationCache,
) -> bool {
    let mut ctx = CnfBackend::new();
    if instrument.enabled() {
        ctx.builder_mut().set_instrument(instrument.clone());
    }
    let (input_bits, any) = build_miter(func, rtl, &mut ctx);
    let fp = if cache.is_enabled() {
        let fp = miter_fingerprint(&mut ctx, &input_bits, any);
        if let Some(payload) = cache.lookup_tagged("level4.miter", fp) {
            if let Some(equivalent) = cache::decode_bool(&payload) {
                instrument.counter_add("cache.hits", 1);
                return equivalent;
            }
        }
        instrument.counter_add("cache.misses", 1);
        Some(fp)
    } else {
        None
    };
    let builder = ctx.builder_mut();
    builder.assert_lit(any);
    // Lemma-pool warm start: seed clauses learnt by an earlier solve of a
    // fingerprint-identical miter (same canonical CNF, same asserted
    // root), then collect this solve's own short learnts back into the
    // pool. Seeds are entailed by the exporter's CNF — byte-identical to
    // ours — so they can shrink the search, never flip the verdict.
    if let Some(fp) = fp {
        seed_from_pool(builder.solver_mut(), cache.lemmas(), fp, instrument);
        builder.solver_mut().set_share(sat::SolverShare::collector(
            sat::ShareFilter::default(),
            cache::pool::MAX_CLAUSES_PER_ENTRY,
        ));
    }
    let equivalent = builder.solve().is_unsat();
    if let Some(fp) = fp {
        if let Some(share) = builder.solver_mut().take_share() {
            cache.lemmas().insert(fp, &share.into_pool_exports());
        }
        cache.insert_tagged("level4.miter", fp, cache::encode_bool(equivalent));
    }
    equivalent
}

/// Imports the lemma-pool entry for `fp` (if any) into `solver` at
/// decision level 0, reporting pool telemetry. Returns early on a
/// conflicting import — the solver is then already UNSAT and the caller's
/// solve call reports it.
fn seed_from_pool(
    solver: &mut sat::Solver,
    pool: &cache::LemmaPool,
    fp: cache::Fingerprint,
    instrument: &telemetry::SharedInstrument,
) {
    let seeds = pool.lookup(fp);
    if seeds.is_empty() {
        return;
    }
    instrument.counter_add("sat.pool_hits", 1);
    let (mut imported, mut rejected) = (0u64, 0u64);
    for clause in &seeds {
        match solver.import_clause(clause) {
            sat::ImportResult::Added => imported += 1,
            sat::ImportResult::Redundant => rejected += 1,
            // The seeds alone are UNSAT under the level-0 trail; further
            // imports cannot change that verdict.
            sat::ImportResult::Conflict => break,
        }
    }
    instrument.counter_add("sat.pool_imports", imported);
    instrument.counter_add("sat.pool_rejects", rejected);
}

/// [`prove_equivalence`] with the miter solved by a SAT portfolio: the
/// CNF is built once (deterministically), exported, and raced across
/// divergent solver configurations. The UNSAT/SAT verdict is objective,
/// so the result is bit-identical to the single-solver path; the
/// portfolio contestants are uninstrumented (the winner is
/// wall-clock-dependent, so their counters are diagnostic-only and are
/// not merged).
pub fn prove_equivalence_portfolio(func: &Function, rtl: &Rtl, mode: exec::ExecMode) -> bool {
    prove_equivalence_portfolio_cached(func, rtl, mode, cache::noop())
}

/// [`prove_equivalence_portfolio`] backed by the obligation cache. Shares
/// its fingerprint recipe with [`prove_equivalence_cached`] — the two
/// entry points fill and drain the same cache entries, so a sequential
/// warm run replays a verdict a portfolio race decided (the verdict is
/// objective, so the replay is exact).
pub fn prove_equivalence_portfolio_cached(
    func: &Function,
    rtl: &Rtl,
    mode: exec::ExecMode,
    cache: &cache::ObligationCache,
) -> bool {
    let mut ctx = CnfBackend::new();
    let (input_bits, any) = build_miter(func, rtl, &mut ctx);
    let fp = if cache.is_enabled() {
        let fp = miter_fingerprint(&mut ctx, &input_bits, any);
        if let Some(payload) = cache.lookup_tagged("level4.miter", fp) {
            if let Some(equivalent) = cache::decode_bool(&payload) {
                return equivalent;
            }
        }
        Some(fp)
    } else {
        None
    };
    ctx.builder_mut().assert_lit(any);
    let cnf = ctx.builder_mut().solver().export_cnf();
    let equivalent = match fp {
        // Cached path: cooperative portfolio — contestants exchange
        // learnt clauses in flight and are seeded from (then feed) the
        // cross-obligation lemma pool. The verdict is objective, so
        // sharing changes effort only; the uncached path below keeps the
        // plain racing portfolio byte-identical to the pre-pool code.
        Some(fp) => {
            let pool = cache.lemmas();
            let seeds = pool.lookup(fp);
            let coop =
                sat::solve_portfolio_cooperative(&cnf, mode, &sat::ShareConfig::default(), &seeds);
            pool.insert(fp, &coop.pool_exports);
            let equivalent = coop.outcome.result.is_unsat();
            cache.insert_tagged("level4.miter", fp, cache::encode_bool(equivalent));
            equivalent
        }
        None => sat::solve_portfolio(&cnf, mode).result.is_unsat(),
    };
    equivalent
}

/// Content-addresses a built (un-asserted) miter: input literal layout,
/// difference root, canonicalised clauses.
fn miter_fingerprint(
    ctx: &mut CnfBackend,
    input_bits: &[Vec<sat::Lit>],
    root: sat::Lit,
) -> cache::Fingerprint {
    let flat: Vec<sat::Lit> = input_bits.iter().flatten().copied().collect();
    let cnf = ctx.builder_mut().solver().export_cnf();
    cache::FingerprintBuilder::new("level4.miter")
        .lits(&flat)
        .lits(&[root])
        .cnf(&cnf)
        .finish()
}

/// Builds the RTL-vs-resynthesized-source miter in `ctx`, returning the
/// input literals and the *un-asserted* "any output bit differs" literal
/// (callers assert it after any cache fingerprinting).
fn build_miter(func: &Function, rtl: &Rtl, ctx: &mut CnfBackend) -> (Vec<Vec<sat::Lit>>, sat::Lit) {
    let input_bits: Vec<Vec<sat::Lit>> = rtl
        .inputs()
        .iter()
        .map(|&i| (0..rtl.width(i)).map(|_| ctx.bit_fresh()).collect())
        .collect();
    let lowered = lower(rtl, ctx, &input_bits, &[]);
    let rtl_out = lowered.outputs(rtl)[0].1.clone();

    // Synthesize a second copy from the behavioural source and compare.
    // (The behavioural interpreter cannot be bit-blasted directly; the
    // synthesis path itself is validated against the interpreter by
    // extensive simulation in `hdl::synth` tests, and the miter here
    // guards every later transformation of the netlist.)
    let golden = synthesize(func).expect("kernel is synthesizable");
    let lowered_g = lower(&golden, ctx, &input_bits, &[]);
    let golden_out = lowered_g.outputs(&golden)[0].1.clone();

    let mut diffs = Vec::new();
    for (&a, &b) in rtl_out.iter().zip(&golden_out) {
        diffs.push(ctx.bit_xor(a, b));
    }
    let builder = ctx.builder_mut();
    let any = diffs
        .iter()
        .fold(None::<sat::Lit>, |acc, &d| match acc {
            None => Some(d),
            Some(x) => Some(builder.or_gate(x, d)),
        })
        .expect("at least one output bit");
    (input_bits, any)
}

/// The initial (incomplete) wrapper property set the designer writes first:
/// a range check, the done-flag encoding, and a liveness hope. It proves —
/// and PCC then shows how much behaviour it leaves unconstrained.
pub fn initial_properties() -> Vec<Property> {
    vec![
        Property::invariant("state_in_range", BoolExpr::le("state", 3)),
        Property::invariant(
            "done_iff_done_state",
            BoolExpr::and(
                BoolExpr::implies(BoolExpr::eq("state", 3), BoolExpr::eq("done", 1)),
                BoolExpr::implies(BoolExpr::ne("state", 3), BoolExpr::eq("done", 0)),
            ),
        ),
        Property::response(
            "req_eventually_done",
            BoolExpr::eq("bus_req", 1),
            BoolExpr::eq("done", 1),
            3,
        ),
    ]
}

/// The extended property set after the PCC-driven refinement iteration.
pub fn extended_properties() -> Vec<Property> {
    let mut props = vec![
        Property::invariant("state_in_range", BoolExpr::le("state", 3)),
        // Output encodings pinned per state.
        Property::invariant(
            "req_iff_active",
            BoolExpr::and(
                BoolExpr::implies(
                    BoolExpr::or(BoolExpr::eq("state", 1), BoolExpr::eq("state", 2)),
                    BoolExpr::eq("bus_req", 1),
                ),
                BoolExpr::implies(
                    BoolExpr::or(BoolExpr::eq("state", 0), BoolExpr::eq("state", 3)),
                    BoolExpr::eq("bus_req", 0),
                ),
            ),
        ),
        Property::invariant(
            "done_iff_done_state",
            BoolExpr::and(
                BoolExpr::implies(BoolExpr::eq("state", 3), BoolExpr::eq("done", 1)),
                BoolExpr::implies(BoolExpr::ne("state", 3), BoolExpr::eq("done", 0)),
            ),
        ),
        // Transition structure: REQUEST always advances, DONE always
        // returns to IDLE.
        Property::response(
            "request_advances",
            BoolExpr::eq("state", 1),
            BoolExpr::eq("state", 2),
            1,
        ),
        Property::response(
            "done_returns_to_idle",
            BoolExpr::eq("state", 3),
            BoolExpr::eq("state", 0),
            1,
        ),
    ];
    // Keep the bounded-liveness property from the initial set.
    props.push(Property::response(
        "req_eventually_done",
        BoolExpr::eq("bus_req", 1),
        BoolExpr::eq("done", 1),
        3,
    ));
    props
}

/// Properties provable on the *open* wrapper (free `ack` input): liveness
/// toward DONE depends on the environment providing `ack`, so only the
/// safety subset is checked against the open model.
fn provable_on_open_model(p: &Property) -> bool {
    p.name() != "req_eventually_done"
}

/// Runs the complete level-4 phase.
///
/// ```
/// let report = symbad_core::level4::run();
/// // Both FPGA kernels synthesize to RTL and prove equivalent to their
/// // behavioural source; extending the property set lifts PCC coverage.
/// assert!(report.kernels.iter().all(|&(_, _, equivalent)| equivalent));
/// assert!(report.pcc_extended.covered >= report.pcc_initial.covered);
/// ```
///
/// # Panics
///
/// Panics if a kernel unexpectedly fails to synthesize (a programming
/// error, not an input condition).
pub fn run() -> Level4Report {
    run_instrumented(&telemetry::noop())
}

/// [`run`] with telemetry: the equivalence miters and BMC runs report
/// their SAT statistics, depth progress, and verdict counters through
/// `instrument`.
///
/// # Panics
///
/// Same as [`run`].
pub fn run_instrumented(instrument: &telemetry::SharedInstrument) -> Level4Report {
    run_sequential_cached(instrument, cache::noop())
}

/// The sequential level-4 body, parameterized by the obligation cache
/// ([`cache::noop()`] reproduces [`run_instrumented`] byte for byte).
fn run_sequential_cached(
    instrument: &telemetry::SharedInstrument,
    cache: &cache::ObligationCache,
) -> Level4Report {
    // 1–2: synthesize the kernels and prove equivalence.
    let mut kernels = Vec::new();
    let dist = distance_step_function();
    let dist_rtl = synthesize(&dist).expect("distance step synthesizes");
    kernels.push((
        "distance".to_owned(),
        dist_rtl.num_nodes(),
        prove_equivalence_cached(&dist, &dist_rtl, instrument, cache),
    ));
    let root = root_function();
    let root_unrolled = unroll(&root, ROOT_ITERATIONS);
    let root_rtl = synthesize(&root_unrolled).expect("unrolled root synthesizes");
    kernels.push((
        "root".to_owned(),
        root_rtl.num_nodes(),
        prove_equivalence_cached(&root_unrolled, &root_rtl, instrument, cache),
    ));

    // 3–4: wrapper FSM and its properties.
    let wrapper = bus_wrapper_fsm("bus_wrapper");
    let mut properties = Vec::new();
    for p in extended_properties() {
        if !provable_on_open_model(&p) {
            continue;
        }
        let (engine, proven): (&'static str, bool) = match &p {
            Property::Invariant { .. } => (
                "bdd-reach",
                reach::check_cached(&wrapper, &p, instrument, cache) == Verdict::Proven,
            ),
            Property::Response { .. } => (
                "bmc",
                matches!(
                    bmc::check_cached(&wrapper, &p, 12, instrument, cache),
                    Verdict::NoViolationUpTo(_)
                ),
            ),
        };
        properties.push((p.name().to_owned(), engine, proven));
        instrument.counter_add("level4.properties_checked", 1);
    }

    // 5: PCC before/after the property-set refinement.
    let cfg = PccConfig { bmc_bound: 10 };
    let initial: Vec<Property> = initial_properties()
        .into_iter()
        .filter(provable_on_open_model_ref)
        .collect();
    let extended: Vec<Property> = extended_properties()
        .into_iter()
        .filter(provable_on_open_model_ref)
        .collect();
    let pcc_initial =
        check_coverage_cached(&wrapper, &initial, &cfg, exec::ExecMode::Sequential, cache)
            .expect("initial set holds");
    let pcc_extended =
        check_coverage_cached(&wrapper, &extended, &cfg, exec::ExecMode::Sequential, cache)
            .expect("extended set holds");

    Level4Report {
        kernels,
        properties,
        pcc_initial,
        pcc_extended,
    }
}

fn provable_on_open_model_ref(p: &Property) -> bool {
    provable_on_open_model(p)
}

/// [`run_instrumented`] with the level's obligations dispatched across
/// worker threads when `mode` is parallel:
///
/// * each kernel miter is built deterministically and raced by the SAT
///   portfolio ([`prove_equivalence_portfolio`]),
/// * each wrapper property is an independent obligation with its own
///   private [`telemetry::Collector`], replayed into `instrument` in
///   property order so the merged telemetry matches the sequential run,
/// * PCC fault obligations fan out via [`pcc::check_coverage_mode`].
///
/// With `ExecMode::Sequential` this is exactly [`run_instrumented`] —
/// same code path, byte-identical telemetry.
///
/// # Panics
///
/// Same as [`run`].
pub fn run_mode(mode: exec::ExecMode, instrument: &telemetry::SharedInstrument) -> Level4Report {
    run_cached(mode, instrument, cache::noop())
}

/// [`run_mode`] backed by the obligation cache: every SAT/BDD obligation
/// of the level — kernel miters, wrapper properties, PCC kill checks —
/// is looked up before an engine runs and stored after. With a warm
/// cache the whole level replays from stored verdicts; the report is
/// bit-identical to the uncached run either way.
///
/// # Panics
///
/// Same as [`run`].
pub fn run_cached(
    mode: exec::ExecMode,
    instrument: &telemetry::SharedInstrument,
    cache: &cache::ObligationCache,
) -> Level4Report {
    if !mode.is_parallel() {
        return run_sequential_cached(instrument, cache);
    }

    // 1–2: synthesize the kernels; miters go through the portfolio.
    let mut kernels = Vec::new();
    let dist = distance_step_function();
    let dist_rtl = synthesize(&dist).expect("distance step synthesizes");
    kernels.push((
        "distance".to_owned(),
        dist_rtl.num_nodes(),
        prove_equivalence_portfolio_cached(&dist, &dist_rtl, mode, cache),
    ));
    let root = root_function();
    let root_unrolled = unroll(&root, ROOT_ITERATIONS);
    let root_rtl = synthesize(&root_unrolled).expect("unrolled root synthesizes");
    kernels.push((
        "root".to_owned(),
        root_rtl.num_nodes(),
        prove_equivalence_portfolio_cached(&root_unrolled, &root_rtl, mode, cache),
    ));

    // 3–4: wrapper properties as independent obligations.
    let wrapper = bus_wrapper_fsm("bus_wrapper");
    let props: Vec<Property> = extended_properties()
        .into_iter()
        .filter(provable_on_open_model_ref)
        .collect();
    let jobs: Vec<usize> = (0..props.len()).collect();
    let checked = exec::map(mode, jobs, |_, pi| {
        let p = &props[pi];
        let local = std::rc::Rc::new(telemetry::Collector::new());
        let shared: telemetry::SharedInstrument = local.clone();
        let (engine, proven): (&'static str, bool) = match p {
            Property::Invariant { .. } => (
                "bdd-reach",
                reach::check_cached(&wrapper, p, &shared, cache) == Verdict::Proven,
            ),
            Property::Response { .. } => (
                "bmc",
                matches!(
                    bmc::check_cached(&wrapper, p, 12, &shared, cache),
                    Verdict::NoViolationUpTo(_)
                ),
            ),
        };
        shared.counter_add("level4.properties_checked", 1);
        drop(shared);
        let collector =
            std::rc::Rc::try_unwrap(local).expect("obligation dropped every instrument handle");
        (p.name().to_owned(), engine, proven, collector)
    });
    let mut properties = Vec::new();
    for (name, engine, proven, collector) in checked {
        collector.replay_into(instrument.as_ref());
        properties.push((name, engine, proven));
    }

    // 5: PCC before/after the refinement, fault obligations in parallel.
    let cfg = PccConfig { bmc_bound: 10 };
    let initial: Vec<Property> = initial_properties()
        .into_iter()
        .filter(provable_on_open_model_ref)
        .collect();
    let pcc_initial =
        check_coverage_cached(&wrapper, &initial, &cfg, mode, cache).expect("initial set holds");
    let pcc_extended =
        check_coverage_cached(&wrapper, &props, &cfg, mode, cache).expect("extended set holds");

    Level4Report {
        kernels,
        properties,
        pcc_initial,
        pcc_extended,
    }
}

/// [`prove_equivalence_cached`] under a deterministic effort budget: the
/// miter query runs through [`sat::Solver::solve_budgeted`] on the single
/// canonical solver — never the portfolio, whose winner is wall-clock
/// dependent — so the exhaustion point is a pure function of the CNF and
/// the budget, independent of worker count.
///
/// Returns `Some(equivalent)` on a verdict and `None` when the budget ran
/// out first. Verdicts are cached under the standard miter fingerprint
/// (shared with the unbudgeted entry points); exhaustion is never cached,
/// because a larger budget may still decide the query.
pub fn prove_equivalence_budgeted(
    func: &Function,
    rtl: &Rtl,
    effort: &exec::Effort,
    instrument: &telemetry::SharedInstrument,
    cache: &cache::ObligationCache,
) -> Option<bool> {
    if !effort.bounds_sat() {
        return Some(prove_equivalence_cached(func, rtl, instrument, cache));
    }
    let mut ctx = CnfBackend::new();
    if instrument.enabled() {
        ctx.builder_mut().set_instrument(instrument.clone());
    }
    let (input_bits, any) = build_miter(func, rtl, &mut ctx);
    let fp = if cache.is_enabled() {
        let fp = miter_fingerprint(&mut ctx, &input_bits, any);
        if let Some(payload) = cache.lookup_tagged("level4.miter", fp) {
            if let Some(equivalent) = cache::decode_bool(&payload) {
                instrument.counter_add("cache.hits", 1);
                return Some(equivalent);
            }
        }
        instrument.counter_add("cache.misses", 1);
        Some(fp)
    } else {
        None
    };
    let builder = ctx.builder_mut();
    builder.assert_lit(any);
    let equivalent = match builder.solve_budgeted(&[], effort).decided() {
        Some(result) => result.is_unsat(),
        // Budget exhausted: cube-and-conquer fallback. Split on the
        // probe solver's top-activity variables and re-solve each cube
        // under the same per-cube budget; cubes run sequentially so the
        // exhaustion point stays a pure function of CNF and budget. No
        // lemma-pool seeding here — a warm pool could move the
        // exhaustion point and flip Exhausted <-> Decided across runs.
        None => {
            instrument.counter_add("sat.cube_splits", 1);
            let split = builder.solver().top_activity_vars(CUBE_SPLIT_VARS);
            let cnf = builder.solver().export_cnf();
            let report = sat::cube::conquer(&cnf, &split, effort, exec::ExecMode::Sequential);
            report.verdict?.is_unsat()
        }
    };
    if let Some(fp) = fp {
        cache.insert_tagged("level4.miter", fp, cache::encode_bool(equivalent));
    }
    Some(equivalent)
}

/// Number of top-activity variables the budgeted miter splits on when
/// its direct solve exhausts (2^k cubes; 3 → 8 cubes, enough to break
/// symmetric hard instances without exploding the sequential sweep).
const CUBE_SPLIT_VARS: usize = 3;

/// [`run_cached`] under a [`SupervisionPolicy`]: every level-4 obligation
/// — two kernel miters, five wrapper properties, two PCC coverage runs —
/// is panic-isolated (caught, optionally retried once), effort-budgeted,
/// and reported in the [`ObligationOutcome`] taxonomy alongside the
/// (possibly partial) [`Level4Report`].
///
/// Degraded entries keep the report well-formed: an undecided or panicked
/// miter/property is recorded as not-proven, and a failed PCC run falls
/// back to an empty coverage report. Budget-exhausted model-checking
/// obligations are routed to the deterministic simulation cross-check
/// ([`mc::simcheck`]): a witnessed violation upgrades them to *Refuted*.
///
/// Determinism: miters use the canonical budgeted solver (no portfolio),
/// obligations carry private telemetry collectors replayed in obligation
/// order, and the PCC runs execute sequentially — a panic escaping a
/// parallel inner PCC sweep would leave worker-count-dependent cache
/// state behind, so supervised PCC trades parallelism for
/// reproducibility. The outcome list (and the report) is bit-identical
/// across worker counts, faults or no faults.
///
/// # Panics
///
/// Kernel synthesis panics propagate (programming errors, same as
/// [`run`]); engine panics are supervised.
pub fn run_supervised(
    mode: exec::ExecMode,
    instrument: &telemetry::SharedInstrument,
    cache: &cache::ObligationCache,
    policy: &SupervisionPolicy,
) -> (Level4Report, Vec<ObligationOutcome>) {
    run_supervised_journaled(mode, instrument, cache, policy, None)
}

/// Unwraps one supervised pool slot. The closures dispatched here catch
/// their own panics ([`supervise::supervised_obligation`]), so the outer
/// [`exec::JobOutcome`] is always `Ok` in practice; a `Panicked`/`Missing`
/// slot (a pool fault, not an engine fault) degrades to a panicked
/// obligation instead of aborting the level.
fn unwrap_job<R>(
    out: exec::JobOutcome<(supervise::Supervised<R>, Option<telemetry::Collector>)>,
) -> (supervise::Supervised<R>, Option<telemetry::Collector>) {
    match out {
        exec::JobOutcome::Ok(v) => v,
        exec::JobOutcome::Panicked { message } => (
            supervise::Supervised {
                value: None,
                panic: Some(message),
                retried: false,
                wall_us: 0,
            },
            None,
        ),
        exec::JobOutcome::Missing => (
            supervise::Supervised {
                value: None,
                panic: Some("missing worker result".to_owned()),
                retried: false,
                wall_us: 0,
            },
            None,
        ),
    }
}

/// Emits one drained batch's scheduling facts on the journal's timing
/// lane: the queue shape and the per-job worker attribution. Timing-lane
/// only — worker ids and queue depths are honest schedule data and differ
/// run to run.
fn journal_batch(
    journal: Option<&telemetry::Journal>,
    batch: &str,
    names: &[String],
    stats: &exec::PoolRunStats,
) {
    let Some(j) = journal else { return };
    j.emit_timing(telemetry::TimingKind::QueueDepth {
        batch: batch.to_owned(),
        jobs: stats.jobs as u64,
        workers: stats.workers as u64,
        peak_depth: stats.peak_depth() as u64,
    });
    for (i, worker) in stats.worker_for_job.iter().enumerate() {
        if let Some(worker) = worker {
            j.emit_timing(telemetry::TimingKind::WorkerJob {
                batch: batch.to_owned(),
                job: names.get(i).cloned().unwrap_or_else(|| i.to_string()),
                worker: *worker as u64,
            });
        }
    }
}

/// [`run_supervised`] with a flight recorder: every obligation's
/// lifecycle — start, cache probe, per-axis budget spend, panic/retry,
/// provenance-carrying finish, degradation — is emitted on the journal's
/// deterministic lane in obligation order, and the batch scheduling facts
/// (queue depth, worker attribution, wall latency) on its timing lane.
///
/// The journal is coordinator-only (it is `!Sync`, so a worker closure
/// cannot capture it) and instrumentation never perturbs results: the
/// report and outcomes are bit-identical to [`run_supervised`] with or
/// without a journal, and the deterministic lane is bit-identical across
/// worker counts.
///
/// # Panics
///
/// Same as [`run_supervised`].
pub fn run_supervised_journaled(
    mode: exec::ExecMode,
    instrument: &telemetry::SharedInstrument,
    cache: &cache::ObligationCache,
    policy: &SupervisionPolicy,
    journal: Option<&telemetry::Journal>,
) -> (Level4Report, Vec<ObligationOutcome>) {
    use ObligationStatus::{Panicked, Proved, Refuted, Unknown};

    let effort = policy.effort;
    let retry = policy.retry_panicked;
    let (sim_vectors, sim_cycles) = (policy.sim_vectors, policy.sim_cycles);
    // Private per-obligation collectors power both the deterministic
    // telemetry replay *and* the journal's effort attribution, so a
    // journaled run keeps them even under a no-op instrument.
    let enabled = instrument.enabled() || journal.is_some();
    let mut outcomes: Vec<ObligationOutcome> = Vec::new();

    // 1–2: synthesize deterministically (no SAT involved), then prove the
    // miters as supervised obligations.
    let dist = distance_step_function();
    let dist_rtl = synthesize(&dist).expect("distance step synthesizes");
    let root_unrolled = unroll(&root_function(), ROOT_ITERATIONS);
    let root_rtl = synthesize(&root_unrolled).expect("unrolled root synthesizes");
    let miters: [(&str, &Function, &Rtl); 2] = [
        ("distance", &dist, &dist_rtl),
        ("root", &root_unrolled, &root_rtl),
    ];

    let miter_names: Vec<String> = miters
        .iter()
        .map(|(name, _, _)| format!("miter:{name}"))
        .collect();
    if let Some(j) = journal {
        for name in &miter_names {
            j.emit(telemetry::EventKind::ObligationStarted {
                obligation: name.clone(),
                engine: "level4.miter".to_owned(),
            });
        }
    }
    let miter_jobs: Vec<usize> = (0..miters.len()).collect();
    let (miter_results, miter_stats) = exec::map_supervised_stats(mode, miter_jobs, |_, i| {
        let (_, func, rtl) = miters[i];
        supervise::supervised_obligation(enabled, retry, |instr| {
            prove_equivalence_budgeted(func, rtl, &effort, instr, cache)
        })
    });
    journal_batch(journal, "level4.miters", &miter_names, &miter_stats);
    let mut kernels = Vec::new();
    for (i, out) in miter_results.into_iter().enumerate() {
        let (sup, collector) = unwrap_job(out);
        // Effort attribution reads the private collector *before* replay.
        let spent = collector
            .as_ref()
            .map(telemetry::EffortSpent::from_collector)
            .unwrap_or_default();
        if let Some(collector) = collector {
            collector.replay_into(instrument.as_ref());
        }
        let (name, _, rtl) = miters[i];
        let (status, detail, equivalent) = match sup.value {
            Some(Some(true)) => (Proved, "equivalent (miter UNSAT)".to_owned(), true),
            Some(Some(false)) => (Refuted, "distinguishing input exists".to_owned(), false),
            Some(None) => (
                Unknown,
                "SAT budget exhausted before a verdict".to_owned(),
                false,
            ),
            None => (
                Panicked,
                format!("panicked: {}", sup.panic.as_deref().unwrap_or("?")),
                false,
            ),
        };
        kernels.push((name.to_owned(), rtl.num_nodes(), equivalent));
        if let Some(j) = journal {
            supervise::journal_obligation(
                j,
                &miter_names[i],
                "level4.miter",
                sup.panic.as_deref(),
                sup.retried,
                sup.wall_us,
                &spent,
                Some(&effort),
                status,
                &detail,
            );
        }
        outcomes.push(ObligationOutcome {
            name: format!("miter:{name}"),
            status,
            detail,
            retried: sup.retried,
        });
    }

    // 3–4: wrapper properties as supervised obligations, with the
    // simulation cross-check behind budget exhaustion.
    let wrapper = bus_wrapper_fsm("bus_wrapper");
    let props: Vec<Property> = extended_properties()
        .into_iter()
        .filter(provable_on_open_model_ref)
        .collect();
    let prop_names: Vec<String> = props
        .iter()
        .map(|p| format!("property:{}", p.name()))
        .collect();
    let prop_engines: Vec<&'static str> = props
        .iter()
        .map(|p| match p {
            Property::Invariant { .. } => "bdd-reach",
            Property::Response { .. } => "bmc",
        })
        .collect();
    if let Some(j) = journal {
        for (name, engine) in prop_names.iter().zip(&prop_engines) {
            j.emit(telemetry::EventKind::ObligationStarted {
                obligation: name.clone(),
                engine: (*engine).to_owned(),
            });
        }
    }
    let prop_jobs: Vec<usize> = (0..props.len()).collect();
    let (prop_results, prop_stats) = exec::map_supervised_stats(mode, prop_jobs, |_, pi| {
        let p = &props[pi];
        supervise::supervised_obligation(enabled, retry, |instr| {
            let (engine, verdict): (&'static str, Verdict) = match p {
                Property::Invariant { .. } => (
                    "bdd-reach",
                    reach::check_budgeted(&wrapper, p, &effort, instr, cache),
                ),
                Property::Response { .. } => (
                    "bmc",
                    bmc::check_budgeted(&wrapper, p, 12, &effort, instr, cache),
                ),
            };
            instr.counter_add("level4.properties_checked", 1);
            let cross_check = verdict
                .is_budget_exhausted()
                .then(|| mc::simcheck::simulate_violates(&wrapper, p, sim_vectors, sim_cycles));
            (engine, verdict, cross_check)
        })
    });
    journal_batch(journal, "level4.properties", &prop_names, &prop_stats);
    let mut properties = Vec::new();
    for (pi, out) in prop_results.into_iter().enumerate() {
        let (sup, collector) = unwrap_job(out);
        let spent = collector
            .as_ref()
            .map(telemetry::EffortSpent::from_collector)
            .unwrap_or_default();
        if let Some(collector) = collector {
            collector.replay_into(instrument.as_ref());
        }
        let p = &props[pi];
        let (engine, proven, status, detail): (&'static str, bool, _, String) = match sup.value {
            Some((engine, verdict, cross_check)) => match verdict {
                Verdict::Proven => (engine, true, Proved, "proven".to_owned()),
                Verdict::NoViolationUpTo(k) => (
                    engine,
                    true,
                    Proved,
                    format!("no violation up to {k} cycles"),
                ),
                Verdict::Violated(_) => (engine, false, Refuted, "counterexample found".to_owned()),
                Verdict::Unknown(mc::UnknownReason::BudgetExhausted) => match cross_check {
                    Some(true) => (
                        engine,
                        false,
                        Refuted,
                        "budget exhausted; refuted by simulation cross-check".to_owned(),
                    ),
                    _ => (
                        engine,
                        false,
                        Unknown,
                        format!(
                            "budget exhausted; simulation cross-check found no violation \
                             in {sim_vectors} vectors"
                        ),
                    ),
                },
                Verdict::Unknown(mc::UnknownReason::NotInductive) => {
                    (engine, false, Unknown, "engine could not decide".to_owned())
                }
            },
            None => {
                let engine: &'static str = match p {
                    Property::Invariant { .. } => "bdd-reach",
                    Property::Response { .. } => "bmc",
                };
                (
                    engine,
                    false,
                    Panicked,
                    format!("panicked: {}", sup.panic.as_deref().unwrap_or("?")),
                )
            }
        };
        properties.push((p.name().to_owned(), engine, proven));
        if let Some(j) = journal {
            supervise::journal_obligation(
                j,
                &prop_names[pi],
                engine,
                sup.panic.as_deref(),
                sup.retried,
                sup.wall_us,
                &spent,
                Some(&effort),
                status,
                &detail,
            );
        }
        outcomes.push(ObligationOutcome {
            name: format!("property:{}", p.name()),
            status,
            detail,
            retried: sup.retried,
        });
    }

    // 5: the two PCC coverage runs, supervised sequentially (see the
    // determinism note above). A panicked or failed run degrades to an
    // empty report so the flow can still render coverage.
    let cfg = PccConfig { bmc_bound: 10 };
    let initial: Vec<Property> = initial_properties()
        .into_iter()
        .filter(provable_on_open_model_ref)
        .collect();
    let empty_report = || PccReport {
        total: 0,
        covered: 0,
        uncovered: Vec::new(),
        per_property: Vec::new(),
    };
    let mut pcc_reports: Vec<PccReport> = Vec::new();
    for (label, set) in [("pcc:initial", &initial), ("pcc:extended", &props)] {
        if let Some(j) = journal {
            j.emit(telemetry::EventKind::ObligationStarted {
                obligation: label.to_owned(),
                engine: "pcc".to_owned(),
            });
        }
        let sup = supervise::run_supervised_job(retry, || {
            check_coverage_cached(&wrapper, set, &cfg, exec::ExecMode::Sequential, cache)
        });
        if instrument.enabled() && sup.panics_caught() > 0 {
            instrument.counter_add("exec.panics_caught", sup.panics_caught());
        }
        let (report, status, detail) = match sup.value {
            Some(Ok(report)) => {
                let detail = format!("coverage {:.1}%", report.pct());
                (report, Proved, detail)
            }
            Some(Err(err)) => (
                empty_report(),
                Refuted,
                format!("coverage not measurable: {err}"),
            ),
            None => (
                empty_report(),
                Panicked,
                format!("panicked: {}", sup.panic.as_deref().unwrap_or("?")),
            ),
        };
        if let Some(j) = journal {
            // PCC runs are panic-supervised but not effort-budgeted, and
            // their engines do not carry a per-obligation collector — the
            // provenance records the outcome with zero attributed effort.
            supervise::journal_obligation(
                j,
                label,
                "pcc",
                sup.panic.as_deref(),
                sup.retried,
                sup.wall_us,
                &telemetry::EffortSpent::default(),
                None,
                status,
                &detail,
            );
        }
        outcomes.push(ObligationOutcome {
            name: label.to_owned(),
            status,
            detail,
            retried: sup.retried,
        });
        pcc_reports.push(report);
    }
    let pcc_initial = pcc_reports.remove(0);
    let pcc_extended = pcc_reports.remove(0);

    (
        Level4Report {
            kernels,
            properties,
            pcc_initial,
            pcc_extended,
        },
        outcomes,
    )
}

/// Emits the level-4 VHDL deliverables: both synthesized kernels and the
/// bus wrapper, as `(entity name, vhdl source)` pairs — the "FPGA RTL
/// VHDL" box of Figure 1.
pub fn export_vhdl() -> Vec<(String, String)> {
    let mut artifacts = Vec::new();
    let dist = distance_step_function();
    let dist_rtl = synthesize(&dist).expect("distance step synthesizes");
    artifacts.push(("distance".to_owned(), hdl::vhdl::to_vhdl(&dist_rtl)));
    let root = root_function();
    let root_rtl = synthesize(&unroll(&root, ROOT_ITERATIONS)).expect("unrolled root synthesizes");
    artifacts.push(("root".to_owned(), hdl::vhdl::to_vhdl(&root_rtl)));
    let wrapper = bus_wrapper_fsm("bus_wrapper");
    artifacts.push(("bus_wrapper".to_owned(), hdl::vhdl::to_vhdl(&wrapper)));
    artifacts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_synthesize_and_verify() {
        let report = run();
        assert_eq!(report.kernels.len(), 2);
        for (name, nodes, equivalent) in &report.kernels {
            assert!(*nodes > 0, "{name} has an empty netlist");
            assert!(*equivalent, "{name} RTL is not equivalent to source");
        }
    }

    #[test]
    fn parallel_level4_matches_sequential() {
        let reference = run();
        for workers in [2, 8] {
            let par = run_mode(exec::ExecMode::Parallel { workers }, &telemetry::noop());
            assert_eq!(par.kernels, reference.kernels);
            assert_eq!(par.properties, reference.properties);
            assert_eq!(par.pcc_initial.covered, reference.pcc_initial.covered);
            assert_eq!(par.pcc_initial.uncovered, reference.pcc_initial.uncovered);
            assert_eq!(par.pcc_extended.covered, reference.pcc_extended.covered);
            assert_eq!(par.pcc_extended.uncovered, reference.pcc_extended.uncovered);
        }
    }

    #[test]
    fn wrapper_properties_all_prove() {
        let report = run();
        assert!(!report.properties.is_empty());
        for (name, engine, proven) in &report.properties {
            assert!(proven, "property {name} failed under {engine}");
        }
    }

    #[test]
    fn pcc_refinement_raises_coverage() {
        let report = run();
        assert!(
            report.pcc_extended.pct() > report.pcc_initial.pct(),
            "extended set {}% must beat initial {}%",
            report.pcc_extended.pct(),
            report.pcc_initial.pct()
        );
        assert!(
            !report.pcc_initial.uncovered.is_empty(),
            "the initial set must leave uncovered behaviour — that's the E8 story"
        );
    }

    #[cfg(not(any(feature = "panic-mutant", feature = "diverge-mutant")))]
    #[test]
    fn supervised_level4_idle_matches_legacy() {
        let reference = run();
        let policy = SupervisionPolicy::default();
        let (report, outcomes) = run_supervised(
            exec::ExecMode::Sequential,
            &telemetry::noop(),
            cache::noop(),
            &policy,
        );
        assert_eq!(report.kernels, reference.kernels);
        assert_eq!(report.properties, reference.properties);
        assert_eq!(report.pcc_initial, reference.pcc_initial);
        assert_eq!(report.pcc_extended, reference.pcc_extended);
        assert_eq!(outcomes.len(), 9);
        for o in &outcomes {
            assert_eq!(
                o.status,
                ObligationStatus::Proved,
                "{}: {}",
                o.name,
                o.detail
            );
            assert!(!o.retried);
        }
    }

    #[cfg(not(any(feature = "panic-mutant", feature = "diverge-mutant")))]
    #[test]
    fn starved_level4_degrades_deterministically() {
        let starve = exec::Effort {
            sat_conflicts: None,
            sat_decisions: Some(0),
            bdd_nodes: Some(1),
        };
        let policy = SupervisionPolicy::with_effort(starve);
        let run_once = |mode| {
            let cache = cache::ObligationCache::new();
            run_supervised(mode, &telemetry::noop(), &cache, &policy)
        };
        let (report, outcomes) = run_once(exec::ExecMode::Sequential);
        // The miters still prove: their UNSAT proofs are pure level-0
        // propagation, and budgets cap *search* (conflicts, decisions) —
        // a query decidable without search cannot be starved. Every
        // wrapper property, by contrast, exhausts its budget; they are
        // all true on the wrapper, so the simulation cross-check finds no
        // violation and they degrade to Unknown rather than Refuted.
        for o in &outcomes[..2] {
            assert_eq!(
                o.status,
                ObligationStatus::Proved,
                "{}: {}",
                o.name,
                o.detail
            );
        }
        for o in &outcomes[2..7] {
            assert_eq!(
                o.status,
                ObligationStatus::Unknown,
                "{}: {}",
                o.name,
                o.detail
            );
        }
        assert!(report.kernels.iter().all(|&(_, _, eq)| eq));
        assert!(report.properties.iter().all(|&(_, _, p)| !p));
        // PCC takes no SAT budget (it is panic-supervised only) and still
        // measures coverage.
        assert_eq!(outcomes[7].status, ObligationStatus::Proved);
        assert_eq!(outcomes[8].status, ObligationStatus::Proved);
        assert!(report.pcc_extended.total > 0);
        // Bit-identical for any worker count (fresh cache each run).
        for workers in [2, 8] {
            let (r, o) = run_once(exec::ExecMode::Parallel { workers });
            assert_eq!(r.kernels, report.kernels, "{workers} workers");
            assert_eq!(r.properties, report.properties, "{workers} workers");
            assert_eq!(o, outcomes, "{workers} workers");
        }
    }

    #[test]
    fn distance_rtl_computes() {
        let dist = distance_step_function();
        let rtl = synthesize(&dist).expect("synth");
        // |7-3|² + 100 = 116.
        assert_eq!(rtl.eval_combinational(&[7, 3, 100])[0], 116);
        assert_eq!(rtl.eval_combinational(&[3, 7, 100])[0], 116);
    }

    #[test]
    fn vhdl_artifacts_are_emitted() {
        let artifacts = export_vhdl();
        assert_eq!(artifacts.len(), 3);
        let names: Vec<&str> = artifacts.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["distance", "root", "bus_wrapper"]);
        for (name, vhdl) in &artifacts {
            // The ROOT kernel's module is named `root_unrolled` after the
            // loop-unrolling pass, so check the prefix, not equality.
            assert!(
                vhdl.contains(&format!("entity {name}")),
                "{name} entity missing"
            );
            assert!(vhdl.contains("end architecture rtl;"));
        }
        // The wrapper is sequential: it carries the register process.
        assert!(artifacts[2].1.contains("rising_edge(clk)"));
    }

    #[test]
    fn root_rtl_computes() {
        let root = root_function();
        let unrolled = unroll(&root, ROOT_ITERATIONS);
        let rtl = synthesize(&unrolled).expect("synth");
        assert_eq!(rtl.eval_combinational(&[49])[0], 7);
        assert_eq!(rtl.eval_combinational(&[65536])[0], 256);
        assert_eq!(rtl.eval_combinational(&[0])[0], 0);
    }
}
