//! The verification cascade of Figure 1, end to end (experiment E12).
//!
//! "Four approaches are exploited in a cascade fashion to address different
//! verification problems at different design levels: ATPG to quickly remove
//! easy-to-detect design errors on the behavioral description, linear
//! programming verification to verify real-time properties …, abstract
//! interpretation to check reconfiguration consistency after FPGA mapping,
//! and model checking to verify the correctness of the final RTL
//! description" (§2). This module seeds one representative error of each
//! class and shows the corresponding stage catching it.

use behav::{Expr, Function, FunctionBuilder};
use hdl::fsm::FsmBuilder;
use lp::lpv::{check_deadline, check_liveness, DeadlineVerdict, LivenessVerdict};
use lp::petri::PetriNet;
use lp::TaskGraph;
use mc::prop::{BoolExpr, Property};
use mc::{bmc, Verdict};
use media::profile::{build_profile, MODULES};
use symbc::{check, ConfigMap, Verdict as SymbcVerdict};

/// Result of one cascade stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageResult {
    /// Stage name (tool).
    pub stage: &'static str,
    /// Level of the flow at which the stage runs.
    pub level: u8,
    /// Description of the seeded error class.
    pub seeded_error: &'static str,
    /// Whether the stage caught its seeded error.
    pub caught: bool,
    /// Whether the stage certifies the corrected artifact.
    pub clean_passes: bool,
    /// Human-readable evidence.
    pub detail: String,
}

/// Full cascade report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CascadeReport {
    /// Per-stage results in flow order.
    pub stages: Vec<StageResult>,
}

impl CascadeReport {
    /// Whether every stage caught its seeded error *and* certified the
    /// corrected artifact.
    pub fn all_effective(&self) -> bool {
        self.stages.iter().all(|s| s.caught && s.clean_passes)
    }
}

/// The Figure-2 network as a Petri net (modules = transitions, channels =
/// places), closed by a frame-credit loop from WINNER back to CAMERA with
/// `credits` initial tokens — the flow-control feedback whose
/// mis-dimensioning is the classic level-1 deadlock.
pub fn fig2_petri_net(credits: u64) -> PetriNet {
    let mut net = PetriNet::new();
    let transitions: Vec<_> = MODULES.iter().map(|&m| net.add_transition(m)).collect();
    // Chain places along the dataflow order.
    for pair in transitions.windows(2) {
        let from_name = net.transition_name(pair[0]).to_owned();
        let to_name = net.transition_name(pair[1]).to_owned();
        net.add_channel(&format!("{from_name}→{to_name}"), pair[0], pair[1], 0);
    }
    // Frame-credit feedback: winner → camera.
    let camera = transitions[0];
    let winner = *transitions.last().expect("modules non-empty");
    net.add_channel("credit", winner, camera, credits);
    net
}

/// Stage 1 artifact: a behavioural kernel with a seeded
/// memory-initialization error (only half the buffer written when
/// `initialize_fully` is false).
pub fn buggy_lut_kernel(initialize_fully: bool) -> Function {
    let mut fb = FunctionBuilder::new("lut_kernel", 16);
    let idx = fb.param("idx", 8);
    let lut = fb.array("lut", 16, 8);
    let i = fb.local("i", 8);
    let bound = if initialize_fully { 8 } else { 4 };
    fb.while_(Expr::lt(Expr::var(i), Expr::constant(bound, 8)), |b| {
        b.store(
            lut,
            Expr::var(i),
            Expr::mul(Expr::var(i), Expr::constant(3, 16)),
        );
        b.assign(i, Expr::add(Expr::var(i), Expr::constant(1, 8)));
    });
    let out = fb.local("out", 16);
    fb.assign(
        out,
        Expr::index(lut, Expr::rem(Expr::var(idx), Expr::constant(8, 8))),
    );
    fb.ret(Expr::var(out));
    fb.build()
}

/// Stage 3 artifact: instrumented SW with (when `correct` is false) a
/// missing reconfiguration before the ROOT calls.
pub fn instrumented_sw(correct: bool) -> (Function, ConfigMap) {
    let mut map = ConfigMap::new();
    let c1 = map.add_config("config1");
    let c2 = map.add_config("config2");
    map.add_function(c1, "distance");
    map.add_function(c2, "root");

    let mut fb = FunctionBuilder::new("sw", 32);
    let n = fb.param("entries", 8);
    let i = fb.local("i", 8);
    let acc = fb.local("acc", 32);
    fb.reconfigure(c1);
    fb.while_(Expr::lt(Expr::var(i), Expr::var(n)), |b| {
        b.resource_call("distance", vec![Expr::var(i)], Some(acc));
        b.assign(i, Expr::add(Expr::var(i), Expr::constant(1, 8)));
    });
    if correct {
        fb.reconfigure(c2);
    }
    fb.assign(i, Expr::constant(0, 8));
    fb.while_(Expr::lt(Expr::var(i), Expr::var(n)), |b| {
        b.resource_call("root", vec![Expr::var(acc)], Some(acc));
        b.assign(i, Expr::add(Expr::var(i), Expr::constant(1, 8)));
    });
    fb.ret(Expr::var(acc));
    (fb.build(), map)
}

/// Stage 4 artifact: the bus wrapper FSM with (when `correct` is false) a
/// seeded transition bug — DONE fails to return to IDLE.
pub fn wrapper(correct: bool) -> hdl::Rtl {
    let mut b = FsmBuilder::new("bus_wrapper");
    let idle = b.state("IDLE");
    let request = b.state("REQUEST");
    let wait_ack = b.state("WAIT_ACK");
    let done = b.state("DONE");
    let start = b.input("start");
    let ack = b.input("ack");
    b.transition(idle, vec![(start, true)], request);
    b.transition(request, vec![], wait_ack);
    b.transition(wait_ack, vec![(ack, true)], done);
    if correct {
        b.transition(done, vec![], idle);
    } else {
        // BUG: DONE latches forever.
        b.transition(done, vec![], done);
    }
    b.moore_output("bus_req", 1, &[0, 1, 1, 0]);
    b.moore_output("done", 1, &[0, 0, 0, 1]);
    b.build()
}

/// Runs the whole cascade: each stage on its buggy artifact (must catch)
/// and on the corrected artifact (must certify).
pub fn run() -> CascadeReport {
    run_mode(exec::ExecMode::Sequential)
}

/// [`run`] with each stage executed as an independent obligation,
/// optionally across worker threads. Every stage builds its own artifacts
/// and engines, and each is deterministic, so the report is bit-identical
/// to the sequential run (stages stay in flow order).
pub fn run_mode(mode: exec::ExecMode) -> CascadeReport {
    run_cached(mode, cache::noop())
}

/// [`run_mode`] backed by the obligation cache. Only the model-checking
/// stage poses cacheable obligations (the other stages' engines — fault
/// simulation, LP, abstract interpretation — decide in microseconds and
/// are not content-addressed); its two BMC verdicts replay from the cache
/// on warm runs.
pub fn run_cached(mode: exec::ExecMode, cache: &cache::ObligationCache) -> CascadeReport {
    let jobs: Vec<usize> = (0..5).collect();
    let stages = exec::map(mode, jobs, |_, i| match i {
        0 => stage_atpg(),
        1 => stage_lpv_liveness(),
        2 => stage_lpv_deadline(),
        3 => stage_symbc(),
        _ => stage_model_checking(cache),
    });
    CascadeReport { stages }
}

/// Stage metadata used to fabricate a degraded [`StageResult`] when a
/// stage panics and never returns one: `(stage, level, seeded_error)` in
/// flow order, mirroring the constructors below.
const STAGE_META: [(&str, u8, &str); 5] = [
    (
        "ATPG (memory inspection)",
        1,
        "uninitialized LUT entries read by the kernel",
    ),
    (
        "LPV (deadlock freeness)",
        1,
        "frame-credit loop dimensioned with zero credits",
    ),
    (
        "LPV (deadline achievement)",
        2,
        "frame deadline set below the provable latency",
    ),
    (
        "SymbC (reconfiguration consistency)",
        3,
        "missing reconfigure(config2) before the ROOT calls",
    ),
    (
        "Model checking (BMC)",
        4,
        "DONE state latches instead of returning to IDLE",
    ),
];

/// [`run_cached`] under a [`crate::supervise::SupervisionPolicy`]: each
/// stage runs panic-isolated (caught, optionally retried once), the
/// model-checking stage honours the policy's effort budget via
/// [`bmc::check_budgeted`], and the report is accompanied by the
/// per-stage [`crate::supervise::ObligationOutcome`] taxonomy. A
/// panicked stage degrades to a fabricated `StageResult` (from the
/// crate-private `STAGE_META` table) with `caught: false`,
/// `clean_passes: false`, and the panic message as detail — the cascade
/// always returns all five stages, bit-identically for any worker count.
pub fn run_supervised(
    mode: exec::ExecMode,
    cache: &cache::ObligationCache,
    policy: &crate::supervise::SupervisionPolicy,
) -> (CascadeReport, Vec<crate::supervise::ObligationOutcome>) {
    use crate::supervise::{ObligationOutcome, ObligationStatus};

    let effort = policy.effort;
    let retry = policy.retry_panicked;
    let jobs: Vec<usize> = (0..STAGE_META.len()).collect();
    let supervised = exec::map(mode, jobs, |_, i| {
        crate::supervise::run_supervised_job(retry, || match i {
            0 => (stage_atpg(), false),
            1 => (stage_lpv_liveness(), false),
            2 => (stage_lpv_deadline(), false),
            3 => (stage_symbc(), false),
            _ => stage_model_checking_budgeted(cache, &effort),
        })
    });

    let mut stages = Vec::new();
    let mut outcomes = Vec::new();
    for (i, sup) in supervised.into_iter().enumerate() {
        let (stage, status, detail) = match sup.value {
            Some((stage, budget_exhausted)) => {
                let status = if budget_exhausted {
                    ObligationStatus::Unknown
                } else if stage.caught && stage.clean_passes {
                    ObligationStatus::Proved
                } else {
                    ObligationStatus::Refuted
                };
                let detail = stage.detail.clone();
                (stage, status, detail)
            }
            None => {
                let (name, level, seeded_error) = STAGE_META[i];
                let msg = sup.panic.as_deref().unwrap_or("?");
                let detail = format!("stage panicked: {msg}");
                (
                    StageResult {
                        stage: name,
                        level,
                        seeded_error,
                        caught: false,
                        clean_passes: false,
                        detail: detail.clone(),
                    },
                    ObligationStatus::Panicked,
                    detail,
                )
            }
        };
        outcomes.push(ObligationOutcome {
            name: format!("cascade:{}", stage.stage),
            status,
            detail,
            retried: sup.retried,
        });
        stages.push(stage);
    }
    (CascadeReport { stages }, outcomes)
}

/// Stage 1: ATPG (Laerte++) at level 1.
fn stage_atpg() -> StageResult {
    let buggy = buggy_lut_kernel(false);
    let clean = buggy_lut_kernel(true);
    // Coverage metrics cannot distinguish LUT indices (no branch depends
    // on them), so a coverage-greedy testbench may keep a single vector.
    // Memory inspection therefore runs on the full generated testbench:
    // the greedy survivors plus a directed index sweep — exactly how
    // Laerte++ pairs generated patterns with its memory inspector.
    let mut tb = atpg::tpg::random_tpg(
        &buggy,
        &atpg::tpg::RandomConfig {
            rounds: 64,
            seed: 5,
        },
    );
    tb.vectors.extend((0..16u64).map(|i| vec![i]));
    let findings = atpg::metrics::memory_inspection(&buggy, &tb);
    let clean_findings = atpg::metrics::memory_inspection(&clean, &tb);
    StageResult {
        stage: "ATPG (memory inspection)",
        level: 1,
        seeded_error: "uninitialized LUT entries read by the kernel",
        caught: !findings.is_empty(),
        clean_passes: clean_findings.is_empty(),
        detail: format!(
            "{} uninitialized reads on the buggy kernel, {} on the fixed one",
            findings.len(),
            clean_findings.len()
        ),
    }
}

/// Stage 2a: LPV deadlock freeness at level 1.
fn stage_lpv_liveness() -> StageResult {
    let buggy = fig2_petri_net(0);
    let clean = fig2_petri_net(1);
    let buggy_verdict = check_liveness(&buggy);
    let clean_verdict = check_liveness(&clean);
    let caught = matches!(buggy_verdict, LivenessVerdict::TokenFreeCycle { .. });
    StageResult {
        stage: "LPV (deadlock freeness)",
        level: 1,
        seeded_error: "frame-credit loop dimensioned with zero credits",
        caught,
        clean_passes: clean_verdict.is_live(),
        detail: format!("buggy: {buggy_verdict:?}; clean: {clean_verdict:?}"),
    }
}

/// Stage 2b: LPV deadline achievement at level 2. The seeded "bug" is an
/// over-optimistic frame deadline on the paper partition's annotated task
/// graph.
fn stage_lpv_deadline() -> StageResult {
    let config = media::dataset::DatasetConfig::default();
    let profile = build_profile(&config, 80);
    let cpu = platform::CpuModel::arm7tdmi();
    let arch = crate::partition::ArchConfig::default();
    let partition = crate::Partition::paper_level2();
    let mut g = TaskGraph::new();
    let mut prev = None;
    for m in MODULES {
        let mix = profile.mix(m);
        let cycles = match partition.domain(m) {
            crate::Domain::Sw => cpu.cycles(mix),
            _ => arch.hw_cycles(mix.total()),
        };
        let t = g.add_task(m, cycles);
        if let Some(p) = prev {
            g.add_dep(p, t);
        }
        prev = Some(t);
    }
    let latency = g.latency_lp();
    let too_tight = (latency.to_f64() * 0.5) as u64;
    let achievable = (latency.to_f64() * 1.2) as u64;
    let tight_verdict = check_deadline(&g, too_tight);
    let ok_verdict = check_deadline(&g, achievable);
    StageResult {
        stage: "LPV (deadline achievement)",
        level: 2,
        seeded_error: "frame deadline set below the provable latency",
        caught: matches!(tight_verdict, DeadlineVerdict::Violated { .. }),
        clean_passes: ok_verdict.is_met(),
        detail: format!("worst-case latency {latency} cycles"),
    }
}

/// Stage 3: SymbC at level 3.
fn stage_symbc() -> StageResult {
    let (buggy_sw, map) = instrumented_sw(false);
    let (clean_sw, _) = instrumented_sw(true);
    let buggy_verdict = check(&buggy_sw, &map);
    let clean_verdict = check(&clean_sw, &map);
    StageResult {
        stage: "SymbC (reconfiguration consistency)",
        level: 3,
        seeded_error: "missing reconfigure(config2) before the ROOT calls",
        caught: !buggy_verdict.is_consistent(),
        clean_passes: clean_verdict.is_consistent(),
        detail: match &buggy_verdict {
            SymbcVerdict::Inconsistent(v) => {
                format!("{} violation(s), first: {}", v.len(), v[0])
            }
            SymbcVerdict::Consistent(_) => "unexpected certificate".to_owned(),
        },
    }
}

/// Stage 4: model checking at level 4.
fn stage_model_checking(cache: &cache::ObligationCache) -> StageResult {
    let buggy = wrapper(false);
    let clean = wrapper(true);
    let p = Property::response(
        "done_returns_to_idle",
        BoolExpr::eq("state", 3),
        BoolExpr::eq("state", 0),
        1,
    );
    let buggy_verdict = bmc::check_cached(&buggy, &p, 10, &telemetry::noop(), cache);
    let clean_verdict = bmc::check_cached(&clean, &p, 10, &telemetry::noop(), cache);
    StageResult {
        stage: "Model checking (BMC)",
        level: 4,
        seeded_error: "DONE state latches instead of returning to IDLE",
        caught: buggy_verdict.is_violated(),
        clean_passes: matches!(clean_verdict, Verdict::NoViolationUpTo(_)),
        detail: format!("buggy verdict: {buggy_verdict:?}"),
    }
}

/// [`stage_model_checking`] under an effort budget: both BMC verdicts go
/// through [`bmc::check_budgeted`], and the second element reports
/// whether either query exhausted the budget (the stage then certifies
/// nothing — an exhausted verdict is evidence of nothing).
fn stage_model_checking_budgeted(
    cache: &cache::ObligationCache,
    effort: &exec::Effort,
) -> (StageResult, bool) {
    let buggy = wrapper(false);
    let clean = wrapper(true);
    let p = Property::response(
        "done_returns_to_idle",
        BoolExpr::eq("state", 3),
        BoolExpr::eq("state", 0),
        1,
    );
    let buggy_verdict = bmc::check_budgeted(&buggy, &p, 10, effort, &telemetry::noop(), cache);
    let clean_verdict = bmc::check_budgeted(&clean, &p, 10, effort, &telemetry::noop(), cache);
    let budget_exhausted =
        buggy_verdict.is_budget_exhausted() || clean_verdict.is_budget_exhausted();
    let stage = StageResult {
        stage: "Model checking (BMC)",
        level: 4,
        seeded_error: "DONE state latches instead of returning to IDLE",
        caught: buggy_verdict.is_violated(),
        clean_passes: matches!(clean_verdict, Verdict::NoViolationUpTo(_)),
        detail: if budget_exhausted {
            format!("budget exhausted: buggy {buggy_verdict:?}, clean {clean_verdict:?}")
        } else {
            format!("buggy verdict: {buggy_verdict:?}")
        },
    };
    (stage, budget_exhausted)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_stage_catches_its_bug_and_certifies_the_fix() {
        let report = run();
        assert_eq!(report.stages.len(), 5);
        for s in &report.stages {
            assert!(s.caught, "{} failed to catch: {}", s.stage, s.detail);
            assert!(
                s.clean_passes,
                "{} failed to certify the fix: {}",
                s.stage, s.detail
            );
        }
        assert!(report.all_effective());
    }

    #[test]
    fn stages_are_ordered_by_level() {
        let report = run();
        let levels: Vec<u8> = report.stages.iter().map(|s| s.level).collect();
        let mut sorted = levels.clone();
        sorted.sort_unstable();
        assert_eq!(levels, sorted);
    }

    #[test]
    fn fig2_net_is_a_marked_graph() {
        let net = fig2_petri_net(1);
        assert!(net.is_marked_graph());
        assert_eq!(net.num_transitions(), MODULES.len());
        // Chain places + the credit loop.
        assert_eq!(net.num_places(), MODULES.len());
    }

    #[test]
    fn parallel_cascade_is_bit_identical() {
        let reference = run();
        for workers in [2, 8] {
            assert_eq!(run_mode(exec::ExecMode::Parallel { workers }), reference);
        }
    }

    #[cfg(not(any(feature = "panic-mutant", feature = "diverge-mutant")))]
    #[test]
    fn supervised_cascade_idle_equals_legacy() {
        use crate::supervise::{ObligationStatus, SupervisionPolicy};
        let reference = run();
        let policy = SupervisionPolicy::default();
        let (report, outcomes) = run_supervised(exec::ExecMode::Sequential, cache::noop(), &policy);
        assert_eq!(report, reference);
        assert_eq!(outcomes.len(), 5);
        for o in &outcomes {
            assert_eq!(
                o.status,
                ObligationStatus::Proved,
                "{}: {}",
                o.name,
                o.detail
            );
            assert!(!o.retried);
        }
    }

    #[cfg(not(any(feature = "panic-mutant", feature = "diverge-mutant")))]
    #[test]
    fn starved_cascade_degrades_only_the_bmc_stage() {
        use crate::supervise::{ObligationStatus, SupervisionPolicy};
        let starve = exec::Effort {
            sat_conflicts: None,
            sat_decisions: Some(0),
            bdd_nodes: None,
        };
        let policy = SupervisionPolicy::with_effort(starve);
        let run_once = |mode| {
            let cache = cache::ObligationCache::new();
            run_supervised(mode, &cache, &policy)
        };
        let (report, outcomes) = run_once(exec::ExecMode::Sequential);
        // The four engine-less stages are untouched by a SAT budget…
        for o in &outcomes[..4] {
            assert_eq!(
                o.status,
                ObligationStatus::Proved,
                "{}: {}",
                o.name,
                o.detail
            );
        }
        // …and the BMC stage degrades to Unknown instead of crashing.
        assert_eq!(outcomes[4].status, ObligationStatus::Unknown);
        assert!(!report.stages[4].caught);
        assert!(report.stages[4].detail.contains("budget exhausted"));
        // Bit-identical for any worker count.
        for workers in [2, 8] {
            let (r, o) = run_once(exec::ExecMode::Parallel { workers });
            assert_eq!(r, report, "{workers} workers");
            assert_eq!(o, outcomes, "{workers} workers");
        }
    }

    #[test]
    fn more_credits_stay_live() {
        for credits in 1..=4 {
            assert!(
                check_liveness(&fig2_petri_net(credits)).is_live(),
                "{credits} credits"
            );
        }
    }
}
