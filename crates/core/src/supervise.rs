//! Supervised execution: panic isolation, deterministic effort budgets,
//! and partial-verdict degradation for the verification flow.
//!
//! The ROADMAP's verification-as-a-service north star needs a flow that
//! *survives* misbehaving obligations: a panicking engine, a diverging
//! SAT search, or a corrupted cache entry must degrade one obligation,
//! never the whole run. This module provides the shared vocabulary:
//!
//! * [`ObligationOutcome`] / [`ObligationStatus`] — the per-obligation
//!   taxonomy (Proved / Refuted / Unknown / Panicked) collected by
//!   [`crate::flow::run_full_flow_supervised`],
//!   [`crate::level4::run_supervised`], and
//!   [`crate::cascade::run_supervised`],
//! * [`SupervisionPolicy`] — the effort budget ([`exec::Effort`]), the
//!   retry-once policy for panicked obligations, and the simulation
//!   cross-check fallback parameters for budget-exhausted model-checking
//!   obligations (the semiformal routing of Grimm et al. / Kumar et al.,
//!   PAPERS.md),
//! * [`DegradationSummary`] — the counts + degraded-obligation list that
//!   [`crate::flow::FlowReport`] renders in its `degradation` section.
//!
//! Everything here is deterministic by construction: budgets are
//! effort-based (never wall-clock), panics are rendered to their exact
//! payload text, retries re-run the same closure on the same inputs, and
//! outcomes are collected in obligation order — so a degraded report is
//! bit-identical across worker counts.

use std::panic::{catch_unwind, AssertUnwindSafe};

/// How a supervised obligation ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObligationStatus {
    /// The engine reached the verdict the flow wanted (equivalence held,
    /// property proven, stage caught-and-certified, coverage measured).
    Proved,
    /// The engine conclusively decided *against* the obligation — a real
    /// counterexample or failed check, not an infrastructure problem.
    Refuted,
    /// The effort budget ran out before a verdict (and, for
    /// model-checking obligations, the simulation cross-check found no
    /// violation either).
    Unknown,
    /// The obligation panicked — on every attempt the policy allowed.
    Panicked,
}

impl ObligationStatus {
    /// Stable lower-case label used in reports.
    pub fn as_str(self) -> &'static str {
        match self {
            ObligationStatus::Proved => "proved",
            ObligationStatus::Refuted => "refuted",
            ObligationStatus::Unknown => "unknown",
            ObligationStatus::Panicked => "panicked",
        }
    }
}

/// One supervised obligation's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct ObligationOutcome {
    /// Stable obligation name (`miter:distance`, `property:state_in_range`,
    /// `pcc:initial`, `cascade:Model checking (BMC)`, …).
    pub name: String,
    /// How it ended.
    pub status: ObligationStatus,
    /// One line of evidence: verdict, panic message, or fallback route.
    pub detail: String,
    /// Whether a panicked first attempt was retried (the retry may have
    /// succeeded — then `status` reflects the retry's verdict).
    pub retried: bool,
}

impl ObligationOutcome {
    /// Whether this outcome degrades the report (inconclusive or
    /// panicked, as opposed to a definite verdict either way).
    pub fn is_degraded(&self) -> bool {
        matches!(
            self.status,
            ObligationStatus::Unknown | ObligationStatus::Panicked
        )
    }
}

/// How the supervised entry points isolate, bound, and degrade.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisionPolicy {
    /// Deterministic effort budget handed to every budgeted engine call.
    /// [`exec::Effort::unbounded`] keeps supervision idle: every engine
    /// behaves exactly like its unbudgeted entry point.
    pub effort: exec::Effort,
    /// Retry a panicked obligation once (same closure, same inputs). A
    /// deterministic panic repeats; a corrupted-state panic may clear.
    pub retry_panicked: bool,
    /// Random input vectors for the simulation cross-check of
    /// budget-exhausted model-checking obligations.
    pub sim_vectors: u32,
    /// Cycles per cross-check vector.
    pub sim_cycles: u32,
}

impl Default for SupervisionPolicy {
    fn default() -> Self {
        SupervisionPolicy {
            effort: exec::Effort::unbounded(),
            retry_panicked: true,
            sim_vectors: 32,
            sim_cycles: 16,
        }
    }
}

impl SupervisionPolicy {
    /// A policy with the given effort budget and the default fallbacks.
    pub fn with_effort(effort: exec::Effort) -> Self {
        SupervisionPolicy {
            effort,
            ..SupervisionPolicy::default()
        }
    }
}

/// The degradation section of a supervised report: taxonomy counts plus
/// the degraded obligations themselves, in obligation order.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradationSummary {
    /// Obligations supervised in total.
    pub total: usize,
    /// Count with [`ObligationStatus::Proved`].
    pub proved: usize,
    /// Count with [`ObligationStatus::Refuted`].
    pub refuted: usize,
    /// Count with [`ObligationStatus::Unknown`].
    pub unknown: usize,
    /// Count with [`ObligationStatus::Panicked`].
    pub panicked: usize,
    /// Panicked first attempts that were retried.
    pub retries: usize,
    /// The non-conclusive outcomes (Unknown/Panicked), in obligation
    /// order — the work list a larger budget or a fix would clear.
    pub degraded: Vec<ObligationOutcome>,
}

impl DegradationSummary {
    /// Tallies outcomes (kept in obligation order).
    pub fn from_outcomes(outcomes: &[ObligationOutcome]) -> Self {
        let count = |s: ObligationStatus| outcomes.iter().filter(|o| o.status == s).count();
        DegradationSummary {
            total: outcomes.len(),
            proved: count(ObligationStatus::Proved),
            refuted: count(ObligationStatus::Refuted),
            unknown: count(ObligationStatus::Unknown),
            panicked: count(ObligationStatus::Panicked),
            retries: outcomes.iter().filter(|o| o.retried).count(),
            degraded: outcomes
                .iter()
                .filter(|o| o.is_degraded())
                .cloned()
                .collect(),
        }
    }

    /// Whether every obligation ended conclusively (no Unknown, no
    /// Panicked — Refuted counts as conclusive).
    pub fn is_clean(&self) -> bool {
        self.unknown == 0 && self.panicked == 0
    }
}

/// Result of running one obligation closure under supervision.
#[derive(Debug)]
pub(crate) struct Supervised<R> {
    /// The closure's result, when some attempt completed.
    pub value: Option<R>,
    /// The first attempt's panic message, when it panicked.
    pub panic: Option<String>,
    /// Whether a retry was attempted.
    pub retried: bool,
    /// Wall-clock microseconds across all attempts. Timing-lane material
    /// only: it feeds the journal's `obligation_wall` events and must
    /// never influence a verdict or the deterministic stream.
    pub wall_us: u64,
}

impl<R> Supervised<R> {
    /// Panics caught across all attempts (0, 1, or 2).
    pub fn panics_caught(&self) -> u64 {
        match (&self.panic, &self.value, self.retried) {
            (None, _, _) => 0,
            (Some(_), None, true) => 2, // both attempts panicked
            (Some(_), _, _) => 1,
        }
    }
}

/// Runs `f` under `catch_unwind`, retrying once on panic when `retry` is
/// set. Deterministic: the panic message is the exact payload rendering
/// of [`exec::panic_message`], and the retry re-runs the same closure on
/// the same inputs — so for a deterministic fault the retry panics at the
/// same point and the recorded outcome is schedule-independent.
pub(crate) fn run_supervised_job<R>(retry: bool, f: impl Fn() -> R) -> Supervised<R> {
    let start = std::time::Instant::now();
    let mut sup = match catch_unwind(AssertUnwindSafe(&f)) {
        Ok(value) => Supervised {
            value: Some(value),
            panic: None,
            retried: false,
            wall_us: 0,
        },
        Err(payload) => {
            let message = exec::panic_message(payload);
            if !retry {
                Supervised {
                    value: None,
                    panic: Some(message),
                    retried: false,
                    wall_us: 0,
                }
            } else {
                match catch_unwind(AssertUnwindSafe(&f)) {
                    Ok(value) => Supervised {
                        value: Some(value),
                        panic: Some(message),
                        retried: true,
                        wall_us: 0,
                    },
                    Err(_) => Supervised {
                        value: None,
                        panic: Some(message),
                        retried: true,
                        wall_us: 0,
                    },
                }
            }
        }
    };
    sup.wall_us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
    sup
}

/// Runs one obligation closure under supervision with a private telemetry
/// collector (when `enabled`): the closure records into the collector,
/// caught panics are tallied as `exec.panics_caught`, and the collector is
/// returned for in-order replay into the run's shared instrument — the
/// same merge discipline the parallel backbone uses, so supervised
/// telemetry is worker-count independent.
///
/// When telemetry is disabled the closure gets the no-op instrument and no
/// collector is allocated (the idle path stays byte-identical to the
/// unsupervised entry points).
pub(crate) fn supervised_obligation<R>(
    enabled: bool,
    retry: bool,
    f: impl Fn(&telemetry::SharedInstrument) -> R,
) -> (Supervised<R>, Option<telemetry::Collector>) {
    if !enabled {
        let noop = telemetry::noop();
        return (run_supervised_job(retry, || f(&noop)), None);
    }
    let local = std::rc::Rc::new(telemetry::Collector::new());
    let shared: telemetry::SharedInstrument = local.clone();
    let sup = run_supervised_job(retry, || f(&shared));
    let caught = sup.panics_caught();
    if caught > 0 {
        shared.counter_add("exec.panics_caught", caught);
    }
    drop(shared);
    let collector =
        std::rc::Rc::try_unwrap(local).expect("obligation dropped every instrument handle");
    (sup, Some(collector))
}

/// Emits one finished obligation's full flight-recorder record: panic and
/// retry events, the cache probe, per-axis budget spend, the
/// [`telemetry::Provenance`] line, a degradation entry for inconclusive
/// outcomes, and (when the journal captures wall clock) the timing-lane
/// latency.
///
/// Called by the coordinator in obligation order, after the obligation's
/// private collector has been read into `effort` and *before* the
/// collector is replayed — so the deterministic lane is bit-identical
/// across worker counts. `budget` is `Some` only for obligations that ran
/// under the policy's effort budget (engine obligations); flow-level
/// obligations pass `None` and emit no `budget_spend` lines.
#[allow(clippy::too_many_arguments)]
pub(crate) fn journal_obligation(
    journal: &telemetry::Journal,
    name: &str,
    engine: &str,
    panic: Option<&str>,
    retried: bool,
    wall_us: u64,
    effort: &telemetry::EffortSpent,
    budget: Option<&exec::Effort>,
    status: ObligationStatus,
    detail: &str,
) {
    if let Some(message) = panic {
        journal.emit(telemetry::EventKind::Panic {
            obligation: name.to_owned(),
            message: message.to_owned(),
        });
    }
    if retried {
        journal.emit(telemetry::EventKind::Retry {
            obligation: name.to_owned(),
        });
    }
    if effort.cache_hits + effort.cache_misses > 0 {
        journal.emit(telemetry::EventKind::CacheProbe {
            obligation: name.to_owned(),
            hits: effort.cache_hits,
            misses: effort.cache_misses,
        });
    }
    if let Some(b) = budget {
        for (axis, spent, cap) in [
            ("sat_conflicts", effort.sat_conflicts, b.sat_conflicts),
            ("sat_decisions", effort.sat_decisions, b.sat_decisions),
            ("bdd_nodes", effort.bdd_nodes, b.bdd_nodes),
        ] {
            if let Some(cap) = cap {
                journal.emit(telemetry::EventKind::BudgetSpend {
                    obligation: name.to_owned(),
                    axis,
                    spent,
                    cap,
                });
            }
        }
    }
    journal.emit(telemetry::EventKind::ObligationFinished(
        telemetry::Provenance {
            obligation: name.to_owned(),
            engine: engine.to_owned(),
            // Identity fingerprint: same dual-FNV lane construction the
            // obligation cache uses, over the engine tag + stable name.
            fingerprint: cache::FingerprintBuilder::new(engine).text(name).finish().0,
            effort: *effort,
            outcome: status.as_str().to_owned(),
            retried,
        },
    ));
    if matches!(
        status,
        ObligationStatus::Unknown | ObligationStatus::Panicked
    ) {
        journal.emit(telemetry::EventKind::Degradation {
            obligation: name.to_owned(),
            status: status.as_str().to_owned(),
            detail: detail.to_owned(),
        });
    }
    if journal.wall_enabled() {
        journal.emit_timing(telemetry::TimingKind::ObligationWall {
            obligation: name.to_owned(),
            wall_us,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn statuses_render_and_tally() {
        let outcomes = vec![
            ObligationOutcome {
                name: "a".into(),
                status: ObligationStatus::Proved,
                detail: "ok".into(),
                retried: false,
            },
            ObligationOutcome {
                name: "b".into(),
                status: ObligationStatus::Unknown,
                detail: "budget".into(),
                retried: false,
            },
            ObligationOutcome {
                name: "c".into(),
                status: ObligationStatus::Panicked,
                detail: "boom".into(),
                retried: true,
            },
        ];
        let summary = DegradationSummary::from_outcomes(&outcomes);
        assert_eq!(
            (summary.total, summary.proved, summary.refuted), //
            (3, 1, 0)
        );
        assert_eq!(
            (summary.unknown, summary.panicked, summary.retries),
            (1, 1, 1)
        );
        assert!(!summary.is_clean());
        assert_eq!(
            summary
                .degraded
                .iter()
                .map(|o| o.name.as_str())
                .collect::<Vec<_>>(),
            vec!["b", "c"]
        );
        assert_eq!(ObligationStatus::Refuted.as_str(), "refuted");
        assert!(DegradationSummary::from_outcomes(&[]).is_clean());
    }

    #[test]
    fn retry_once_policy() {
        exec::silence_injected_panics();
        // Always panics: retried once, then reported.
        let sup = run_supervised_job(true, || -> u32 { panic!("injected panic: always") });
        assert_eq!(sup.value, None);
        assert_eq!(sup.panic.as_deref(), Some("injected panic: always"));
        assert!(sup.retried);
        assert_eq!(sup.panics_caught(), 2);

        // Panics once, then succeeds: the retry's value wins.
        let attempts = Cell::new(0u32);
        let sup = run_supervised_job(true, || {
            attempts.set(attempts.get() + 1);
            if attempts.get() == 1 {
                panic!("injected panic: transient");
            }
            42u32
        });
        assert_eq!(sup.value, Some(42));
        assert!(sup.retried);
        assert_eq!(sup.panics_caught(), 1);

        // No retry allowed: one attempt, no value.
        let sup = run_supervised_job(false, || -> u32 { panic!("injected panic: once") });
        assert_eq!(sup.value, None);
        assert!(!sup.retried);
        assert_eq!(sup.panics_caught(), 1);

        // Healthy closures are untouched.
        let sup = run_supervised_job(true, || 7u32);
        assert_eq!(sup.value, Some(7));
        assert_eq!(sup.panics_caught(), 0);
        assert!(!sup.retried);
    }
}
