//! Architecture description: HW/SW partition and platform parameters.
//!
//! Level 2's "architecture mapping consists in deciding HW/SW partitioning
//! and in providing the HW with a communication architecture"; level 3
//! additionally separates pure HW from reconfigurable HW ("soft hardware").
//! A [`Partition`] assigns each Figure-2 module to a [`Domain`];
//! [`ArchConfig`] carries the platform constants the timed models share.

use media::profile::MODULES;
use std::collections::BTreeMap;
use tlm::BusConfig;

/// Where a module executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Domain {
    /// On the CPU, inside the single collapsed SW task.
    Sw,
    /// As hardwired logic with its own bus connection.
    Hw,
    /// Inside the FPGA, in the context with this index (level 3 only).
    Fpga(usize),
}

/// Assignment of every Figure-2 module to a domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    map: BTreeMap<String, Domain>,
}

impl Partition {
    /// All modules in SW — the starting point of exploration.
    pub fn all_sw() -> Self {
        let map = MODULES
            .iter()
            .map(|&m| (m.to_owned(), Domain::Sw))
            .collect();
        Partition { map }
    }

    /// The paper's level-2 partition, derived from the profiling ranking:
    /// the heavy pixel kernels (camera, bay, erosion, edge, ellipse) and
    /// the match kernels (distance with its calcdist accumulator, root) in
    /// HW; control-dominated modules stay in SW.
    pub fn paper_level2() -> Self {
        let mut p = Partition::all_sw();
        for m in [
            "camera", "bay", "erosion", "edge", "ellipse", "distance", "calcdist", "root",
        ] {
            p.assign(m, Domain::Hw);
        }
        p
    }

    /// The paper's level-3 mapping: DISTANCE in FPGA context 0 (`config1`)
    /// and ROOT in context 1 (`config2`); the pixel front-end stays
    /// hardwired.
    pub fn paper_level3() -> Self {
        let mut p = Partition::paper_level2();
        p.assign("distance", Domain::Fpga(0));
        p.assign("calcdist", Domain::Fpga(0));
        p.assign("root", Domain::Fpga(1));
        p
    }

    /// A level-3 variant with both kernels merged into a single context —
    /// the E9 ablation point (bigger bitstream, no context ping-pong).
    pub fn merged_context() -> Self {
        let mut p = Partition::paper_level2();
        p.assign("distance", Domain::Fpga(0));
        p.assign("calcdist", Domain::Fpga(0));
        p.assign("root", Domain::Fpga(0));
        p
    }

    /// Reassigns a module.
    ///
    /// # Panics
    ///
    /// Panics if the module is not one of the Figure-2 modules.
    pub fn assign(&mut self, module: &str, domain: Domain) {
        assert!(MODULES.contains(&module), "unknown module `{module}`");
        self.map.insert(module.to_owned(), domain);
    }

    /// The domain of a module.
    pub fn domain(&self, module: &str) -> Domain {
        self.map.get(module).copied().unwrap_or(Domain::Sw)
    }

    /// Modules mapped to SW, in dataflow order.
    pub fn sw_modules(&self) -> Vec<&'static str> {
        MODULES
            .iter()
            .copied()
            .filter(|m| self.domain(m) == Domain::Sw)
            .collect()
    }

    /// Modules mapped to an FPGA context, in dataflow order.
    pub fn fpga_modules(&self) -> Vec<(&'static str, usize)> {
        MODULES
            .iter()
            .copied()
            .filter_map(|m| match self.domain(m) {
                Domain::Fpga(c) => Some((m, c)),
                _ => None,
            })
            .collect()
    }

    /// Number of FPGA contexts referenced.
    pub fn num_contexts(&self) -> usize {
        self.fpga_modules()
            .iter()
            .map(|&(_, c)| c + 1)
            .max()
            .unwrap_or(0)
    }

    /// Whether the edge between two adjacent modules goes over the bus in
    /// the timed models. HW→HW edges are point-to-point wires; everything
    /// touching SW or the FPGA is a bus transfer.
    pub fn crosses_boundary(&self, from: &str, to: &str) -> bool {
        let a = self.domain(from);
        let b = self.domain(to);
        if matches!(a, Domain::Fpga(_)) || matches!(b, Domain::Fpga(_)) {
            return true;
        }
        match (a, b) {
            (Domain::Hw, Domain::Hw) => false,
            (Domain::Sw, Domain::Sw) => false, // intra-task, in CPU memory
            _ => true,
        }
    }
}

/// Platform constants shared by the level-2/3 models.
#[derive(Debug, Clone, PartialEq)]
pub struct ArchConfig {
    /// Bus timing.
    pub bus: BusConfig,
    /// CPU cycle model.
    pub cpu: platform::CpuModel,
    /// Hardware parallelism factor: a HW module executes its operation mix
    /// `hw_speedup`× faster than 1 op/cycle.
    pub hw_speedup: u64,
    /// FPGA fabric is slower than hardwired logic by this divisor of
    /// `hw_speedup`.
    pub fpga_slowdown: u64,
    /// Bitstream words per FPGA context *function* (a context's bitstream
    /// is the sum over its resident functions).
    pub bitstream_words_per_function: u32,
    /// FPGA context-switch latency beyond the download.
    pub fpga_switch_cycles: u64,
}

impl Default for ArchConfig {
    fn default() -> Self {
        ArchConfig {
            bus: BusConfig::default(),
            cpu: platform::CpuModel::arm7tdmi(),
            hw_speedup: 16,
            fpga_slowdown: 2,
            bitstream_words_per_function: 4096,
            fpga_switch_cycles: 64,
        }
    }
}

impl ArchConfig {
    /// Cycles one invocation of `module` takes in hardwired logic.
    pub fn hw_cycles(&self, mix_total: u64) -> u64 {
        (mix_total / self.hw_speedup).max(1)
    }

    /// Cycles one invocation of `module` takes in FPGA fabric.
    pub fn fpga_cycles(&self, mix_total: u64) -> u64 {
        (mix_total * self.fpga_slowdown / self.hw_speedup).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_partitions() {
        let p = Partition::all_sw();
        assert_eq!(p.sw_modules().len(), MODULES.len());
        assert!(p.fpga_modules().is_empty());

        let l2 = Partition::paper_level2();
        assert_eq!(l2.domain("distance"), Domain::Hw);
        assert_eq!(l2.domain("winner"), Domain::Sw);

        let l3 = Partition::paper_level3();
        assert_eq!(l3.domain("distance"), Domain::Fpga(0));
        assert_eq!(l3.domain("root"), Domain::Fpga(1));
        assert_eq!(l3.num_contexts(), 2);
        assert_eq!(Partition::merged_context().num_contexts(), 1);
    }

    #[test]
    fn boundary_detection() {
        let p = Partition::paper_level2();
        assert!(!p.crosses_boundary("bay", "erosion")); // HW→HW wire
        assert!(p.crosses_boundary("ellipse", "crtbord")); // HW→SW bus
        assert!(!p.crosses_boundary("crtbord", "crtline")); // SW→SW local
        let l3 = Partition::paper_level3();
        assert!(l3.crosses_boundary("calcdist", "root")); // SW→FPGA
        assert!(l3.crosses_boundary("distance", "calcdist")); // FPGA→SW
    }

    #[test]
    fn hw_and_fpga_cycle_scaling() {
        let cfg = ArchConfig::default();
        assert_eq!(cfg.hw_cycles(1600), 100);
        assert_eq!(cfg.fpga_cycles(1600), 200);
        assert_eq!(cfg.hw_cycles(3), 1, "floor at one cycle");
    }

    #[test]
    #[should_panic(expected = "unknown module")]
    fn unknown_module_rejected() {
        Partition::all_sw().assign("warp_drive", Domain::Hw);
    }
}
