//! Architecture exploration: the level-2/3 design-space sweeps.
//!
//! "This process includes a number of iterations through II-III-IV steps to
//! find the best product trade-off" (§2). The sweeps here regenerate the
//! exploration data of experiments E9 (context partitioning) and E10
//! (reconfiguration placement), plus the HW/SW partition curve that
//! motivates the level-2 mapping.

use crate::partition::{ArchConfig, Domain, Partition};
use crate::timed::ReconfigStrategy;
use crate::workload::Workload;
use crate::{level2, level3};
use media::profile::build_profile;
use sim::SimError;

/// One point of an exploration sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Candidate label.
    pub name: String,
    /// Total simulated ticks for the workload.
    pub total_ticks: u64,
    /// Ticks per frame.
    pub ticks_per_frame: f64,
    /// Bus utilization (0..1).
    pub bus_utilization: f64,
    /// FPGA reconfigurations (0 when no FPGA).
    pub reconfigurations: u64,
    /// Bitstream words downloaded.
    pub download_words: u64,
    /// Whether the candidate still recognizes probes identically to the
    /// reference (functionality must never change during exploration).
    pub functional: bool,
}

fn point(name: &str, report: &crate::timed::TimedReport) -> SweepPoint {
    SweepPoint {
        name: name.to_owned(),
        total_ticks: report.total_ticks,
        ticks_per_frame: report.ticks_per_frame,
        bus_utilization: report.bus.utilization,
        reconfigurations: report
            .fpga
            .as_ref()
            .map(|f| f.reconfigurations)
            .unwrap_or(0),
        download_words: report.fpga.as_ref().map(|f| f.download_words).unwrap_or(0),
        functional: report.matches_reference,
    }
}

/// The HW/SW partition curve: starting from all-SW, the profiling ranking's
/// heaviest HW-mappable modules are moved to hardware one by one.
///
/// # Errors
///
/// Propagates kernel errors.
pub fn partition_sweep(
    workload: &Workload,
    arch: &ArchConfig,
) -> Result<Vec<SweepPoint>, SimError> {
    const HW_MAPPABLE: [&str; 8] = [
        "camera", "bay", "erosion", "edge", "ellipse", "distance", "calcdist", "root",
    ];
    let profile = build_profile(workload.dataset.config(), workload.gallery_len());
    let ranked: Vec<&str> = profile
        .ranking()
        .into_iter()
        .map(|(m, _)| m)
        .filter(|m| HW_MAPPABLE.contains(m))
        .collect();

    let mut points = Vec::new();
    let mut partition = Partition::all_sw();
    let report = level2::run_with(workload, &partition, arch)?;
    points.push(point("0 HW modules", &report));
    for (k, module) in ranked.iter().enumerate() {
        partition.assign(module, Domain::Hw);
        let report = level2::run_with(workload, &partition, arch)?;
        points.push(point(
            &format!("{} HW modules (+{})", k + 1, module),
            &report,
        ));
    }
    Ok(points)
}

/// E9: context-partitioning ablation — static hardwired matcher vs the
/// paper's config1/config2 split vs a single merged context.
///
/// # Errors
///
/// Propagates kernel errors.
pub fn context_ablation(
    workload: &Workload,
    arch: &ArchConfig,
) -> Result<Vec<SweepPoint>, SimError> {
    let mut points = Vec::new();
    let l2 = level2::run(workload)?;
    points.push(point("static HW (no FPGA)", &l2));
    let split = level3::run_with(
        workload,
        &Partition::paper_level3(),
        arch,
        ReconfigStrategy::Hoisted,
    )?;
    points.push(point("split contexts (config1/config2)", &split));
    let merged = level3::run_with(
        workload,
        &Partition::merged_context(),
        arch,
        ReconfigStrategy::Hoisted,
    )?;
    points.push(point("merged single context", &merged));
    Ok(points)
}

/// E10: reconfiguration-placement ablation — hoisted vs naive call-site
/// instrumentation on the paper's split-context mapping.
///
/// # Errors
///
/// Propagates kernel errors.
pub fn strategy_ablation(
    workload: &Workload,
    arch: &ArchConfig,
) -> Result<Vec<SweepPoint>, SimError> {
    let mut points = Vec::new();
    for (name, strategy) in [
        ("hoisted reconfiguration", ReconfigStrategy::Hoisted),
        ("naive per-call reconfiguration", ReconfigStrategy::Naive),
    ] {
        let r = level3::run_with(workload, &Partition::paper_level3(), arch, strategy)?;
        points.push(point(name, &r));
    }
    Ok(points)
}

/// Bus-bandwidth sweep on the level-3 mapping: the paper's architecture
/// exploration tunes "power consumption, bus loading and memory accesses";
/// this sweep shows when the reconfigurable design becomes bus-bound.
///
/// # Errors
///
/// Propagates kernel errors.
pub fn bus_sweep(workload: &Workload, base: &ArchConfig) -> Result<Vec<SweepPoint>, SimError> {
    let mut points = Vec::new();
    for cycles_per_word in [1u64, 2, 4, 8] {
        let mut arch = base.clone();
        arch.bus.cycles_per_word = cycles_per_word;
        let r = level3::run_with(
            workload,
            &Partition::paper_level3(),
            &arch,
            ReconfigStrategy::Hoisted,
        )?;
        points.push(point(&format!("{cycles_per_word} cycles/word"), &r));
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bus_sweep_slower_bus_costs_time() {
        let w = Workload::small();
        let points = bus_sweep(&w, &ArchConfig::default()).expect("sweep");
        assert_eq!(points.len(), 4);
        for pair in points.windows(2) {
            assert!(
                pair[1].total_ticks > pair[0].total_ticks,
                "slower bus must cost simulated time: {pair:?}"
            );
        }
        assert!(points.iter().all(|p| p.functional));
    }

    #[test]
    fn partition_sweep_is_monotone_enough() {
        let w = Workload::small();
        let points = partition_sweep(&w, &ArchConfig::default()).expect("sweep");
        assert_eq!(points.len(), 9);
        assert!(points.iter().all(|p| p.functional));
        // Moving everything to HW must be far faster than all-SW.
        let first = points.first().unwrap().total_ticks;
        let last = points.last().unwrap().total_ticks;
        assert!(
            last * 3 < first,
            "full-HW ({last}) should be ≥3× faster than all-SW ({first})"
        );
    }

    #[test]
    fn context_ablation_orders_as_expected() {
        let w = Workload::small();
        let points = context_ablation(&w, &ArchConfig::default()).expect("ablation");
        assert_eq!(points.len(), 3);
        let static_hw = &points[0];
        let split = &points[1];
        let merged = &points[2];
        assert_eq!(static_hw.reconfigurations, 0);
        assert!(split.reconfigurations > merged.reconfigurations);
        // Static HW is fastest; merged beats split on reconfig traffic.
        assert!(static_hw.total_ticks < split.total_ticks);
        assert!(merged.download_words < split.download_words);
        assert!(points.iter().all(|p| p.functional));
    }

    #[test]
    fn strategy_ablation_shows_hoisting_wins() {
        let w = Workload::small();
        let points = strategy_ablation(&w, &ArchConfig::default()).expect("ablation");
        let hoisted = &points[0];
        let naive = &points[1];
        assert!(naive.reconfigurations > hoisted.reconfigurations);
        assert!(naive.total_ticks > hoisted.total_ticks);
        assert!(naive.download_words > hoisted.download_words);
    }
}
