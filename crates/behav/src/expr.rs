//! Word-level expressions.

use crate::func::VarId;
use std::fmt;

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// Bitwise complement (within the operand's width).
    Not,
    /// Two's-complement negation (within the operand's width).
    Neg,
}

/// Binary operators. Comparison operators produce a 1-bit result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Unsigned division (division by zero yields all-ones, as common in HW).
    Div,
    /// Unsigned remainder (by zero yields the dividend).
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left (shift amount taken modulo width).
    Shl,
    /// Logical shift right (shift amount taken modulo width).
    Shr,
    /// Equality (1-bit result).
    Eq,
    /// Inequality (1-bit result).
    Ne,
    /// Unsigned less-than (1-bit result).
    Lt,
    /// Unsigned less-or-equal (1-bit result).
    Le,
    /// Unsigned greater-than (1-bit result).
    Gt,
    /// Unsigned greater-or-equal (1-bit result).
    Ge,
}

impl BinOp {
    /// Whether the operator yields a 1-bit (boolean) result.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }
}

/// A side-effect-free expression tree.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// An unsigned constant of the given bit width.
    Const {
        /// Value (must fit in `width` bits).
        value: u64,
        /// Bit width (1..=64).
        width: u32,
    },
    /// A scalar variable read.
    Var(VarId),
    /// An array element read: `array[index]`. Out-of-range reads yield the
    /// interpreter's garbage pattern and are recorded in the run's
    /// memory-inspection report.
    Index {
        /// The array variable.
        array: VarId,
        /// Element index expression.
        index: Box<Expr>,
    },
    /// A unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        arg: Box<Expr>,
    },
    /// A binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// A 2:1 word multiplexer: `cond ? then_ : else_` (cond is 1-bit).
    Mux {
        /// 1-bit selector.
        cond: Box<Expr>,
        /// Value when the selector is 1.
        then_: Box<Expr>,
        /// Value when the selector is 0.
        else_: Box<Expr>,
    },
}

#[allow(clippy::should_implement_trait)] // the builder API mirrors operator
                                         // names (`Expr::add`, `Expr::not`, …) deliberately; these are constructors
                                         // taking two expression trees, not operator overloads.
impl Expr {
    /// A constant of the given width.
    ///
    /// # Panics
    ///
    /// Panics if the width is 0, exceeds 64, or cannot hold `value`.
    pub fn constant(value: u64, width: u32) -> Expr {
        assert!((1..=64).contains(&width), "width must be in 1..=64");
        assert!(
            width == 64 || value < (1u64 << width),
            "constant {value} does not fit in {width} bits"
        );
        Expr::Const { value, width }
    }

    /// A variable read.
    pub fn var(v: VarId) -> Expr {
        Expr::Var(v)
    }

    /// An array element read.
    pub fn index(array: VarId, index: Expr) -> Expr {
        Expr::Index {
            array,
            index: Box::new(index),
        }
    }

    fn unary(op: UnaryOp, arg: Expr) -> Expr {
        Expr::Unary {
            op,
            arg: Box::new(arg),
        }
    }

    fn binary(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// Bitwise complement.
    pub fn not(arg: Expr) -> Expr {
        Expr::unary(UnaryOp::Not, arg)
    }

    /// Two's-complement negation.
    pub fn neg(arg: Expr) -> Expr {
        Expr::unary(UnaryOp::Neg, arg)
    }

    /// Wrapping addition.
    pub fn add(lhs: Expr, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Add, lhs, rhs)
    }

    /// Wrapping subtraction.
    pub fn sub(lhs: Expr, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Sub, lhs, rhs)
    }

    /// Wrapping multiplication.
    pub fn mul(lhs: Expr, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Mul, lhs, rhs)
    }

    /// Unsigned division.
    pub fn div(lhs: Expr, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Div, lhs, rhs)
    }

    /// Unsigned remainder.
    pub fn rem(lhs: Expr, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Rem, lhs, rhs)
    }

    /// Bitwise and.
    pub fn and(lhs: Expr, rhs: Expr) -> Expr {
        Expr::binary(BinOp::And, lhs, rhs)
    }

    /// Bitwise or.
    pub fn or(lhs: Expr, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Or, lhs, rhs)
    }

    /// Bitwise xor.
    pub fn xor(lhs: Expr, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Xor, lhs, rhs)
    }

    /// Logical shift left.
    pub fn shl(lhs: Expr, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Shl, lhs, rhs)
    }

    /// Logical shift right.
    pub fn shr(lhs: Expr, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Shr, lhs, rhs)
    }

    /// Equality test.
    pub fn eq(lhs: Expr, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Eq, lhs, rhs)
    }

    /// Inequality test.
    pub fn ne(lhs: Expr, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Ne, lhs, rhs)
    }

    /// Unsigned less-than.
    pub fn lt(lhs: Expr, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Lt, lhs, rhs)
    }

    /// Unsigned less-or-equal.
    pub fn le(lhs: Expr, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Le, lhs, rhs)
    }

    /// Unsigned greater-than.
    pub fn gt(lhs: Expr, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Gt, lhs, rhs)
    }

    /// Unsigned greater-or-equal.
    pub fn ge(lhs: Expr, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Ge, lhs, rhs)
    }

    /// Word multiplexer `cond ? then_ : else_`.
    pub fn mux(cond: Expr, then_: Expr, else_: Expr) -> Expr {
        Expr::Mux {
            cond: Box::new(cond),
            then_: Box::new(then_),
            else_: Box::new(else_),
        }
    }

    /// Collects every comparison sub-expression — the atomic conditions used
    /// by the condition-coverage metric.
    pub fn atomic_conditions(&self) -> Vec<&Expr> {
        let mut out = Vec::new();
        self.collect_conditions(&mut out);
        out
    }

    fn collect_conditions<'a>(&'a self, out: &mut Vec<&'a Expr>) {
        match self {
            Expr::Binary { op, lhs, rhs } => {
                if op.is_comparison() {
                    out.push(self);
                }
                lhs.collect_conditions(out);
                rhs.collect_conditions(out);
            }
            Expr::Unary { arg, .. } => arg.collect_conditions(out),
            Expr::Index { index, .. } => index.collect_conditions(out),
            Expr::Mux { cond, then_, else_ } => {
                cond.collect_conditions(out);
                then_.collect_conditions(out);
                else_.collect_conditions(out);
            }
            Expr::Const { .. } | Expr::Var(_) => {}
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const { value, width } => write!(f, "{value}u{width}"),
            Expr::Var(v) => write!(f, "v{}", v.index()),
            Expr::Index { array, index } => write!(f, "v{}[{index}]", array.index()),
            Expr::Unary { op, arg } => match op {
                UnaryOp::Not => write!(f, "~({arg})"),
                UnaryOp::Neg => write!(f, "-({arg})"),
            },
            Expr::Binary { op, lhs, rhs } => {
                let sym = match op {
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::Mul => "*",
                    BinOp::Div => "/",
                    BinOp::Rem => "%",
                    BinOp::And => "&",
                    BinOp::Or => "|",
                    BinOp::Xor => "^",
                    BinOp::Shl => "<<",
                    BinOp::Shr => ">>",
                    BinOp::Eq => "==",
                    BinOp::Ne => "!=",
                    BinOp::Lt => "<",
                    BinOp::Le => "<=",
                    BinOp::Gt => ">",
                    BinOp::Ge => ">=",
                };
                write!(f, "({lhs} {sym} {rhs})")
            }
            Expr::Mux { cond, then_, else_ } => write!(f, "({cond} ? {then_} : {else_})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::VarId;

    #[test]
    fn constant_validation() {
        let c = Expr::constant(255, 8);
        assert_eq!(
            c,
            Expr::Const {
                value: 255,
                width: 8
            }
        );
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_constant_panics() {
        let _ = Expr::constant(256, 8);
    }

    #[test]
    #[should_panic(expected = "width must be")]
    fn zero_width_panics() {
        let _ = Expr::constant(0, 0);
    }

    #[test]
    fn comparison_classification() {
        assert!(BinOp::Lt.is_comparison());
        assert!(BinOp::Eq.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(!BinOp::Shl.is_comparison());
    }

    #[test]
    fn atomic_conditions_are_collected() {
        let v = VarId::from_index(0);
        let w = VarId::from_index(1);
        // (v < w) & (v == 0u8)  has two atomic conditions.
        let e = Expr::and(
            Expr::lt(Expr::var(v), Expr::var(w)),
            Expr::eq(Expr::var(v), Expr::constant(0, 8)),
        );
        assert_eq!(e.atomic_conditions().len(), 2);
        // A plain arithmetic expression has none.
        let a = Expr::add(Expr::var(v), Expr::var(w));
        assert!(a.atomic_conditions().is_empty());
    }

    #[test]
    fn display_is_readable() {
        let v = VarId::from_index(0);
        let e = Expr::add(Expr::var(v), Expr::constant(1, 8));
        assert_eq!(e.to_string(), "(v0 + 1u8)");
    }
}
