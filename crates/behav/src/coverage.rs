//! Coverage bookkeeping for the Laerte++-style metrics.
//!
//! Three of the four metrics live here (statement, branch, condition); the
//! fourth — *bit coverage* over the high-level fault model — requires fault
//! simulation and is computed by the `atpg` crate on top of the
//! interpreter's fault-injection hook.

use crate::expr::Expr;
use crate::func::Function;
use crate::stmt::{CondId, Stmt, StmtId};

/// Mutable coverage state accumulated across interpreter runs.
///
/// Equality is bit-for-bit over every recorded outcome — the
/// interpreter-vs-VM differential oracle relies on it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverageSet {
    statements: Vec<bool>,
    branch_true: Vec<bool>,
    branch_false: Vec<bool>,
    /// Per-condition (branch) list of atomic-condition slots: `(start, len)`
    /// into the flat `atom_true/false` arrays.
    atom_ranges: Vec<(usize, usize)>,
    atom_true: Vec<bool>,
    atom_false: Vec<bool>,
}

impl CoverageSet {
    /// Creates an all-uncovered set sized for `func`.
    pub fn new(func: &Function) -> Self {
        let mut atom_ranges = vec![(0usize, 0usize); func.num_conditions() as usize];
        let mut total_atoms = 0usize;
        func.visit_stmts(&mut |s| {
            let (cond_id, cond): (CondId, &Expr) = match s {
                Stmt::If { cond_id, cond, .. } => (*cond_id, cond),
                Stmt::While { cond_id, cond, .. } => (*cond_id, cond),
                _ => return,
            };
            let n = cond.atomic_conditions().len();
            atom_ranges[cond_id.index()] = (total_atoms, n);
            total_atoms += n;
        });
        CoverageSet {
            statements: vec![false; func.num_statements() as usize],
            branch_true: vec![false; func.num_conditions() as usize],
            branch_false: vec![false; func.num_conditions() as usize],
            atom_ranges,
            atom_true: vec![false; total_atoms],
            atom_false: vec![false; total_atoms],
        }
    }

    /// Marks a statement as executed.
    pub fn hit_statement(&mut self, id: StmtId) {
        self.statements[id.index()] = true;
    }

    /// Marks a branch outcome.
    pub fn hit_branch(&mut self, id: CondId, taken: bool) {
        if taken {
            self.branch_true[id.index()] = true;
        } else {
            self.branch_false[id.index()] = true;
        }
    }

    /// Marks the value of the `atom`-th atomic condition of branch `id`.
    pub fn hit_atom(&mut self, id: CondId, atom: usize, value: bool) {
        let (start, len) = self.atom_ranges[id.index()];
        debug_assert!(atom < len);
        if value {
            self.atom_true[start + atom] = true;
        } else {
            self.atom_false[start + atom] = true;
        }
    }

    /// Merges another set (e.g. coverage of a later test vector) into this
    /// one.
    pub fn merge(&mut self, other: &CoverageSet) {
        for (a, b) in self.statements.iter_mut().zip(&other.statements) {
            *a |= b;
        }
        for (a, b) in self.branch_true.iter_mut().zip(&other.branch_true) {
            *a |= b;
        }
        for (a, b) in self.branch_false.iter_mut().zip(&other.branch_false) {
            *a |= b;
        }
        for (a, b) in self.atom_true.iter_mut().zip(&other.atom_true) {
            *a |= b;
        }
        for (a, b) in self.atom_false.iter_mut().zip(&other.atom_false) {
            *a |= b;
        }
    }

    /// Summarizes into percentages and uncovered-item lists.
    pub fn report(&self) -> CoverageReport {
        let stmt_hit = self.statements.iter().filter(|&&b| b).count();
        let branch_items = self.branch_true.len() * 2;
        let branch_hit = self.branch_true.iter().filter(|&&b| b).count()
            + self.branch_false.iter().filter(|&&b| b).count();
        let atom_items = self.atom_true.len() * 2;
        let atom_hit = self.atom_true.iter().filter(|&&b| b).count()
            + self.atom_false.iter().filter(|&&b| b).count();
        CoverageReport {
            statements_total: self.statements.len(),
            statements_hit: stmt_hit,
            branches_total: branch_items,
            branches_hit: branch_hit,
            conditions_total: atom_items,
            conditions_hit: atom_hit,
            uncovered_statements: self
                .statements
                .iter()
                .enumerate()
                .filter(|(_, &b)| !b)
                .map(|(i, _)| StmtId(i as u32))
                .collect(),
            uncovered_branches: (0..self.branch_true.len())
                .flat_map(|i| {
                    let mut v = Vec::new();
                    if !self.branch_true[i] {
                        v.push((CondId(i as u32), true));
                    }
                    if !self.branch_false[i] {
                        v.push((CondId(i as u32), false));
                    }
                    v
                })
                .collect(),
        }
    }
}

/// Summary of a [`CoverageSet`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverageReport {
    /// Total statements.
    pub statements_total: usize,
    /// Statements executed at least once.
    pub statements_hit: usize,
    /// Total branch outcomes (two per condition).
    pub branches_total: usize,
    /// Branch outcomes observed.
    pub branches_hit: usize,
    /// Total atomic-condition outcomes (two per atom).
    pub conditions_total: usize,
    /// Atomic-condition outcomes observed.
    pub conditions_hit: usize,
    /// Statements never executed.
    pub uncovered_statements: Vec<StmtId>,
    /// Branch outcomes never observed, as `(condition, direction)`.
    pub uncovered_branches: Vec<(CondId, bool)>,
}

impl CoverageReport {
    fn pct(hit: usize, total: usize) -> f64 {
        if total == 0 {
            100.0
        } else {
            100.0 * hit as f64 / total as f64
        }
    }

    /// Statement coverage percentage.
    pub fn statement_pct(&self) -> f64 {
        Self::pct(self.statements_hit, self.statements_total)
    }

    /// Branch coverage percentage.
    pub fn branch_pct(&self) -> f64 {
        Self::pct(self.branches_hit, self.branches_total)
    }

    /// Condition coverage percentage.
    pub fn condition_pct(&self) -> f64 {
        Self::pct(self.conditions_hit, self.conditions_total)
    }

    /// Whether everything is covered.
    pub fn is_complete(&self) -> bool {
        self.statements_hit == self.statements_total
            && self.branches_hit == self.branches_total
            && self.conditions_hit == self.conditions_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::func::FunctionBuilder;

    fn sample() -> Function {
        let mut fb = FunctionBuilder::new("f", 8);
        let a = fb.param("a", 8);
        let x = fb.local("x", 8);
        fb.if_else(
            Expr::lt(Expr::var(a), Expr::constant(5, 8)),
            |t| t.assign(x, Expr::constant(1, 8)),
            |e| e.assign(x, Expr::constant(2, 8)),
        );
        fb.ret(Expr::var(x));
        fb.build()
    }

    #[test]
    fn fresh_set_is_empty() {
        let f = sample();
        let cov = CoverageSet::new(&f);
        let r = cov.report();
        assert_eq!(r.statements_hit, 0);
        assert_eq!(r.statement_pct(), 0.0);
        assert!(!r.is_complete());
        assert_eq!(r.uncovered_statements.len(), r.statements_total);
    }

    #[test]
    fn hits_accumulate_and_merge() {
        let f = sample();
        let mut a = CoverageSet::new(&f);
        a.hit_statement(StmtId(0));
        a.hit_branch(CondId(0), true);
        a.hit_atom(CondId(0), 0, true);
        let mut b = CoverageSet::new(&f);
        b.hit_branch(CondId(0), false);
        b.hit_atom(CondId(0), 0, false);
        a.merge(&b);
        let r = a.report();
        assert_eq!(r.branches_hit, 2);
        assert_eq!(r.conditions_hit, 2);
        assert_eq!(r.branch_pct(), 100.0);
    }

    #[test]
    fn report_percentages() {
        let f = sample();
        let mut cov = CoverageSet::new(&f);
        for i in 0..f.num_statements() {
            cov.hit_statement(StmtId(i));
        }
        let r = cov.report();
        assert_eq!(r.statement_pct(), 100.0);
        assert!(r.uncovered_statements.is_empty());
        assert!(!r.is_complete()); // branches still uncovered
        assert_eq!(r.uncovered_branches.len(), 2);
    }
}
