//! The behavioural interpreter.
//!
//! One engine serves four flow roles:
//!
//! * **functional execution** of reference-model kernels,
//! * **profiling** — operation counts per run feed the `platform` crate's
//!   automatic SW timing annotation (the paper's "annotation instead of
//!   ISS"),
//! * **coverage recording** for the ATPG metrics,
//! * **high-level fault injection** (bit faults on assignment targets, the
//!   Ferrandi/Fummi/Sciuto model of the paper's reference \[6\]) plus
//!   *memory inspection*: reads of never-written array elements are
//!   recorded, which is how Laerte++ exposed the case study's
//!   memory-initialization bugs,
//! * **level-3 instrumentation tracing** — `reconfigure`/resource-call
//!   events are logged for SymbC cross-checking and FPGA cost accounting.

use crate::coverage::CoverageSet;
use crate::expr::{BinOp, Expr, UnaryOp};
use crate::func::{Function, VarId, VarKind};
use crate::stmt::{ConfigId, Stmt};
use std::fmt;

/// Counts of executed operations, grouped the way a processor cycle model
/// prices them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Additions, subtractions, bitwise ops, shifts, comparisons, moves.
    pub alu: u64,
    /// Multiplications.
    pub mul: u64,
    /// Divisions and remainders.
    pub div: u64,
    /// Array loads and stores.
    pub mem: u64,
    /// Conditional branches evaluated.
    pub branch: u64,
    /// Resource / reconfiguration calls.
    pub call: u64,
}

impl OpCounts {
    /// Total operation count.
    pub fn total(&self) -> u64 {
        self.alu + self.mul + self.div + self.mem + self.branch + self.call
    }
}

/// A stuck-at fault on one bit of an assignment target — the high-level
/// fault model behind the bit-coverage metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BitFault {
    /// Variable whose assignments are faulted.
    pub var: VarId,
    /// Bit position (must be below the variable's width).
    pub bit: u32,
    /// Stuck value (`true` = stuck-at-1).
    pub stuck_at: bool,
}

/// An entry in the level-3 instrumentation trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallEvent {
    /// A `reconfigure(config)` was executed.
    Reconfigure(ConfigId),
    /// A hardware resource call was executed.
    Resource {
        /// Resource (FPGA function) name.
        func: String,
        /// Evaluated argument values.
        args: Vec<u64>,
        /// Result delivered by the resource handler.
        result: u64,
    },
}

/// Which way an out-of-bounds array access went.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OobKind {
    /// A read past the end of the array.
    Load,
    /// A write past the end of the array (the value is dropped).
    Store,
}

/// One out-of-bounds array access — the second half of the memory
/// inspection report, alongside uninitialized reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OobAccess {
    /// The array that was accessed.
    pub var: VarId,
    /// The (out-of-range) element index.
    pub index: u64,
    /// Load or store.
    pub kind: OobKind,
}

/// Everything observed during one run.
///
/// Equality is bit-for-bit over every field; the VM in
/// [`crate::bytecode`] must produce outputs equal to the interpreter's.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOutput {
    /// Value of the executed `return`, or `None` if the body fell through.
    pub return_value: Option<u64>,
    /// Coverage recorded during this run.
    pub coverage: CoverageSet,
    /// Operation profile.
    pub ops: OpCounts,
    /// Statements executed (dynamic count).
    pub steps: u64,
    /// Array reads that happened before any write to that element:
    /// `(array, element index)` — the memory-inspection report.
    pub uninitialized_reads: Vec<(VarId, u64)>,
    /// Out-of-bounds array accesses in execution order. Loads return the
    /// garbage pattern (so the bug propagates); stores are dropped.
    pub out_of_bounds: Vec<OobAccess>,
    /// Reconfiguration / resource-call trace in execution order.
    pub call_trace: Vec<CallEvent>,
}

/// Interpreter failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The dynamic step limit was exceeded (runaway loop).
    StepLimit {
        /// The configured limit.
        limit: u64,
    },
    /// Wrong number of inputs supplied.
    ArityMismatch {
        /// Parameters the function declares.
        expected: usize,
        /// Inputs supplied.
        got: usize,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::StepLimit { limit } => write!(f, "step limit of {limit} exceeded"),
            ExecError::ArityMismatch { expected, got } => {
                write!(f, "expected {expected} inputs, got {got}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// Handler invoked for [`Stmt::ResourceCall`]; maps `(name, args)` to the
/// result value.
pub type ResourceHandler<'h> = dyn FnMut(&str, &[u64]) -> u64 + 'h;

/// Executes a [`Function`] with configurable instrumentation.
pub struct Interpreter<'f, 'h> {
    func: &'f Function,
    step_limit: u64,
    fault: Option<BitFault>,
    resource_handler: Option<Box<ResourceHandler<'h>>>,
    /// Value produced by reads of uninitialized array elements. A
    /// recognizable garbage pattern (masked to width) rather than zero, so
    /// initialization bugs actually propagate to outputs.
    garbage: u64,
}

impl<'f> fmt::Debug for Interpreter<'f, '_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Interpreter")
            .field("func", &self.func.name())
            .field("step_limit", &self.step_limit)
            .field("fault", &self.fault)
            .finish_non_exhaustive()
    }
}

impl<'f, 'h> Interpreter<'f, 'h> {
    /// Creates an interpreter for `func` with default settings.
    pub fn new(func: &'f Function) -> Self {
        Interpreter {
            func,
            step_limit: 1_000_000,
            fault: None,
            resource_handler: None,
            garbage: 0xDEAD_BEEF_CAFE_F00D,
        }
    }

    /// Sets the dynamic step limit.
    pub fn with_step_limit(mut self, limit: u64) -> Self {
        self.step_limit = limit;
        self
    }

    /// Injects a bit fault for this interpreter's runs.
    pub fn with_fault(mut self, fault: BitFault) -> Self {
        self.fault = Some(fault);
        self
    }

    /// Installs the handler for FPGA resource calls.
    pub fn with_resource_handler(mut self, h: Box<ResourceHandler<'h>>) -> Self {
        self.resource_handler = Some(h);
        self
    }

    /// Overrides the garbage value returned by uninitialized reads.
    pub fn with_garbage(mut self, garbage: u64) -> Self {
        self.garbage = garbage;
        self
    }

    /// Runs the function on `inputs` (one per parameter).
    ///
    /// # Errors
    ///
    /// [`ExecError::ArityMismatch`] for a wrong input count and
    /// [`ExecError::StepLimit`] when execution exceeds the step limit.
    pub fn run(&mut self, inputs: &[u64]) -> Result<RunOutput, ExecError> {
        if inputs.len() != self.func.num_params() {
            return Err(ExecError::ArityMismatch {
                expected: self.func.num_params(),
                got: inputs.len(),
            });
        }
        let mut state = State::new(self.func, inputs, self.garbage);
        let mut out = RunOutput {
            return_value: None,
            coverage: CoverageSet::new(self.func),
            ops: OpCounts::default(),
            steps: 0,
            uninitialized_reads: Vec::new(),
            out_of_bounds: Vec::new(),
            call_trace: Vec::new(),
        };
        let flow = self.exec_block(self.func.body(), &mut state, &mut out)?;
        if let Flow::Return(v) = flow {
            out.return_value = v;
        }
        out.uninitialized_reads = state.uninit_reads;
        out.out_of_bounds = state.oob;
        Ok(out)
    }

    fn exec_block(
        &mut self,
        stmts: &[Stmt],
        state: &mut State,
        out: &mut RunOutput,
    ) -> Result<Flow, ExecError> {
        for s in stmts {
            match self.exec_stmt(s, state, out)? {
                Flow::Continue => {}
                ret @ Flow::Return(_) => return Ok(ret),
            }
        }
        Ok(Flow::Continue)
    }

    fn exec_stmt(
        &mut self,
        s: &Stmt,
        state: &mut State,
        out: &mut RunOutput,
    ) -> Result<Flow, ExecError> {
        out.steps += 1;
        if out.steps > self.step_limit {
            return Err(ExecError::StepLimit {
                limit: self.step_limit,
            });
        }
        out.coverage.hit_statement(s.id());
        match s {
            Stmt::Assign { target, value, .. } => {
                let mut v = self.eval(value, state, out);
                v = self.apply_fault(*target, v, state);
                state.write_scalar(*target, v);
                out.ops.alu += 1;
                Ok(Flow::Continue)
            }
            Stmt::Store {
                array,
                index,
                value,
                ..
            } => {
                let idx = self.eval(index, state, out);
                let mut v = self.eval(value, state, out);
                v = self.apply_fault(*array, v, state);
                state.store(*array, idx, v);
                out.ops.mem += 1;
                Ok(Flow::Continue)
            }
            Stmt::If {
                cond_id,
                cond,
                then_,
                else_,
                ..
            } => {
                let taken = self.eval_condition(*cond_id, cond, state, out);
                if taken {
                    self.exec_block(then_, state, out)
                } else {
                    self.exec_block(else_, state, out)
                }
            }
            Stmt::While {
                cond_id,
                cond,
                body,
                ..
            } => {
                loop {
                    let taken = self.eval_condition(*cond_id, cond, state, out);
                    if !taken {
                        break;
                    }
                    match self.exec_block(body, state, out)? {
                        Flow::Continue => {}
                        ret @ Flow::Return(_) => return Ok(ret),
                    }
                    out.steps += 1;
                    if out.steps > self.step_limit {
                        return Err(ExecError::StepLimit {
                            limit: self.step_limit,
                        });
                    }
                }
                Ok(Flow::Continue)
            }
            Stmt::Return { value, .. } => {
                let v = value.as_ref().map(|e| self.eval(e, state, out));
                Ok(Flow::Return(v))
            }
            Stmt::Reconfigure { config, .. } => {
                out.ops.call += 1;
                out.call_trace.push(CallEvent::Reconfigure(*config));
                Ok(Flow::Continue)
            }
            Stmt::ResourceCall {
                func, args, target, ..
            } => {
                let arg_vals: Vec<u64> = args.iter().map(|a| self.eval(a, state, out)).collect();
                out.ops.call += 1;
                let result = match self.resource_handler.as_mut() {
                    Some(h) => h(func, &arg_vals),
                    None => 0,
                };
                out.call_trace.push(CallEvent::Resource {
                    func: func.clone(),
                    args: arg_vals,
                    result,
                });
                if let Some(t) = target {
                    let masked = result & mask(self.func.var(*t).width);
                    let faulted = self.apply_fault(*t, masked, state);
                    state.write_scalar(*t, faulted);
                }
                Ok(Flow::Continue)
            }
        }
    }

    fn apply_fault(&self, target: VarId, value: u64, state: &State) -> u64 {
        match self.fault {
            Some(f) if f.var == target => {
                let width = state.width(target);
                if f.bit >= width {
                    return value;
                }
                if f.stuck_at {
                    value | (1u64 << f.bit)
                } else {
                    value & !(1u64 << f.bit)
                }
            }
            _ => value,
        }
    }

    /// Evaluates a branch condition exactly once, recording the value of
    /// each atomic comparison for condition coverage *during* that single
    /// evaluation. Atom indices follow the same pre-order numbering as
    /// [`Expr::atomic_conditions`]; atoms inside the untaken arm of a mux
    /// are skipped (never executed, so never recorded).
    fn eval_condition(
        &mut self,
        cond_id: crate::stmt::CondId,
        cond: &Expr,
        state: &mut State,
        out: &mut RunOutput,
    ) -> bool {
        let mut next_atom = 0usize;
        let taken = self.eval_in(cond, Some(cond_id), &mut next_atom, state, out) != 0;
        out.ops.branch += 1;
        out.coverage.hit_branch(cond_id, taken);
        taken
    }

    fn eval(&mut self, e: &Expr, state: &mut State, out: &mut RunOutput) -> u64 {
        self.eval_in(e, None, &mut 0, state, out)
    }

    /// Expression evaluation, optionally inside a branch condition
    /// (`cond_ctx`), in which case comparison nodes claim atom indices in
    /// pre-order and record their outcome as they produce it.
    fn eval_in(
        &mut self,
        e: &Expr,
        cond_ctx: Option<crate::stmt::CondId>,
        next_atom: &mut usize,
        state: &mut State,
        out: &mut RunOutput,
    ) -> u64 {
        match e {
            Expr::Const { value, .. } => *value,
            Expr::Var(v) => state.read_scalar(*v),
            Expr::Index { array, index } => {
                let idx = self.eval_in(index, cond_ctx, next_atom, state, out);
                out.ops.mem += 1;
                state.load(*array, idx)
            }
            Expr::Unary { op, arg } => {
                let a = self.eval_in(arg, cond_ctx, next_atom, state, out);
                let w = self.expr_width(arg, state);
                out.ops.alu += 1;
                match op {
                    UnaryOp::Not => !a & mask(w),
                    UnaryOp::Neg => a.wrapping_neg() & mask(w),
                }
            }
            Expr::Binary { op, lhs, rhs } => {
                // Claim the atom slot before descending: atomic_conditions()
                // pushes a comparison node before visiting its operands.
                let my_atom = match cond_ctx {
                    Some(_) if op.is_comparison() => {
                        let i = *next_atom;
                        *next_atom += 1;
                        Some(i)
                    }
                    _ => None,
                };
                let a = self.eval_in(lhs, cond_ctx, next_atom, state, out);
                let b = self.eval_in(rhs, cond_ctx, next_atom, state, out);
                let w = self.expr_width(lhs, state).max(self.expr_width(rhs, state));
                match op {
                    BinOp::Mul => out.ops.mul += 1,
                    BinOp::Div | BinOp::Rem => out.ops.div += 1,
                    _ => out.ops.alu += 1,
                }
                let v = apply_binop(*op, a, b, w);
                if let (Some(id), Some(atom)) = (cond_ctx, my_atom) {
                    out.coverage.hit_atom(id, atom, v != 0);
                }
                v
            }
            Expr::Mux { cond, then_, else_ } => {
                let c = self.eval_in(cond, cond_ctx, next_atom, state, out);
                out.ops.alu += 1;
                if c != 0 {
                    let v = self.eval_in(then_, cond_ctx, next_atom, state, out);
                    if cond_ctx.is_some() {
                        *next_atom += count_atoms(else_);
                    }
                    v
                } else {
                    if cond_ctx.is_some() {
                        *next_atom += count_atoms(then_);
                    }
                    self.eval_in(else_, cond_ctx, next_atom, state, out)
                }
            }
        }
    }

    /// Static width of an expression (comparisons are 1 bit; otherwise the
    /// max operand width, the convention the synthesis path also uses).
    fn expr_width(&self, e: &Expr, state: &State) -> u32 {
        match e {
            Expr::Const { width, .. } => *width,
            Expr::Var(v) => state.width(*v),
            Expr::Index { array, .. } => state.width(*array),
            Expr::Unary { arg, .. } => self.expr_width(arg, state),
            Expr::Binary { op, lhs, rhs } => {
                if op.is_comparison() {
                    1
                } else {
                    self.expr_width(lhs, state).max(self.expr_width(rhs, state))
                }
            }
            Expr::Mux { then_, else_, .. } => self
                .expr_width(then_, state)
                .max(self.expr_width(else_, state)),
        }
    }
}

/// Pure binary-operator semantics at a given width; shared with the RTL
/// synthesis equivalence tests.
pub fn apply_binop(op: BinOp, a: u64, b: u64, width: u32) -> u64 {
    let m = mask(width);
    let (a, b) = (a & m, b & m);
    match op {
        BinOp::Add => a.wrapping_add(b) & m,
        BinOp::Sub => a.wrapping_sub(b) & m,
        BinOp::Mul => a.wrapping_mul(b) & m,
        // Division by zero yields all-ones, as in many HW cores.
        BinOp::Div => a.checked_div(b).map_or(m, |q| q & m),
        BinOp::Rem => {
            if b == 0 {
                a
            } else {
                (a % b) & m
            }
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => {
            let sh = (b % width as u64) as u32;
            (a << sh) & m
        }
        BinOp::Shr => {
            let sh = (b % width as u64) as u32;
            a >> sh
        }
        BinOp::Eq => (a == b) as u64,
        BinOp::Ne => (a != b) as u64,
        BinOp::Lt => (a < b) as u64,
        BinOp::Le => (a <= b) as u64,
        BinOp::Gt => (a > b) as u64,
        BinOp::Ge => (a >= b) as u64,
    }
}

/// Number of atomic conditions (comparison nodes) in an expression —
/// used to skip the atom slots of an unexecuted mux arm.
fn count_atoms(e: &Expr) -> usize {
    match e {
        Expr::Const { .. } | Expr::Var(_) => 0,
        Expr::Index { index, .. } => count_atoms(index),
        Expr::Unary { arg, .. } => count_atoms(arg),
        Expr::Binary { op, lhs, rhs } => {
            usize::from(op.is_comparison()) + count_atoms(lhs) + count_atoms(rhs)
        }
        Expr::Mux { cond, then_, else_ } => {
            count_atoms(cond) + count_atoms(then_) + count_atoms(else_)
        }
    }
}

/// Bit mask for a width.
pub fn mask(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

enum Flow {
    Continue,
    Return(Option<u64>),
}

struct State {
    scalars: Vec<u64>,
    widths: Vec<u32>,
    arrays: Vec<Option<ArrayState>>,
    garbage: u64,
    uninit_reads: Vec<(VarId, u64)>,
    oob: Vec<OobAccess>,
}

struct ArrayState {
    data: Vec<u64>,
    written: Vec<bool>,
}

impl State {
    fn new(func: &Function, inputs: &[u64], garbage: u64) -> State {
        let mut scalars = vec![0u64; func.vars().len()];
        let mut widths = vec![0u32; func.vars().len()];
        let mut arrays: Vec<Option<ArrayState>> = Vec::with_capacity(func.vars().len());
        // Params bind by *ordinal* (the i-th Param declaration gets
        // inputs[i]), not by variable index: a rebuilt function may declare
        // a parameter after a local.
        let mut ordinal = 0usize;
        for (i, decl) in func.vars().iter().enumerate() {
            widths[i] = decl.width;
            match decl.kind {
                VarKind::Param => {
                    scalars[i] = inputs[ordinal] & mask(decl.width);
                    ordinal += 1;
                    arrays.push(None);
                }
                VarKind::Local => arrays.push(None),
                VarKind::Array { len } => arrays.push(Some(ArrayState {
                    data: vec![0; len as usize],
                    written: vec![false; len as usize],
                })),
            }
        }
        State {
            scalars,
            widths,
            arrays,
            garbage,
            uninit_reads: Vec::new(),
            oob: Vec::new(),
        }
    }

    fn width(&self, v: VarId) -> u32 {
        self.widths[v.index()]
    }

    fn read_scalar(&self, v: VarId) -> u64 {
        self.scalars[v.index()]
    }

    fn write_scalar(&mut self, v: VarId, value: u64) {
        let w = self.widths[v.index()];
        self.scalars[v.index()] = value & mask(w);
    }

    fn load(&mut self, array: VarId, index: u64) -> u64 {
        let w = self.widths[array.index()];
        let garbage = self.garbage;
        match self.arrays[array.index()].as_mut() {
            Some(a) => {
                let i = index as usize;
                if i < a.data.len() {
                    if !a.written[i] {
                        self.uninit_reads.push((array, index));
                        return garbage & mask(w);
                    }
                    a.data[i]
                } else {
                    // Out of bounds: record it and return the garbage
                    // pattern so the bug propagates instead of reading as a
                    // quiet zero.
                    self.oob.push(OobAccess {
                        var: array,
                        index,
                        kind: OobKind::Load,
                    });
                    garbage & mask(w)
                }
            }
            None => 0,
        }
    }

    fn store(&mut self, array: VarId, index: u64, value: u64) {
        let w = self.widths[array.index()];
        if let Some(a) = self.arrays[array.index()].as_mut() {
            let i = index as usize;
            if i < a.data.len() {
                a.data[i] = value & mask(w);
                a.written[i] = true;
            } else {
                // The write is dropped, but the access is reported.
                self.oob.push(OobAccess {
                    var: array,
                    index,
                    kind: OobKind::Store,
                });
            }
        }
    }
}

/// Enumerates every bit fault on assignment targets of `func` — the fault
/// list of the bit-coverage metric.
pub fn enumerate_bit_faults(func: &Function) -> Vec<BitFault> {
    let mut targets = std::collections::BTreeSet::new();
    func.visit_stmts(&mut |s| match s {
        Stmt::Assign { target, .. } => {
            targets.insert(*target);
        }
        Stmt::Store { array, .. } => {
            targets.insert(*array);
        }
        Stmt::ResourceCall {
            target: Some(t), ..
        } => {
            targets.insert(*t);
        }
        _ => {}
    });
    let mut faults = Vec::new();
    for var in targets {
        let width = func.var(var).width;
        for bit in 0..width {
            for stuck_at in [false, true] {
                faults.push(BitFault { var, bit, stuck_at });
            }
        }
    }
    faults
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::FunctionBuilder;

    /// gcd(a, b) by repeated subtraction — loops, branches, comparisons.
    fn gcd_func() -> Function {
        let mut fb = FunctionBuilder::new("gcd", 16);
        let a = fb.param("a", 16);
        let b = fb.param("b", 16);
        fb.while_(Expr::ne(Expr::var(b), Expr::constant(0, 16)), |blk| {
            let t = blk.local("t", 16);
            blk.assign(t, Expr::rem(Expr::var(a), Expr::var(b)));
            blk.assign(a, Expr::var(b));
            blk.assign(b, Expr::var(t));
        });
        fb.ret(Expr::var(a));
        fb.build()
    }

    #[test]
    fn gcd_computes_correctly() {
        let f = gcd_func();
        let mut interp = Interpreter::new(&f);
        assert_eq!(interp.run(&[48, 18]).unwrap().return_value, Some(6));
        assert_eq!(interp.run(&[7, 13]).unwrap().return_value, Some(1));
        assert_eq!(interp.run(&[0, 5]).unwrap().return_value, Some(5));
    }

    #[test]
    fn coverage_is_recorded() {
        let f = gcd_func();
        let out = Interpreter::new(&f).run(&[48, 18]).unwrap();
        let r = out.coverage.report();
        assert_eq!(r.statement_pct(), 100.0);
        assert_eq!(r.branch_pct(), 100.0); // loop taken and exited
        assert_eq!(r.condition_pct(), 100.0);
    }

    #[test]
    fn partial_coverage_shows_uncovered_branch() {
        let f = gcd_func();
        // b = 0: loop never taken → "true" branch uncovered.
        let out = Interpreter::new(&f).run(&[5, 0]).unwrap();
        let r = out.coverage.report();
        assert!(r.branch_pct() < 100.0);
        assert_eq!(r.uncovered_branches.len(), 1);
        assert!(r.uncovered_branches[0].1); // the `true` direction
    }

    #[test]
    fn op_counts_accumulate() {
        let f = gcd_func();
        let out = Interpreter::new(&f).run(&[48, 18]).unwrap();
        assert!(out.ops.div > 0);
        assert!(out.ops.alu > 0);
        assert!(out.ops.branch > 0);
        assert_eq!(out.ops.call, 0);
        assert!(out.ops.total() > 5);
    }

    #[test]
    fn step_limit_stops_infinite_loop() {
        let mut fb = FunctionBuilder::new("inf", 8);
        fb.while_(Expr::constant(1, 1), |_| {});
        fb.ret(Expr::constant(0, 8));
        let f = fb.build();
        let err = Interpreter::new(&f)
            .with_step_limit(100)
            .run(&[])
            .unwrap_err();
        assert_eq!(err, ExecError::StepLimit { limit: 100 });
    }

    #[test]
    fn arity_is_checked() {
        let f = gcd_func();
        let err = Interpreter::new(&f).run(&[1]).unwrap_err();
        assert_eq!(
            err,
            ExecError::ArityMismatch {
                expected: 2,
                got: 1
            }
        );
    }

    #[test]
    fn values_are_masked_to_width() {
        let mut fb = FunctionBuilder::new("wrap", 8);
        let a = fb.param("a", 8);
        let x = fb.local("x", 8);
        fb.assign(x, Expr::add(Expr::var(a), Expr::constant(200, 8)));
        fb.ret(Expr::var(x));
        let f = fb.build();
        let out = Interpreter::new(&f).run(&[100]).unwrap();
        assert_eq!(out.return_value, Some((100u64 + 200) & 0xFF));
    }

    #[test]
    fn uninitialized_array_reads_are_reported() {
        let mut fb = FunctionBuilder::new("buggy", 16);
        let arr = fb.array("buf", 16, 4);
        let x = fb.local("x", 16);
        // Write only element 0, then read element 2 (a seeded init bug).
        fb.store(arr, Expr::constant(0, 8), Expr::constant(42, 16));
        fb.assign(x, Expr::index(arr, Expr::constant(2, 8)));
        fb.ret(Expr::var(x));
        let f = fb.build();
        let out = Interpreter::new(&f).run(&[]).unwrap();
        assert_eq!(out.uninitialized_reads, vec![(arr, 2)]);
        // Garbage propagates to the output (bug is observable).
        assert_ne!(out.return_value, Some(0));
    }

    #[test]
    fn initialized_array_reads_are_clean() {
        let mut fb = FunctionBuilder::new("ok", 16);
        let arr = fb.array("buf", 16, 4);
        let i = fb.local("i", 8);
        fb.while_(Expr::lt(Expr::var(i), Expr::constant(4, 8)), |b| {
            b.store(arr, Expr::var(i), Expr::constant(7, 16));
            b.assign(i, Expr::add(Expr::var(i), Expr::constant(1, 8)));
        });
        let x = fb.local("x", 16);
        fb.assign(x, Expr::index(arr, Expr::constant(3, 8)));
        fb.ret(Expr::var(x));
        let f = fb.build();
        let out = Interpreter::new(&f).run(&[]).unwrap();
        assert!(out.uninitialized_reads.is_empty());
        assert_eq!(out.return_value, Some(7));
    }

    #[test]
    fn bit_fault_changes_output() {
        let mut fb = FunctionBuilder::new("id", 8);
        let a = fb.param("a", 8);
        let x = fb.local("x", 8);
        fb.assign(x, Expr::var(a));
        fb.ret(Expr::var(x));
        let f = fb.build();
        let x_id = f.var_by_name("x").unwrap();
        let good = Interpreter::new(&f).run(&[0]).unwrap();
        let bad = Interpreter::new(&f)
            .with_fault(BitFault {
                var: x_id,
                bit: 3,
                stuck_at: true,
            })
            .run(&[0])
            .unwrap();
        assert_eq!(good.return_value, Some(0));
        assert_eq!(bad.return_value, Some(8));
    }

    #[test]
    fn fault_enumeration_covers_targets() {
        let f = gcd_func();
        let faults = enumerate_bit_faults(&f);
        // Targets: a, b, t — each 16 bits × 2 polarities.
        assert_eq!(faults.len(), 3 * 16 * 2);
    }

    #[test]
    fn resource_calls_are_traced_and_handled() {
        let mut fb = FunctionBuilder::new("sw", 16);
        let x = fb.local("x", 16);
        fb.reconfigure(ConfigId(1));
        fb.resource_call("root", vec![Expr::constant(49, 16)], Some(x));
        fb.ret(Expr::var(x));
        let f = fb.build();
        let mut interp =
            Interpreter::new(&f).with_resource_handler(Box::new(|name: &str, args: &[u64]| {
                assert_eq!(name, "root");
                (args[0] as f64).sqrt() as u64
            }));
        let out = interp.run(&[]).unwrap();
        assert_eq!(out.return_value, Some(7));
        assert_eq!(out.call_trace.len(), 2);
        assert_eq!(out.call_trace[0], CallEvent::Reconfigure(ConfigId(1)));
        match &out.call_trace[1] {
            CallEvent::Resource { func, args, result } => {
                assert_eq!(func, "root");
                assert_eq!(args, &vec![49]);
                assert_eq!(*result, 7);
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn mux_expression_selects() {
        let mut fb = FunctionBuilder::new("m", 8);
        let a = fb.param("a", 8);
        let out_v = fb.local("o", 8);
        fb.assign(
            out_v,
            Expr::mux(
                Expr::ge(Expr::var(a), Expr::constant(10, 8)),
                Expr::constant(1, 8),
                Expr::constant(0, 8),
            ),
        );
        fb.ret(Expr::var(out_v));
        let f = fb.build();
        assert_eq!(
            Interpreter::new(&f).run(&[15]).unwrap().return_value,
            Some(1)
        );
        assert_eq!(
            Interpreter::new(&f).run(&[5]).unwrap().return_value,
            Some(0)
        );
    }

    /// Regression for the condition double-evaluation bug: atoms used to be
    /// evaluated once for coverage and then the whole condition was
    /// evaluated again, double-counting every op in the condition and
    /// reporting an uninitialized read inside it twice.
    #[test]
    fn condition_atoms_are_evaluated_exactly_once() {
        let mut fb = FunctionBuilder::new("cond", 8);
        let arr = fb.array("buf", 8, 4);
        let x = fb.local("x", 8);
        // `if buf[2] < 5` over a never-written element: exactly one load,
        // one comparison, one branch — and one uninit-read report.
        fb.if_else(
            Expr::lt(Expr::index(arr, Expr::constant(2, 8)), Expr::constant(5, 8)),
            |t| t.assign(x, Expr::constant(1, 8)),
            |e| e.assign(x, Expr::constant(2, 8)),
        );
        fb.ret(Expr::var(x));
        let f = fb.build();
        let out = Interpreter::new(&f).run(&[]).unwrap();
        assert_eq!(
            out.ops,
            OpCounts {
                alu: 2, // the comparison + the taken arm's assignment
                mul: 0,
                div: 0,
                mem: 1, // exactly one array load
                branch: 1,
                call: 0,
            }
        );
        assert_eq!(out.uninitialized_reads, vec![(arr, 2)]);
        // Condition coverage is still recorded from the single evaluation.
        let r = out.coverage.report();
        assert_eq!(r.conditions_total, 2);
        assert_eq!(r.conditions_hit, 1);
    }

    /// Atoms in the untaken arm of a mux inside a condition keep their
    /// pre-order slots but are not recorded (they never execute).
    #[test]
    fn mux_arm_atoms_keep_their_slots() {
        let mut fb = FunctionBuilder::new("muxcond", 8);
        let a = fb.param("a", 8);
        let x = fb.local("x", 8);
        // if (a < 3 ? (a == 0) : (a > 7)) { ... }: atoms in pre-order are
        // [a<3, a==0, a>7]. With a = 9 only `a<3` and `a>7` execute.
        fb.if_(
            Expr::mux(
                Expr::lt(Expr::var(a), Expr::constant(3, 8)),
                Expr::eq(Expr::var(a), Expr::constant(0, 8)),
                Expr::gt(Expr::var(a), Expr::constant(7, 8)),
            ),
            |t| t.assign(x, Expr::constant(1, 8)),
        );
        fb.ret(Expr::var(x));
        let f = fb.build();
        let out = Interpreter::new(&f).run(&[9]).unwrap();
        let r = out.coverage.report();
        assert_eq!(r.conditions_total, 6); // 3 atoms × 2 outcomes
        assert_eq!(r.conditions_hit, 2); // (a<3)=false, (a>7)=true
                                         // mux-cond comparison + mux select + taken-arm comparison, and the
                                         // branch is taken so its assignment adds one more.
        assert_eq!(out.ops.alu, 4);
        assert_eq!(out.ops.branch, 1);
    }

    /// Regression for silent out-of-bounds accesses: loads past the end now
    /// return the garbage pattern and both loads and stores are reported.
    #[test]
    fn out_of_bounds_accesses_are_reported() {
        let mut fb = FunctionBuilder::new("oob", 16);
        let arr = fb.array("buf", 16, 4);
        let x = fb.local("x", 16);
        fb.store(arr, Expr::constant(9, 8), Expr::constant(1, 16)); // dropped
        fb.assign(x, Expr::index(arr, Expr::constant(7, 8))); // garbage
        fb.ret(Expr::var(x));
        let f = fb.build();
        let out = Interpreter::new(&f).run(&[]).unwrap();
        assert_eq!(
            out.out_of_bounds,
            vec![
                OobAccess {
                    var: arr,
                    index: 9,
                    kind: OobKind::Store,
                },
                OobAccess {
                    var: arr,
                    index: 7,
                    kind: OobKind::Load,
                },
            ]
        );
        // The OOB load propagates garbage, not zero.
        assert_eq!(out.return_value, Some(0xDEAD_BEEF_CAFE_F00D & 0xFFFF));
        assert!(out.uninitialized_reads.is_empty());
    }

    /// Regression for positional param binding: a rebuilt function that
    /// declares a parameter *after* a local must still bind inputs by
    /// parameter ordinal.
    #[test]
    fn rebuilt_function_binds_params_by_ordinal() {
        use crate::func::{VarDecl, VarKind};
        // var 0 is a local, var 1 is the (only) parameter.
        let vars = vec![
            VarDecl {
                name: "tmp".into(),
                width: 8,
                kind: VarKind::Local,
            },
            VarDecl {
                name: "a".into(),
                width: 8,
                kind: VarKind::Param,
            },
        ];
        let tmp = VarId::from_index(0);
        let a = VarId::from_index(1);
        let body = vec![
            Stmt::Assign {
                id: crate::stmt::StmtId::placeholder(),
                target: tmp,
                value: Expr::add(Expr::var(a), Expr::constant(1, 8)),
            },
            Stmt::Return {
                id: crate::stmt::StmtId::placeholder(),
                value: Some(Expr::var(tmp)),
            },
        ];
        let f = Function::rebuild("rebuilt".to_owned(), vars, 1, 8, body);
        assert_eq!(f.params(), vec![a]);
        let out = Interpreter::new(&f).run(&[41]).unwrap();
        assert_eq!(out.return_value, Some(42));
    }

    #[test]
    fn binop_semantics_edge_cases() {
        assert_eq!(apply_binop(BinOp::Div, 5, 0, 8), 0xFF);
        assert_eq!(apply_binop(BinOp::Rem, 5, 0, 8), 5);
        assert_eq!(apply_binop(BinOp::Shl, 1, 8, 8), 1); // shift mod width
        assert_eq!(apply_binop(BinOp::Sub, 0, 1, 8), 0xFF);
        assert_eq!(apply_binop(BinOp::Add, 0xFF, 1, 8), 0);
        assert_eq!(apply_binop(BinOp::Lt, 3, 200, 8), 1);
        assert_eq!(mask(64), u64::MAX);
        assert_eq!(mask(1), 1);
    }
}
