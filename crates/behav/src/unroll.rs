//! Bounded loop unrolling.
//!
//! Level 4 of the flow synthesizes behavioural kernels to RTL. The
//! synthesis path (`hdl::synth`) accepts only loop-free bodies, so loops
//! are first unrolled to a bound: `while c { B }` becomes `k` nested
//! `if c { B … }` copies. The transform is semantics-preserving for every
//! execution whose loop iterates at most `k` times; the caller picks `k`
//! from the loop's static trip bound (e.g. the bit width for the
//! non-restoring square root used by the ROOT module).

use crate::func::Function;
use crate::stmt::{CondId, Stmt, StmtId};

/// Unrolls every loop in `func` `bound` times, producing a loop-free
/// function with freshly numbered statements.
///
/// Executions that would iterate any loop more than `bound` times silently
/// behave as if the loop exited early — callers must choose `bound` at
/// least as large as the loop's trip count (checked in practice by the
/// equivalence tests between the unrolled/synthesized artifact and the
/// original).
pub fn unroll(func: &Function, bound: u32) -> Function {
    let body = unroll_block(func.body(), bound);
    Function::from_parts(
        format!("{}_unrolled", func.name()),
        func.vars().to_vec(),
        func.num_params(),
        func.ret_width(),
        body,
    )
}

fn unroll_block(stmts: &[Stmt], bound: u32) -> Vec<Stmt> {
    stmts.iter().map(|s| unroll_stmt(s, bound)).collect()
}

fn unroll_stmt(s: &Stmt, bound: u32) -> Stmt {
    match s {
        Stmt::While { cond, body, .. } => {
            // Innermost copy first: if c { B }.
            let unrolled_body = unroll_block(body, bound);
            let mut acc: Vec<Stmt> = Vec::new();
            for _ in 0..bound {
                let mut then_ = unrolled_body.clone();
                then_.extend(acc);
                acc = vec![Stmt::If {
                    id: StmtId(0),
                    cond_id: CondId(0),
                    cond: cond.clone(),
                    then_,
                    else_: Vec::new(),
                }];
            }
            match acc.into_iter().next() {
                Some(stmt) => stmt,
                // bound == 0: the loop is removed entirely.
                None => Stmt::If {
                    id: StmtId(0),
                    cond_id: CondId(0),
                    cond: cond.clone(),
                    then_: Vec::new(),
                    else_: Vec::new(),
                },
            }
        }
        Stmt::If {
            cond, then_, else_, ..
        } => Stmt::If {
            id: StmtId(0),
            cond_id: CondId(0),
            cond: cond.clone(),
            then_: unroll_block(then_, bound),
            else_: unroll_block(else_, bound),
        },
        other => other.clone(),
    }
}

/// Returns `true` when `func` contains no loops (i.e. is synthesizable).
pub fn is_loop_free(func: &Function) -> bool {
    let mut found = false;
    func.visit_stmts(&mut |s| {
        if matches!(s, Stmt::While { .. }) {
            found = true;
        }
    });
    !found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::func::FunctionBuilder;
    use crate::interp::Interpreter;

    /// sum(n) = 0 + 1 + … + (n-1), loop trip count = n ≤ 10.
    fn sum_func() -> Function {
        let mut fb = FunctionBuilder::new("sum", 16);
        let n = fb.param("n", 16);
        let i = fb.local("i", 16);
        let acc = fb.local("acc", 16);
        fb.while_(Expr::lt(Expr::var(i), Expr::var(n)), |b| {
            b.assign(acc, Expr::add(Expr::var(acc), Expr::var(i)));
            b.assign(i, Expr::add(Expr::var(i), Expr::constant(1, 16)));
        });
        fb.ret(Expr::var(acc));
        fb.build()
    }

    #[test]
    fn unrolled_function_is_loop_free() {
        let f = sum_func();
        assert!(!is_loop_free(&f));
        let u = unroll(&f, 10);
        assert!(is_loop_free(&u));
        assert_eq!(u.name(), "sum_unrolled");
    }

    #[test]
    fn unrolled_matches_original_within_bound() {
        let f = sum_func();
        let u = unroll(&f, 10);
        for n in 0..=10u64 {
            let a = Interpreter::new(&f).run(&[n]).unwrap().return_value;
            let b = Interpreter::new(&u).run(&[n]).unwrap().return_value;
            assert_eq!(a, b, "n={n}");
        }
    }

    #[test]
    fn beyond_bound_the_loop_exits_early() {
        let f = sum_func();
        let u = unroll(&f, 3);
        // n = 5 iterates 5 > 3 times: unrolled version sums only 0+1+2.
        let b = Interpreter::new(&u).run(&[5]).unwrap().return_value;
        assert_eq!(b, Some(3));
    }

    #[test]
    fn zero_bound_removes_loop_body() {
        let f = sum_func();
        let u = unroll(&f, 0);
        assert!(is_loop_free(&u));
        let b = Interpreter::new(&u).run(&[5]).unwrap().return_value;
        assert_eq!(b, Some(0));
    }

    #[test]
    fn nested_loops_unroll() {
        let mut fb = FunctionBuilder::new("nested", 16);
        let i = fb.local("i", 16);
        let acc = fb.local("acc", 16);
        fb.while_(Expr::lt(Expr::var(i), Expr::constant(3, 16)), |outer| {
            let j = outer.local("j", 16);
            outer.assign(j, Expr::constant(0, 16));
            outer.while_(Expr::lt(Expr::var(j), Expr::constant(2, 16)), |inner| {
                inner.assign(acc, Expr::add(Expr::var(acc), Expr::constant(1, 16)));
                inner.assign(j, Expr::add(Expr::var(j), Expr::constant(1, 16)));
            });
            outer.assign(i, Expr::add(Expr::var(i), Expr::constant(1, 16)));
        });
        fb.ret(Expr::var(acc));
        let f = fb.build();
        let u = unroll(&f, 4);
        assert!(is_loop_free(&u));
        assert_eq!(Interpreter::new(&u).run(&[]).unwrap().return_value, Some(6));
    }

    #[test]
    fn renumbering_is_dense() {
        let f = sum_func();
        let u = unroll(&f, 4);
        let mut ids = Vec::new();
        u.visit_stmts(&mut |s| ids.push(s.id().index()));
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len(), "ids are unique");
        assert_eq!(sorted, (0..ids.len()).collect::<Vec<_>>());
    }
}
