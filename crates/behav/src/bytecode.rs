//! Bytecode compilation and the register VM — the decode-once /
//! execute-many fast path for behavioural execution.
//!
//! The tree-walking [`Interpreter`] re-decodes
//! the IR on every run: every statement dispatch chases `Box`es, every
//! expression recomputes static widths, and every branch condition clones
//! coverage bookkeeping. That is fine for one run, but the hot callers
//! (ATPG fault sweeps, per-frame kernel execution) run the *same* function
//! thousands of times. [`compile`] lowers a [`Function`] once into a flat
//! [`Program`] — expressions linearized into virtual registers, structured
//! control flow into conditional jumps, widths and atom indices resolved at
//! compile time — and [`Vm`] executes it with a single branch-predictable
//! dispatch loop and register/array state that is reused across runs.
//!
//! Instrumentation (coverage, op counts, uninit-read tracking, OOB
//! tracking, call tracing) is selected at *compile time* through the
//! [`VmHooks`] trait: the uninstrumented [`Vm::run_value`] path
//! monomorphizes every hook to a no-op and pays nothing for observability
//! it does not use.
//!
//! The tree-walker stays as the differential oracle: [`Vm::run`] must
//! produce a [`RunOutput`] bit-for-bit equal to the interpreter's on every
//! function, input, and fault — a contract enforced by the kernel
//! equivalence tests and the `fuzz` crate's `vm` oracle family.

use crate::coverage::CoverageSet;
use crate::expr::{BinOp, Expr, UnaryOp};
use crate::func::{Function, VarId, VarKind};
use crate::interp::{
    apply_binop, mask, BitFault, CallEvent, ExecError, Interpreter, OobAccess, OobKind, OpCounts,
    ResourceHandler, RunOutput,
};
use crate::stmt::{CondId, ConfigId, Stmt, StmtId};

/// A virtual register index.
type Reg = u16;

/// One decoded instruction. Register operands index the VM's flat register
/// file; jump targets are absolute op indices.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Op {
    /// `dst = value`.
    Const { dst: Reg, value: u64 },
    /// `dst = src` (register move used to merge mux arms; not an observable
    /// operation, so it is never counted).
    Copy { dst: Reg, src: Reg },
    /// Unary op at the operand's static width.
    Unary {
        op: UnaryOp,
        dst: Reg,
        src: Reg,
        mask: u64,
    },
    /// Binary op at the statically computed width.
    Binary {
        op: BinOp,
        dst: Reg,
        lhs: Reg,
        rhs: Reg,
        width: u32,
    },
    /// Array element load with uninit/OOB inspection.
    Load { dst: Reg, arr: u16, idx: Reg },
    /// Index into a non-array variable: counts as a memory op, yields 0
    /// (mirrors the interpreter's total semantics).
    LoadMissing { dst: Reg },
    /// Array element store (fault point, masked, bounds-checked).
    StoreArr { arr: u16, idx: Reg, src: Reg },
    /// Scalar assignment (fault point, masked to the variable's width).
    AssignVar { dst: Reg, src: Reg, mask: u64 },
    /// Unconditional jump.
    Jump { target: u32 },
    /// Branch-coverage point: counts a branch, records the outcome, and
    /// jumps to `target` when the condition register is zero.
    BranchIfZero { cond: CondId, src: Reg, target: u32 },
    /// Mux select: counts one ALU op and jumps to the else-arm when the
    /// selector register is zero.
    MuxJumpIfZero { src: Reg, target: u32 },
    /// Condition-coverage point: records the value of atomic condition
    /// `atom` of branch `cond`. Atoms in an unexecuted mux arm are simply
    /// never reached, matching the interpreter's single-pass evaluation.
    Atom { cond: CondId, atom: u32, src: Reg },
    /// Fused compare-and-branch: computes `lhs <op> rhs` at `width`,
    /// fires the same hooks in the same order as the unfused
    /// `Binary` + (`Atom`) + `BranchIfZero` sequence it replaces, then
    /// jumps to `target` when the result is zero. One dispatch instead of
    /// two or three on every loop back-edge and `if` head.
    CmpBranch {
        op: BinOp,
        lhs: Reg,
        rhs: Reg,
        width: u32,
        atom: Option<u32>,
        cond: CondId,
        target: u32,
    },
    /// Statement entry: bumps the step counter (checking the limit) and
    /// records statement coverage.
    BeginStmt { id: StmtId },
    /// Fused loop back-edge: one completed iteration (step accounting,
    /// identical to the interpreter's) plus the jump to the loop head.
    LoopJump { target: u32 },
    /// Return with an optional value.
    Return { src: Option<Reg> },
    /// `reconfigure(config)` — call-counted and traced.
    Reconfigure { config: ConfigId },
    /// FPGA resource call; `args` index into the program's argument pool.
    ResourceCall {
        func: u16,
        args_start: u32,
        args_len: u16,
        target: Option<(Reg, u64)>,
    },
    /// End of the body (fell through without a return).
    Halt,
}

/// Compile-time description of one array variable.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ArrayInfo {
    var: VarId,
    len: u32,
    mask: u64,
}

/// A [`Function`] compiled to a flat register program. Immutable once
/// compiled; share or clone it freely and instantiate [`Vm`]s from it.
#[derive(Debug, Clone)]
pub struct Program {
    name: String,
    num_params: usize,
    /// Register of the i-th parameter (by declaration ordinal).
    param_regs: Vec<Reg>,
    param_masks: Vec<u64>,
    /// Scalar register of every variable (arrays also get a scalar shadow
    /// slot, mirroring the interpreter's state layout).
    var_regs: Vec<Reg>,
    /// Array slot of array variables.
    var_arrays: Vec<Option<u16>>,
    /// Declared width of every variable (for fault compilation).
    var_widths: Vec<u32>,
    arrays: Vec<ArrayInfo>,
    num_regs: usize,
    ops: Vec<Op>,
    /// Flat pool of argument registers for resource calls.
    call_args: Vec<Reg>,
    /// Interned resource-call names.
    func_names: Vec<String>,
    /// All-uncovered coverage sized for the source function; cloned per
    /// instrumented run.
    coverage_proto: CoverageSet,
}

impl Program {
    /// Name of the source function.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of parameters the program expects.
    pub fn num_params(&self) -> usize {
        self.num_params
    }

    /// Number of decoded ops (including control ops).
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Size of the register file (variables + expression temporaries).
    pub fn num_regs(&self) -> usize {
        self.num_regs
    }

    /// A fresh all-uncovered coverage set sized for the source function.
    pub fn new_coverage(&self) -> CoverageSet {
        self.coverage_proto.clone()
    }
}

/// Collects every distinct constant value in a block, in first-use order.
/// Each gets a dedicated register materialized once per run, so a constant
/// inside a loop body costs zero dispatches per iteration.
fn collect_consts(stmts: &[Stmt], out: &mut Vec<u64>) {
    fn walk_expr(e: &Expr, out: &mut Vec<u64>) {
        match e {
            Expr::Const { value, .. } => {
                if !out.contains(value) {
                    out.push(*value);
                }
            }
            Expr::Var(_) => {}
            Expr::Index { index, .. } => walk_expr(index, out),
            Expr::Unary { arg, .. } => walk_expr(arg, out),
            Expr::Binary { lhs, rhs, .. } => {
                walk_expr(lhs, out);
                walk_expr(rhs, out);
            }
            Expr::Mux { cond, then_, else_ } => {
                walk_expr(cond, out);
                walk_expr(then_, out);
                walk_expr(else_, out);
            }
        }
    }
    for s in stmts {
        match s {
            Stmt::Assign { value, .. } => walk_expr(value, out),
            Stmt::Store { index, value, .. } => {
                walk_expr(index, out);
                walk_expr(value, out);
            }
            Stmt::If {
                cond, then_, else_, ..
            } => {
                walk_expr(cond, out);
                collect_consts(then_, out);
                collect_consts(else_, out);
            }
            Stmt::While { cond, body, .. } => {
                walk_expr(cond, out);
                collect_consts(body, out);
            }
            Stmt::Return { value, .. } => {
                if let Some(e) = value {
                    walk_expr(e, out);
                }
            }
            Stmt::Reconfigure { .. } => {}
            Stmt::ResourceCall { args, .. } => {
                for a in args {
                    walk_expr(a, out);
                }
            }
        }
    }
}

/// Compiles a function to a [`Program`].
///
/// Scalar variables get dedicated low registers; constants are deduplicated
/// and pinned above them (materialized once per run by a preamble);
/// expression temporaries use a bump-allocated scratch area above both that
/// resets at each statement, so the register file stays small and
/// cache-resident.
pub fn compile(func: &Function) -> Program {
    let nvars = func.vars().len();
    let mut var_regs = vec![0 as Reg; nvars];
    let mut var_arrays = vec![None; nvars];
    let mut var_widths = vec![0u32; nvars];
    let mut arrays = Vec::new();
    let mut param_regs = Vec::new();
    let mut param_masks = Vec::new();
    let mut next: Reg = 0;
    for (i, decl) in func.vars().iter().enumerate() {
        var_regs[i] = next;
        var_widths[i] = decl.width;
        next += 1;
        match decl.kind {
            VarKind::Param => {
                param_regs.push(var_regs[i]);
                param_masks.push(mask(decl.width));
            }
            VarKind::Local => {}
            VarKind::Array { len } => {
                var_arrays[i] = Some(arrays.len() as u16);
                arrays.push(ArrayInfo {
                    var: VarId::from_index(i),
                    len,
                    mask: mask(decl.width),
                });
            }
        }
    }
    let mut const_values = Vec::new();
    collect_consts(func.body(), &mut const_values);
    let const_regs: Vec<(u64, Reg)> = const_values
        .into_iter()
        .map(|v| {
            let r = next;
            next += 1;
            (v, r)
        })
        .collect();
    let mut c = Compiler {
        func,
        var_regs: &var_regs,
        var_arrays: &var_arrays,
        const_regs: &const_regs,
        ops: Vec::new(),
        call_args: Vec::new(),
        func_names: Vec::new(),
        num_var_regs: next,
        tp: next,
        max_regs: next,
    };
    for &(value, dst) in &const_regs {
        c.ops.push(Op::Const { dst, value });
    }
    c.compile_block(func.body());
    c.ops.push(Op::Halt);
    let (ops, call_args, func_names, max_regs) = (c.ops, c.call_args, c.func_names, c.max_regs);
    Program {
        name: func.name().to_owned(),
        num_params: func.num_params(),
        param_regs,
        param_masks,
        var_regs,
        var_arrays,
        var_widths,
        arrays,
        num_regs: max_regs as usize,
        ops,
        call_args,
        func_names,
        coverage_proto: CoverageSet::new(func),
    }
}

struct Compiler<'f> {
    func: &'f Function,
    var_regs: &'f [Reg],
    var_arrays: &'f [Option<u16>],
    /// Deduplicated constants pinned to registers by the preamble.
    const_regs: &'f [(u64, Reg)],
    ops: Vec<Op>,
    call_args: Vec<Reg>,
    func_names: Vec<String>,
    /// First temporary register (one past the last variable register).
    num_var_regs: Reg,
    /// Bump pointer for expression temporaries.
    tp: Reg,
    /// High-water mark → the VM's register file size.
    max_regs: Reg,
}

impl Compiler<'_> {
    fn alloc(&mut self) -> Reg {
        let r = self.tp;
        self.tp = self.tp.checked_add(1).expect("register file overflow");
        self.max_regs = self.max_regs.max(self.tp);
        r
    }

    fn patch(&mut self, at: usize) {
        let t = self.ops.len() as u32;
        match &mut self.ops[at] {
            Op::Jump { target }
            | Op::BranchIfZero { target, .. }
            | Op::MuxJumpIfZero { target, .. }
            | Op::CmpBranch { target, .. } => *target = t,
            other => unreachable!("patching non-jump op {other:?}"),
        }
    }

    /// Emits the conditional branch of an `if`/`while` head, fusing the
    /// condition's final ALU op (and its atom record) into the branch when
    /// it produced the condition register directly. Returns the index of
    /// the op whose `target` awaits [`Compiler::patch`].
    fn emit_branch(&mut self, cond: CondId, creg: Reg) -> usize {
        let n = self.ops.len();
        if n >= 2 {
            if let (
                &Op::Binary {
                    op,
                    dst,
                    lhs,
                    rhs,
                    width,
                },
                &Op::Atom { cond: c, atom, src },
            ) = (&self.ops[n - 2], &self.ops[n - 1])
            {
                if dst == creg && src == creg && c == cond {
                    self.ops.truncate(n - 2);
                    let at = self.ops.len();
                    self.ops.push(Op::CmpBranch {
                        op,
                        lhs,
                        rhs,
                        width,
                        atom: Some(atom),
                        cond,
                        target: 0,
                    });
                    return at;
                }
            }
        }
        if let Some(&Op::Binary {
            op,
            dst,
            lhs,
            rhs,
            width,
        }) = self.ops.last()
        {
            if dst == creg {
                self.ops.pop();
                let at = self.ops.len();
                self.ops.push(Op::CmpBranch {
                    op,
                    lhs,
                    rhs,
                    width,
                    atom: None,
                    cond,
                    target: 0,
                });
                return at;
            }
        }
        let at = self.ops.len();
        self.ops.push(Op::BranchIfZero {
            cond,
            src: creg,
            target: 0,
        });
        at
    }

    /// Static width of an expression — identical to the interpreter's
    /// convention (comparisons 1 bit, else max operand width).
    fn width_of(&self, e: &Expr) -> u32 {
        match e {
            Expr::Const { width, .. } => *width,
            Expr::Var(v) => self.func.var(*v).width,
            Expr::Index { array, .. } => self.func.var(*array).width,
            Expr::Unary { arg, .. } => self.width_of(arg),
            Expr::Binary { op, lhs, rhs } => {
                if op.is_comparison() {
                    1
                } else {
                    self.width_of(lhs).max(self.width_of(rhs))
                }
            }
            Expr::Mux { then_, else_, .. } => self.width_of(then_).max(self.width_of(else_)),
        }
    }

    fn compile_block(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            self.compile_stmt(s);
        }
    }

    fn compile_stmt(&mut self, s: &Stmt) {
        self.ops.push(Op::BeginStmt { id: s.id() });
        // Temporaries from the previous statement are dead; reuse them.
        self.tp = self.num_var_regs;
        match s {
            Stmt::Assign { target, value, .. } => {
                let src = self.compile_expr(value, None, &mut 0);
                self.ops.push(Op::AssignVar {
                    dst: self.var_regs[target.index()],
                    src,
                    mask: mask(self.func.var(*target).width),
                });
            }
            Stmt::Store {
                array,
                index,
                value,
                ..
            } => {
                let idx = self.compile_expr(index, None, &mut 0);
                let src = self.compile_expr(value, None, &mut 0);
                match self.var_arrays[array.index()] {
                    Some(arr) => self.ops.push(Op::StoreArr { arr, idx, src }),
                    // Store to a non-array variable: the interpreter drops
                    // the value but still counts the memory op.
                    None => {
                        let dst = self.alloc();
                        self.ops.push(Op::LoadMissing { dst });
                    }
                }
            }
            Stmt::If {
                cond_id,
                cond,
                then_,
                else_,
                ..
            } => {
                let mut next_atom = 0u32;
                let creg = self.compile_expr(cond, Some(*cond_id), &mut next_atom);
                let br = self.emit_branch(*cond_id, creg);
                self.compile_block(then_);
                if else_.is_empty() {
                    self.patch(br);
                } else {
                    let j = self.ops.len();
                    self.ops.push(Op::Jump { target: 0 });
                    self.patch(br);
                    self.compile_block(else_);
                    self.patch(j);
                }
            }
            Stmt::While {
                cond_id,
                cond,
                body,
                ..
            } => {
                // BeginStmt runs once on arrival; each completed iteration
                // costs one LoopJump step — matching the interpreter's
                // step accounting exactly.
                let head = self.ops.len() as u32;
                let mut next_atom = 0u32;
                let creg = self.compile_expr(cond, Some(*cond_id), &mut next_atom);
                let br = self.emit_branch(*cond_id, creg);
                self.compile_block(body);
                self.ops.push(Op::LoopJump { target: head });
                self.patch(br);
                // The condition re-evaluates each iteration; its temps must
                // not collide with the loop body's statements (they reset
                // tp themselves, so re-entry is fine).
                self.tp = self.num_var_regs;
            }
            Stmt::Return { value, .. } => {
                let src = value.as_ref().map(|e| self.compile_expr(e, None, &mut 0));
                self.ops.push(Op::Return { src });
            }
            Stmt::Reconfigure { config, .. } => {
                self.ops.push(Op::Reconfigure { config: *config });
            }
            Stmt::ResourceCall {
                func, args, target, ..
            } => {
                // Arguments are evaluated left to right; each result stays
                // live (the bump pointer is not reset between them).
                let arg_regs: Vec<Reg> = args
                    .iter()
                    .map(|a| self.compile_expr(a, None, &mut 0))
                    .collect();
                let args_start = self.call_args.len() as u32;
                let args_len = arg_regs.len() as u16;
                self.call_args.extend(arg_regs);
                let fidx = self.intern_name(func);
                let target =
                    target.map(|t| (self.var_regs[t.index()], mask(self.func.var(t).width)));
                self.ops.push(Op::ResourceCall {
                    func: fidx,
                    args_start,
                    args_len,
                    target,
                });
            }
        }
    }

    fn intern_name(&mut self, name: &str) -> u16 {
        match self.func_names.iter().position(|n| n == name) {
            Some(i) => i as u16,
            None => {
                self.func_names.push(name.to_owned());
                (self.func_names.len() - 1) as u16
            }
        }
    }

    /// Compiles an expression, returning the register holding its value.
    ///
    /// Inside a branch condition (`cond` is `Some`), comparison nodes claim
    /// atom indices in pre-order — the same numbering as
    /// [`Expr::atomic_conditions`] — and emit [`Op::Atom`] records. Atoms
    /// inside mux arms land in the arm's emitted code, so an untaken arm's
    /// atoms are never recorded, exactly like the single-pass interpreter.
    fn compile_expr(&mut self, e: &Expr, cond: Option<CondId>, next_atom: &mut u32) -> Reg {
        match e {
            Expr::Const { value, .. } => self
                .const_regs
                .iter()
                .find(|&&(v, _)| v == *value)
                .map(|&(_, r)| r)
                .expect("every constant was pre-scanned"),
            Expr::Var(v) => self.var_regs[v.index()],
            Expr::Index { array, index } => {
                let base = self.tp;
                let idx = self.compile_expr(index, cond, next_atom);
                self.tp = base;
                let dst = self.alloc();
                match self.var_arrays[array.index()] {
                    Some(arr) => self.ops.push(Op::Load { dst, arr, idx }),
                    None => self.ops.push(Op::LoadMissing { dst }),
                }
                dst
            }
            Expr::Unary { op, arg } => {
                let base = self.tp;
                let src = self.compile_expr(arg, cond, next_atom);
                let m = mask(self.width_of(arg));
                self.tp = base;
                let dst = self.alloc();
                self.ops.push(Op::Unary {
                    op: *op,
                    dst,
                    src,
                    mask: m,
                });
                dst
            }
            Expr::Binary { op, lhs, rhs } => {
                let my_atom = match cond {
                    Some(_) if op.is_comparison() => {
                        let i = *next_atom;
                        *next_atom += 1;
                        Some(i)
                    }
                    _ => None,
                };
                let base = self.tp;
                let l = self.compile_expr(lhs, cond, next_atom);
                let r = self.compile_expr(rhs, cond, next_atom);
                let width = self.width_of(lhs).max(self.width_of(rhs));
                self.tp = base;
                let dst = self.alloc();
                self.ops.push(Op::Binary {
                    op: *op,
                    dst,
                    lhs: l,
                    rhs: r,
                    width,
                });
                if let (Some(id), Some(atom)) = (cond, my_atom) {
                    self.ops.push(Op::Atom {
                        cond: id,
                        atom,
                        src: dst,
                    });
                }
                dst
            }
            Expr::Mux {
                cond: sel,
                then_,
                else_,
            } => {
                let base = self.tp;
                let creg = self.compile_expr(sel, cond, next_atom);
                self.tp = base;
                let dst = self.alloc();
                let jz = self.ops.len();
                self.ops.push(Op::MuxJumpIfZero {
                    src: creg,
                    target: 0,
                });
                let tr = self.compile_expr(then_, cond, next_atom);
                self.ops.push(Op::Copy { dst, src: tr });
                let j = self.ops.len();
                self.ops.push(Op::Jump { target: 0 });
                self.patch(jz);
                self.tp = base + 1; // dst stays live across the arms
                let er = self.compile_expr(else_, cond, next_atom);
                self.ops.push(Op::Copy { dst, src: er });
                self.patch(j);
                self.tp = base + 1;
                dst
            }
        }
    }
}

/// Compile-time-selected instrumentation for [`Vm`] runs.
///
/// Every hook defaults to a no-op; the dispatch loop is monomorphized per
/// hook set, so an unused hook costs literally nothing (the call inlines
/// to nothing). `TRACE_CALLS` additionally gates construction of
/// [`CallEvent`] values, which would otherwise allocate even if dropped.
pub trait VmHooks {
    /// Whether [`CallEvent`]s should be constructed and delivered.
    const TRACE_CALLS: bool = false;

    /// A statement began executing.
    #[inline(always)]
    fn on_stmt(&mut self, _id: StmtId) {}
    /// A branch outcome was decided.
    #[inline(always)]
    fn on_branch(&mut self, _cond: CondId, _taken: bool) {}
    /// An atomic condition produced a value.
    #[inline(always)]
    fn on_atom(&mut self, _cond: CondId, _atom: u32, _value: bool) {}
    /// One ALU operation executed.
    #[inline(always)]
    fn count_alu(&mut self) {}
    /// One multiplication executed.
    #[inline(always)]
    fn count_mul(&mut self) {}
    /// One division/remainder executed.
    #[inline(always)]
    fn count_div(&mut self) {}
    /// One memory (array) operation executed.
    #[inline(always)]
    fn count_mem(&mut self) {}
    /// One conditional branch evaluated.
    #[inline(always)]
    fn count_branch(&mut self) {}
    /// One resource/reconfigure call executed.
    #[inline(always)]
    fn count_call(&mut self) {}
    /// A never-written array element was read.
    #[inline(always)]
    fn on_uninit_read(&mut self, _var: VarId, _index: u64) {}
    /// An out-of-bounds array access happened.
    #[inline(always)]
    fn on_oob(&mut self, _access: OobAccess) {}
    /// A traced call event (only delivered when `TRACE_CALLS` is true).
    #[inline(always)]
    fn on_call(&mut self, _event: CallEvent) {}
}

/// No instrumentation: the pure-throughput path.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoHooks;

impl VmHooks for NoHooks {}

/// Full instrumentation — everything the interpreter's [`RunOutput`]
/// reports.
#[derive(Debug, Clone)]
pub struct FullHooks {
    /// Coverage recorded during the run.
    pub coverage: CoverageSet,
    /// Operation profile.
    pub ops: OpCounts,
    /// Uninitialized-read report in execution order.
    pub uninit: Vec<(VarId, u64)>,
    /// Out-of-bounds report in execution order.
    pub oob: Vec<OobAccess>,
    /// Call trace in execution order.
    pub trace: Vec<CallEvent>,
}

impl VmHooks for FullHooks {
    const TRACE_CALLS: bool = true;

    #[inline(always)]
    fn on_stmt(&mut self, id: StmtId) {
        self.coverage.hit_statement(id);
    }
    #[inline(always)]
    fn on_branch(&mut self, cond: CondId, taken: bool) {
        self.coverage.hit_branch(cond, taken);
    }
    #[inline(always)]
    fn on_atom(&mut self, cond: CondId, atom: u32, value: bool) {
        self.coverage.hit_atom(cond, atom as usize, value);
    }
    #[inline(always)]
    fn count_alu(&mut self) {
        self.ops.alu += 1;
    }
    #[inline(always)]
    fn count_mul(&mut self) {
        self.ops.mul += 1;
    }
    #[inline(always)]
    fn count_div(&mut self) {
        self.ops.div += 1;
    }
    #[inline(always)]
    fn count_mem(&mut self) {
        self.ops.mem += 1;
    }
    #[inline(always)]
    fn count_branch(&mut self) {
        self.ops.branch += 1;
    }
    #[inline(always)]
    fn count_call(&mut self) {
        self.ops.call += 1;
    }
    #[inline(always)]
    fn on_uninit_read(&mut self, var: VarId, index: u64) {
        self.uninit.push((var, index));
    }
    #[inline(always)]
    fn on_oob(&mut self, access: OobAccess) {
        self.oob.push(access);
    }
    #[inline(always)]
    fn on_call(&mut self, event: CallEvent) {
        self.trace.push(event);
    }
}

/// Call-trace-only hooks: what an ATPG fault signature needs beyond the
/// return value.
#[derive(Debug, Default, Clone)]
pub struct SigHooks {
    /// Call trace in execution order.
    pub trace: Vec<CallEvent>,
}

impl VmHooks for SigHooks {
    const TRACE_CALLS: bool = true;

    #[inline(always)]
    fn on_call(&mut self, event: CallEvent) {
        self.trace.push(event);
    }
}

/// Coverage-only hooks (statement/branch/condition metrics).
#[derive(Debug, Clone)]
pub struct CovHooks {
    /// Coverage recorded during the run.
    pub coverage: CoverageSet,
}

impl VmHooks for CovHooks {
    #[inline(always)]
    fn on_stmt(&mut self, id: StmtId) {
        self.coverage.hit_statement(id);
    }
    #[inline(always)]
    fn on_branch(&mut self, cond: CondId, taken: bool) {
        self.coverage.hit_branch(cond, taken);
    }
    #[inline(always)]
    fn on_atom(&mut self, cond: CondId, atom: u32, value: bool) {
        self.coverage.hit_atom(cond, atom as usize, value);
    }
}

/// Memory-inspection-only hooks (uninitialized reads + OOB accesses).
#[derive(Debug, Default, Clone)]
pub struct MemHooks {
    /// Uninitialized-read report in execution order.
    pub uninit: Vec<(VarId, u64)>,
    /// Out-of-bounds report in execution order.
    pub oob: Vec<OobAccess>,
}

impl VmHooks for MemHooks {
    #[inline(always)]
    fn on_uninit_read(&mut self, var: VarId, index: u64) {
        self.uninit.push((var, index));
    }
    #[inline(always)]
    fn on_oob(&mut self, access: OobAccess) {
        self.oob.push(access);
    }
}

/// A bit fault resolved against a compiled program: the OR/AND masks to
/// apply at every write of the faulted variable's scalar register or
/// array slot.
#[derive(Debug, Clone, Copy)]
struct CompiledFault {
    reg: Reg,
    arr: Option<u16>,
    or: u64,
    and: u64,
}

/// Per-array runtime state. `written` holds the stamp of the run that last
/// wrote each element, so resetting between runs is a single counter bump
/// instead of a memset.
#[derive(Debug, Clone)]
struct ArrayBuf {
    data: Vec<u64>,
    written: Vec<u64>,
}

/// Executes a [`Program`] with reusable state: compile once, then run per
/// frame / per test vector / per fault without re-decoding or
/// re-allocating.
#[derive(Debug, Clone)]
pub struct Vm {
    program: Program,
    regs: Vec<u64>,
    arrays: Vec<ArrayBuf>,
    /// Current run's generation stamp for array-write tracking.
    stamp: u64,
    step_limit: u64,
    fault: Option<CompiledFault>,
    garbage: u64,
}

impl Vm {
    /// Creates a VM for a compiled program with default settings (matching
    /// the interpreter's defaults).
    pub fn new(program: Program) -> Vm {
        let regs = vec![0u64; program.num_regs];
        let arrays = program
            .arrays
            .iter()
            .map(|a| ArrayBuf {
                data: vec![0u64; a.len as usize],
                written: vec![0u64; a.len as usize],
            })
            .collect();
        Vm {
            program,
            regs,
            arrays,
            stamp: 0,
            step_limit: 1_000_000,
            fault: None,
            garbage: 0xDEAD_BEEF_CAFE_F00D,
        }
    }

    /// The compiled program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Sets the dynamic step limit (builder form).
    pub fn with_step_limit(mut self, limit: u64) -> Vm {
        self.step_limit = limit;
        self
    }

    /// Overrides the garbage value returned by uninitialized reads
    /// (builder form).
    pub fn with_garbage(mut self, garbage: u64) -> Vm {
        self.garbage = garbage;
        self
    }

    /// Installs (or clears) the injected bit fault for subsequent runs.
    /// Cheap — this is the per-fault step of an ATPG sweep over one
    /// compiled program.
    pub fn set_fault(&mut self, fault: Option<BitFault>) {
        self.fault = fault.and_then(|f| {
            let width = self.program.var_widths[f.var.index()];
            // A fault on a bit outside the variable's width never changes a
            // value (the interpreter's guard); drop it entirely.
            if f.bit >= width {
                return None;
            }
            Some(CompiledFault {
                reg: self.program.var_regs[f.var.index()],
                arr: self.program.var_arrays[f.var.index()],
                or: if f.stuck_at { 1u64 << f.bit } else { 0 },
                and: if f.stuck_at {
                    u64::MAX
                } else {
                    !(1u64 << f.bit)
                },
            })
        });
    }

    /// Fully instrumented run — produces a [`RunOutput`] bit-for-bit equal
    /// to the interpreter's.
    ///
    /// # Errors
    ///
    /// Same contract as [`Interpreter::run`]: arity mismatch or step-limit
    /// exhaustion.
    pub fn run(&mut self, inputs: &[u64]) -> Result<RunOutput, ExecError> {
        self.run_with_handler(inputs, None)
    }

    /// Fully instrumented run with a resource-call handler.
    ///
    /// # Errors
    ///
    /// Same contract as [`Interpreter::run`].
    pub fn run_with_handler(
        &mut self,
        inputs: &[u64],
        handler: Option<&mut ResourceHandler<'_>>,
    ) -> Result<RunOutput, ExecError> {
        let mut hooks = FullHooks {
            coverage: self.program.coverage_proto.clone(),
            ops: OpCounts::default(),
            uninit: Vec::new(),
            oob: Vec::new(),
            trace: Vec::new(),
        };
        let (return_value, steps) = self.run_hooked(inputs, &mut hooks, handler)?;
        Ok(RunOutput {
            return_value,
            coverage: hooks.coverage,
            ops: hooks.ops,
            steps,
            uninitialized_reads: hooks.uninit,
            out_of_bounds: hooks.oob,
            call_trace: hooks.trace,
        })
    }

    /// Uninstrumented run: just the return value, at full throughput.
    ///
    /// # Errors
    ///
    /// Same contract as [`Interpreter::run`].
    pub fn run_value(&mut self, inputs: &[u64]) -> Result<Option<u64>, ExecError> {
        let mut hooks = NoHooks;
        Ok(self.run_hooked(inputs, &mut hooks, None)?.0)
    }

    /// Fault-signature run: return value plus call trace, nothing else —
    /// the ATPG sweep's inner loop.
    ///
    /// # Errors
    ///
    /// Same contract as [`Interpreter::run`].
    pub fn run_signature(
        &mut self,
        inputs: &[u64],
    ) -> Result<(Option<u64>, Vec<CallEvent>), ExecError> {
        let mut hooks = SigHooks::default();
        let (ret, _) = self.run_hooked(inputs, &mut hooks, None)?;
        Ok((ret, hooks.trace))
    }

    /// The generic dispatch loop, monomorphized per hook set. Returns the
    /// return value (if any) and the dynamic step count.
    ///
    /// # Errors
    ///
    /// Same contract as [`Interpreter::run`].
    pub fn run_hooked<H: VmHooks>(
        &mut self,
        inputs: &[u64],
        hooks: &mut H,
        mut handler: Option<&mut ResourceHandler<'_>>,
    ) -> Result<(Option<u64>, u64), ExecError> {
        let program = &self.program;
        if inputs.len() != program.num_params {
            return Err(ExecError::ArityMismatch {
                expected: program.num_params,
                got: inputs.len(),
            });
        }
        // Reset reusable state: registers to zero, arrays by bumping the
        // generation stamp (elements written by older runs read as
        // uninitialized again, with no memset).
        self.regs.fill(0);
        for (i, &v) in inputs.iter().enumerate() {
            self.regs[program.param_regs[i] as usize] = v & program.param_masks[i];
        }
        self.stamp += 1;
        let stamp = self.stamp;
        let regs = &mut self.regs;
        let arrays = &mut self.arrays;
        let fault = self.fault;
        let step_limit = self.step_limit;
        let garbage = self.garbage;
        #[cfg(feature = "vm-mutant")]
        let mut mutant_writes = 0u64;
        let ops: &[Op] = &program.ops;
        let mut pc = 0usize;
        let mut steps = 0u64;
        let ret = loop {
            let op = &ops[pc];
            pc += 1;
            match *op {
                Op::Const { dst, value } => regs[dst as usize] = value,
                Op::Copy { dst, src } => regs[dst as usize] = regs[src as usize],
                Op::Unary { op, dst, src, mask } => {
                    let a = regs[src as usize];
                    hooks.count_alu();
                    regs[dst as usize] = match op {
                        UnaryOp::Not => !a & mask,
                        UnaryOp::Neg => a.wrapping_neg() & mask,
                    };
                }
                Op::Binary {
                    op,
                    dst,
                    lhs,
                    rhs,
                    width,
                } => {
                    let a = regs[lhs as usize];
                    let b = regs[rhs as usize];
                    match op {
                        BinOp::Mul => hooks.count_mul(),
                        BinOp::Div | BinOp::Rem => hooks.count_div(),
                        _ => hooks.count_alu(),
                    }
                    regs[dst as usize] = apply_binop(op, a, b, width);
                }
                Op::Load { dst, arr, idx } => {
                    let i = regs[idx as usize];
                    hooks.count_mem();
                    let buf = &arrays[arr as usize];
                    let info = &program.arrays[arr as usize];
                    regs[dst as usize] = if (i as usize) < buf.data.len() {
                        if buf.written[i as usize] == stamp {
                            buf.data[i as usize]
                        } else {
                            hooks.on_uninit_read(info.var, i);
                            garbage & info.mask
                        }
                    } else {
                        hooks.on_oob(OobAccess {
                            var: info.var,
                            index: i,
                            kind: OobKind::Load,
                        });
                        garbage & info.mask
                    };
                }
                Op::LoadMissing { dst } => {
                    hooks.count_mem();
                    regs[dst as usize] = 0;
                }
                Op::StoreArr { arr, idx, src } => {
                    let i = regs[idx as usize];
                    let mut v = regs[src as usize];
                    if let Some(f) = fault {
                        if f.arr == Some(arr) {
                            v = (v | f.or) & f.and;
                        }
                    }
                    let buf = &mut arrays[arr as usize];
                    let info = &program.arrays[arr as usize];
                    if (i as usize) < buf.data.len() {
                        buf.data[i as usize] = v & info.mask;
                        buf.written[i as usize] = stamp;
                    } else {
                        hooks.on_oob(OobAccess {
                            var: info.var,
                            index: i,
                            kind: OobKind::Store,
                        });
                    }
                    hooks.count_mem();
                }
                Op::AssignVar { dst, src, mask } => {
                    let mut v = regs[src as usize];
                    if let Some(f) = fault {
                        if f.reg == dst {
                            v = (v | f.or) & f.and;
                        }
                    }
                    #[cfg(feature = "vm-mutant")]
                    let mask = {
                        // Seeded miscompile: skip the width mask on every
                        // third scalar assignment. The differential oracle
                        // must catch this.
                        mutant_writes += 1;
                        if mutant_writes.is_multiple_of(3) {
                            u64::MAX
                        } else {
                            mask
                        }
                    };
                    regs[dst as usize] = v & mask;
                    hooks.count_alu();
                }
                Op::Jump { target } => pc = target as usize,
                Op::BranchIfZero { cond, src, target } => {
                    let taken = regs[src as usize] != 0;
                    hooks.count_branch();
                    hooks.on_branch(cond, taken);
                    if !taken {
                        pc = target as usize;
                    }
                }
                Op::MuxJumpIfZero { src, target } => {
                    hooks.count_alu();
                    if regs[src as usize] == 0 {
                        pc = target as usize;
                    }
                }
                Op::CmpBranch {
                    op,
                    lhs,
                    rhs,
                    width,
                    atom,
                    cond,
                    target,
                } => {
                    let a = regs[lhs as usize];
                    let b = regs[rhs as usize];
                    match op {
                        BinOp::Mul => hooks.count_mul(),
                        BinOp::Div | BinOp::Rem => hooks.count_div(),
                        _ => hooks.count_alu(),
                    }
                    let v = apply_binop(op, a, b, width);
                    if let Some(atom) = atom {
                        hooks.on_atom(cond, atom, v != 0);
                    }
                    let taken = v != 0;
                    hooks.count_branch();
                    hooks.on_branch(cond, taken);
                    if !taken {
                        pc = target as usize;
                    }
                }
                Op::Atom { cond, atom, src } => {
                    hooks.on_atom(cond, atom, regs[src as usize] != 0);
                }
                Op::BeginStmt { id } => {
                    steps += 1;
                    if steps > step_limit {
                        return Err(ExecError::StepLimit { limit: step_limit });
                    }
                    hooks.on_stmt(id);
                }
                Op::LoopJump { target } => {
                    steps += 1;
                    if steps > step_limit {
                        return Err(ExecError::StepLimit { limit: step_limit });
                    }
                    pc = target as usize;
                }
                Op::Return { src } => break src.map(|r| regs[r as usize]),
                Op::Reconfigure { config } => {
                    hooks.count_call();
                    if H::TRACE_CALLS {
                        hooks.on_call(CallEvent::Reconfigure(config));
                    }
                }
                Op::ResourceCall {
                    func,
                    args_start,
                    args_len,
                    target,
                } => {
                    let arg_regs = &program.call_args
                        [args_start as usize..args_start as usize + args_len as usize];
                    let args: Vec<u64> = arg_regs.iter().map(|&r| regs[r as usize]).collect();
                    hooks.count_call();
                    let name = &program.func_names[func as usize];
                    let result = match handler.as_mut() {
                        Some(h) => h(name, &args),
                        None => 0,
                    };
                    if H::TRACE_CALLS {
                        hooks.on_call(CallEvent::Resource {
                            func: name.clone(),
                            args,
                            result,
                        });
                    }
                    if let Some((dst, m)) = target {
                        let mut v = result & m;
                        if let Some(f) = fault {
                            if f.reg == dst {
                                v = (v | f.or) & f.and;
                            }
                        }
                        regs[dst as usize] = v & m;
                    }
                }
                Op::Halt => break None,
            }
        };
        Ok((ret, steps))
    }
}

/// Engine choice for behavioural execution in hot callers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BehavExec {
    /// The tree-walking interpreter — the reference semantics, retained as
    /// the differential oracle.
    Interp,
    /// The register bytecode VM — the default fast path.
    #[default]
    Vm,
}

impl BehavExec {
    /// Short engine name for reports.
    pub fn as_str(self) -> &'static str {
        match self {
            BehavExec::Interp => "interp",
            BehavExec::Vm => "vm",
        }
    }
}

/// A compile-once executor for one function under either engine — what a
/// hot caller holds so the engine choice is a construction-time decision.
#[derive(Debug)]
pub enum Runner {
    /// Tree-walking oracle (decodes the IR each run).
    Interp(Function),
    /// Compiled program with reusable VM state.
    Vm(Box<Vm>),
}

impl Runner {
    /// Builds a runner for `func` under the chosen engine.
    pub fn new(func: &Function, exec: BehavExec) -> Runner {
        match exec {
            BehavExec::Interp => Runner::Interp(func.clone()),
            BehavExec::Vm => Runner::Vm(Box::new(Vm::new(compile(func)))),
        }
    }

    /// Executes on `inputs`, returning only the return value.
    ///
    /// # Errors
    ///
    /// Same contract as [`Interpreter::run`].
    pub fn run_value(&mut self, inputs: &[u64]) -> Result<Option<u64>, ExecError> {
        match self {
            Runner::Interp(f) => Interpreter::new(f).run(inputs).map(|o| o.return_value),
            Runner::Vm(vm) => vm.run_value(inputs),
        }
    }

    /// Fully instrumented execution.
    ///
    /// # Errors
    ///
    /// Same contract as [`Interpreter::run`].
    pub fn run(&mut self, inputs: &[u64]) -> Result<RunOutput, ExecError> {
        match self {
            Runner::Interp(f) => Interpreter::new(f).run(inputs),
            Runner::Vm(vm) => vm.run(inputs),
        }
    }
}

#[cfg(all(test, not(feature = "vm-mutant")))]
mod tests {
    use super::*;
    use crate::func::FunctionBuilder;
    use crate::interp::enumerate_bit_faults;
    use crate::unroll::unroll;

    fn gcd_func() -> Function {
        let mut fb = FunctionBuilder::new("gcd", 16);
        let a = fb.param("a", 16);
        let b = fb.param("b", 16);
        fb.while_(Expr::ne(Expr::var(b), Expr::constant(0, 16)), |blk| {
            let t = blk.local("t", 16);
            blk.assign(t, Expr::rem(Expr::var(a), Expr::var(b)));
            blk.assign(a, Expr::var(b));
            blk.assign(b, Expr::var(t));
        });
        fb.ret(Expr::var(a));
        fb.build()
    }

    fn assert_agree(f: &Function, inputs: &[u64]) {
        let mut vm = Vm::new(compile(f));
        let interp = Interpreter::new(f).run(inputs);
        let vm_out = vm.run(inputs);
        assert_eq!(interp, vm_out, "divergence on {} {:?}", f.name(), inputs);
    }

    #[test]
    fn gcd_agrees_bit_for_bit() {
        let f = gcd_func();
        for v in [[48u64, 18], [7, 13], [0, 5], [5, 0], [1, 1]] {
            assert_agree(&f, &v);
        }
    }

    #[test]
    fn vm_state_is_reusable_across_runs() {
        let f = gcd_func();
        let mut vm = Vm::new(compile(&f));
        let first = vm.run(&[48, 18]).unwrap();
        let second = vm.run(&[48, 18]).unwrap();
        assert_eq!(first, second);
        assert_eq!(second.return_value, Some(6));
    }

    #[test]
    fn array_state_resets_between_runs() {
        // Run 1 writes the array; run 2 must still see it uninitialized.
        let mut fb = FunctionBuilder::new("arr", 16);
        let a = fb.param("write", 1);
        let arr = fb.array("buf", 16, 4);
        let x = fb.local("x", 16);
        fb.if_(Expr::var(a), |t| {
            t.store(arr, Expr::constant(2, 8), Expr::constant(9, 16));
        });
        fb.assign(x, Expr::index(arr, Expr::constant(2, 8)));
        fb.ret(Expr::var(x));
        let f = fb.build();
        let mut vm = Vm::new(compile(&f));
        assert_eq!(vm.run(&[1]).unwrap().return_value, Some(9));
        let out = vm.run(&[0]).unwrap();
        assert_eq!(out.uninitialized_reads, vec![(arr, 2)]);
        assert_ne!(out.return_value, Some(9));
        assert_eq!(out, Interpreter::new(&f).run(&[0]).unwrap());
    }

    #[test]
    fn oob_and_uninit_reports_match_interpreter() {
        let mut fb = FunctionBuilder::new("mem", 16);
        let arr = fb.array("buf", 16, 3);
        let x = fb.local("x", 16);
        fb.store(arr, Expr::constant(5, 8), Expr::constant(1, 16)); // OOB store
        fb.assign(x, Expr::index(arr, Expr::constant(9, 8))); // OOB load
        fb.assign(
            x,
            Expr::add(Expr::var(x), Expr::index(arr, Expr::constant(1, 8))),
        ); // uninit
        fb.ret(Expr::var(x));
        let f = fb.build();
        assert_agree(&f, &[]);
        let out = Vm::new(compile(&f)).run(&[]).unwrap();
        assert_eq!(out.out_of_bounds.len(), 2);
        assert_eq!(out.uninitialized_reads, vec![(arr, 1)]);
    }

    #[test]
    fn condition_coverage_and_op_counts_match() {
        let mut fb = FunctionBuilder::new("cond", 8);
        let a = fb.param("a", 8);
        let x = fb.local("x", 8);
        fb.if_else(
            Expr::and(
                Expr::lt(Expr::var(a), Expr::constant(10, 8)),
                Expr::gt(Expr::var(a), Expr::constant(2, 8)),
            ),
            |t| t.assign(x, Expr::constant(1, 8)),
            |e| e.assign(x, Expr::constant(2, 8)),
        );
        fb.ret(Expr::var(x));
        let f = fb.build();
        for v in 0..16 {
            assert_agree(&f, &[v]);
        }
    }

    #[test]
    fn mux_atoms_in_conditions_match() {
        let mut fb = FunctionBuilder::new("muxcond", 8);
        let a = fb.param("a", 8);
        let x = fb.local("x", 8);
        fb.if_(
            Expr::mux(
                Expr::lt(Expr::var(a), Expr::constant(3, 8)),
                Expr::eq(Expr::var(a), Expr::constant(0, 8)),
                Expr::gt(Expr::var(a), Expr::constant(7, 8)),
            ),
            |t| t.assign(x, Expr::constant(1, 8)),
        );
        fb.ret(Expr::var(x));
        let f = fb.build();
        for v in 0..12 {
            assert_agree(&f, &[v]);
        }
    }

    #[test]
    fn faulted_runs_match_interpreter() {
        let f = gcd_func();
        let mut vm = Vm::new(compile(&f));
        for fault in enumerate_bit_faults(&f) {
            vm.set_fault(Some(fault));
            for v in [[48u64, 18], [9, 6]] {
                let interp = Interpreter::new(&f).with_fault(fault).run(&v);
                assert_eq!(interp, vm.run(&v), "fault {fault:?} diverged");
            }
        }
        // Clearing the fault restores golden behaviour.
        vm.set_fault(None);
        assert_eq!(vm.run(&[48, 18]).unwrap().return_value, Some(6));
    }

    #[test]
    fn resource_calls_and_reconfigure_match() {
        let mut fb = FunctionBuilder::new("sw", 16);
        let x = fb.local("x", 16);
        fb.reconfigure(ConfigId(1));
        fb.resource_call(
            "root",
            vec![Expr::constant(49, 16), Expr::constant(1, 8)],
            Some(x),
        );
        fb.ret(Expr::var(x));
        let f = fb.build();
        let mut handler1 = |name: &str, args: &[u64]| -> u64 { name.len() as u64 + args[0] };
        let mut handler2 = |name: &str, args: &[u64]| -> u64 { name.len() as u64 + args[0] };
        let interp = Interpreter::new(&f)
            .with_resource_handler(Box::new(&mut handler1))
            .run(&[]);
        let mut vm = Vm::new(compile(&f));
        let vm_out = vm.run_with_handler(&[], Some(&mut handler2));
        assert_eq!(interp, vm_out);
        assert_eq!(vm_out.unwrap().return_value, Some(53));
    }

    #[test]
    fn step_limit_errors_match() {
        let mut fb = FunctionBuilder::new("inf", 8);
        fb.while_(Expr::constant(1, 1), |_| {});
        fb.ret(Expr::constant(0, 8));
        let f = fb.build();
        let interp = Interpreter::new(&f).with_step_limit(100).run(&[]);
        let vm = Vm::new(compile(&f)).with_step_limit(100).run(&[]);
        assert_eq!(interp, vm);
        assert_eq!(vm.unwrap_err(), ExecError::StepLimit { limit: 100 });
    }

    #[test]
    fn arity_errors_match() {
        let f = gcd_func();
        let mut vm = Vm::new(compile(&f));
        assert_eq!(
            vm.run(&[1]).unwrap_err(),
            ExecError::ArityMismatch {
                expected: 2,
                got: 1
            }
        );
    }

    #[test]
    fn unrolled_functions_match() {
        let f = unroll(&gcd_func(), 8);
        let mut vm = Vm::new(compile(&f));
        for v in [[48u64, 18], [7, 13], [255, 34]] {
            assert_eq!(Interpreter::new(&f).run(&v), vm.run(&v));
        }
    }

    #[test]
    fn rebuilt_param_after_local_matches() {
        use crate::func::{VarDecl, VarKind};
        use crate::stmt::StmtId;
        let vars = vec![
            VarDecl {
                name: "tmp".into(),
                width: 8,
                kind: VarKind::Local,
            },
            VarDecl {
                name: "a".into(),
                width: 8,
                kind: VarKind::Param,
            },
        ];
        let tmp = VarId::from_index(0);
        let a = VarId::from_index(1);
        let body = vec![
            Stmt::Assign {
                id: StmtId::placeholder(),
                target: tmp,
                value: Expr::add(Expr::var(a), Expr::constant(1, 8)),
            },
            Stmt::Return {
                id: StmtId::placeholder(),
                value: Some(Expr::var(tmp)),
            },
        ];
        let f = Function::rebuild("rebuilt".to_owned(), vars, 1, 8, body);
        assert_agree(&f, &[41]);
        assert_eq!(
            Vm::new(compile(&f)).run(&[41]).unwrap().return_value,
            Some(42)
        );
    }

    #[test]
    fn run_value_matches_full_run() {
        let f = gcd_func();
        let mut vm = Vm::new(compile(&f));
        let full = vm.run(&[300, 252]).unwrap().return_value;
        assert_eq!(vm.run_value(&[300, 252]).unwrap(), full);
    }

    #[test]
    fn runner_engines_agree() {
        let f = gcd_func();
        let mut interp = Runner::new(&f, BehavExec::Interp);
        let mut vm = Runner::new(&f, BehavExec::Vm);
        assert_eq!(BehavExec::default(), BehavExec::Vm);
        for v in [[48u64, 18], [640, 480]] {
            assert_eq!(interp.run(&v), vm.run(&v));
            assert_eq!(interp.run_value(&v), vm.run_value(&v));
        }
    }

    #[test]
    fn program_reports_shape() {
        let p = compile(&gcd_func());
        assert_eq!(p.name(), "gcd");
        assert_eq!(p.num_params(), 2);
        assert!(p.num_ops() > 5);
        assert!(p.num_regs() >= 3); // a, b, t + temps
        assert_eq!(p.new_coverage().report().statements_hit, 0);
    }
}

#[cfg(all(test, feature = "vm-mutant"))]
mod mutant_tests {
    use super::*;
    use crate::func::FunctionBuilder;

    /// With the seeded miscompile enabled, a function whose expressions
    /// exceed the target's width must diverge from the interpreter.
    #[test]
    fn seeded_miscompile_diverges_from_interpreter() {
        let mut fb = FunctionBuilder::new("narrow", 8);
        let a = fb.param("a", 8);
        let x = fb.local("x", 4);
        // Three assignments whose 8-bit RHS exceeds 4 bits: the mutant
        // skips the mask on the third one.
        fb.assign(x, Expr::add(Expr::var(a), Expr::constant(0, 8)));
        fb.assign(x, Expr::add(Expr::var(a), Expr::constant(1, 8)));
        fb.assign(x, Expr::add(Expr::var(a), Expr::constant(2, 8)));
        fb.ret(Expr::var(x));
        let f = fb.build();
        let interp = Interpreter::new(&f).run(&[0xF0]).unwrap();
        let vm = Vm::new(compile(&f)).run(&[0xF0]).unwrap();
        assert_ne!(interp.return_value, vm.return_value);
    }
}
