//! Functions, variables and the construction API.

use crate::expr::Expr;
use crate::stmt::{CondId, ConfigId, Stmt, StmtId};

/// Identifier of a variable within one [`Function`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(u32);

impl VarId {
    /// Creates an id from a raw index (mainly for tests and tools).
    pub fn from_index(index: usize) -> Self {
        VarId(index as u32)
    }

    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Storage class of a variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarKind {
    /// Function parameter (bound by the caller).
    Param,
    /// Scalar local, initially 0.
    Local,
    /// Array local with the given element count, initially uninitialized
    /// (reads before writes are recorded by the interpreter — the
    /// memory-inspection capability the paper attributes to Laerte++).
    Array {
        /// Number of elements.
        len: u32,
    },
}

/// Declaration of one variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarDecl {
    /// Variable name (for reports and traces).
    pub name: String,
    /// Element bit-width (1..=64).
    pub width: u32,
    /// Storage class.
    pub kind: VarKind,
}

/// A behavioural function: declarations plus a structured statement body.
///
/// Construct via [`FunctionBuilder`]; construction assigns dense
/// [`StmtId`]s/[`CondId`]s used by the coverage metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    name: String,
    vars: Vec<VarDecl>,
    num_params: usize,
    ret_width: u32,
    body: Vec<Stmt>,
    num_statements: u32,
    num_conditions: u32,
}

impl Function {
    /// The function name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All variable declarations (parameters first).
    pub fn vars(&self) -> &[VarDecl] {
        &self.vars
    }

    /// Declaration of one variable.
    pub fn var(&self, v: VarId) -> &VarDecl {
        &self.vars[v.index()]
    }

    /// Number of parameters. [`FunctionBuilder`] places them in the leading
    /// variable slots, but a [`Function::rebuild`] may declare them
    /// anywhere.
    pub fn num_params(&self) -> usize {
        self.num_params
    }

    /// Parameter ids in declaration (= binding) order. Scans by
    /// [`VarKind::Param`] rather than assuming params occupy the leading
    /// slots, so rebuilt functions with late param declarations work.
    pub fn params(&self) -> Vec<VarId> {
        self.vars
            .iter()
            .enumerate()
            .filter(|(_, d)| d.kind == VarKind::Param)
            .map(|(i, _)| VarId::from_index(i))
            .collect()
    }

    /// Bit width of the return value.
    pub fn ret_width(&self) -> u32 {
        self.ret_width
    }

    /// The statement body.
    pub fn body(&self) -> &[Stmt] {
        &self.body
    }

    /// Total number of statements (dense id space for coverage).
    pub fn num_statements(&self) -> u32 {
        self.num_statements
    }

    /// Total number of branching conditions.
    pub fn num_conditions(&self) -> u32 {
        self.num_conditions
    }

    /// Looks a variable up by name.
    pub fn var_by_name(&self, name: &str) -> Option<VarId> {
        self.vars
            .iter()
            .position(|v| v.name == name)
            .map(VarId::from_index)
    }

    /// Visits every statement in the body, depth-first.
    pub fn visit_stmts<'a>(&'a self, f: &mut impl FnMut(&'a Stmt)) {
        for s in &self.body {
            s.visit(f);
        }
    }

    /// Rebuilds a function from transformed parts, re-running statement and
    /// condition numbering. This is the back door for program
    /// transformations (loop unrolling, fault injection, coverage probes):
    /// statement ids in `body` may be placeholders; they are renumbered
    /// densely here.
    pub fn rebuild(
        name: String,
        vars: Vec<VarDecl>,
        num_params: usize,
        ret_width: u32,
        body: Vec<Stmt>,
    ) -> Function {
        Function::from_parts(name, vars, num_params, ret_width, body)
    }

    /// Rebuilds a function from transformed parts, re-running statement and
    /// condition numbering (used by [`crate::unroll`]).
    pub(crate) fn from_parts(
        name: String,
        vars: Vec<VarDecl>,
        num_params: usize,
        ret_width: u32,
        mut body: Vec<Stmt>,
    ) -> Function {
        let mut next_stmt = 0u32;
        let mut next_cond = 0u32;
        number_block(&mut body, &mut next_stmt, &mut next_cond);
        Function {
            name,
            vars,
            num_params,
            ret_width,
            body,
            num_statements: next_stmt,
            num_conditions: next_cond,
        }
    }
}

/// Builds the statement list of one block (function body, branch arm or
/// loop body). Obtained from [`FunctionBuilder`] methods taking closures.
pub struct BlockBuilder<'a> {
    vars: &'a mut Vec<VarDecl>,
    stmts: &'a mut Vec<Stmt>,
}

impl<'a> BlockBuilder<'a> {
    /// Declares a scalar local (visible from here on; initial value 0).
    pub fn local(&mut self, name: &str, width: u32) -> VarId {
        assert!((1..=64).contains(&width), "width must be in 1..=64");
        self.vars.push(VarDecl {
            name: name.to_owned(),
            width,
            kind: VarKind::Local,
        });
        VarId((self.vars.len() - 1) as u32)
    }

    /// Declares an array local of `len` elements of `width` bits.
    pub fn array(&mut self, name: &str, width: u32, len: u32) -> VarId {
        assert!((1..=64).contains(&width), "width must be in 1..=64");
        assert!(len > 0, "array must have at least one element");
        self.vars.push(VarDecl {
            name: name.to_owned(),
            width,
            kind: VarKind::Array { len },
        });
        VarId((self.vars.len() - 1) as u32)
    }

    /// Appends `target = value`.
    pub fn assign(&mut self, target: VarId, value: Expr) {
        self.stmts.push(Stmt::Assign {
            id: StmtId(0),
            target,
            value,
        });
    }

    /// Appends `array[index] = value`.
    pub fn store(&mut self, array: VarId, index: Expr, value: Expr) {
        self.stmts.push(Stmt::Store {
            id: StmtId(0),
            array,
            index,
            value,
        });
    }

    /// Appends a two-armed conditional built by the closures.
    pub fn if_else(
        &mut self,
        cond: Expr,
        then_f: impl FnOnce(&mut BlockBuilder<'_>),
        else_f: impl FnOnce(&mut BlockBuilder<'_>),
    ) {
        let mut then_ = Vec::new();
        then_f(&mut BlockBuilder {
            vars: self.vars,
            stmts: &mut then_,
        });
        let mut else_ = Vec::new();
        else_f(&mut BlockBuilder {
            vars: self.vars,
            stmts: &mut else_,
        });
        self.stmts.push(Stmt::If {
            id: StmtId(0),
            cond_id: CondId(0),
            cond,
            then_,
            else_,
        });
    }

    /// Appends a conditional with an empty else arm.
    pub fn if_(&mut self, cond: Expr, then_f: impl FnOnce(&mut BlockBuilder<'_>)) {
        self.if_else(cond, then_f, |_| {});
    }

    /// Appends a pre-tested loop built by the closure.
    pub fn while_(&mut self, cond: Expr, body_f: impl FnOnce(&mut BlockBuilder<'_>)) {
        let mut body = Vec::new();
        body_f(&mut BlockBuilder {
            vars: self.vars,
            stmts: &mut body,
        });
        self.stmts.push(Stmt::While {
            id: StmtId(0),
            cond_id: CondId(0),
            cond,
            body,
        });
    }

    /// Appends `return value`.
    pub fn ret(&mut self, value: Expr) {
        self.stmts.push(Stmt::Return {
            id: StmtId(0),
            value: Some(value),
        });
    }

    /// Appends a value-less return.
    pub fn ret_void(&mut self) {
        self.stmts.push(Stmt::Return {
            id: StmtId(0),
            value: None,
        });
    }

    /// Appends a level-3 `reconfigure(config)` instrumentation call.
    pub fn reconfigure(&mut self, config: ConfigId) {
        self.stmts.push(Stmt::Reconfigure {
            id: StmtId(0),
            config,
        });
    }

    /// Appends a level-3 FPGA resource call.
    pub fn resource_call(&mut self, func: &str, args: Vec<Expr>, target: Option<VarId>) {
        self.stmts.push(Stmt::ResourceCall {
            id: StmtId(0),
            func: func.to_owned(),
            args,
            target,
        });
    }
}

/// Builds a [`Function`]: declare parameters, emit the body with the
/// [`BlockBuilder`] API (available directly on the function builder), then
/// [`build`](FunctionBuilder::build).
#[derive(Debug)]
pub struct FunctionBuilder {
    name: String,
    ret_width: u32,
    vars: Vec<VarDecl>,
    num_params: usize,
    body: Vec<Stmt>,
}

impl FunctionBuilder {
    /// Starts a function with the given name and return bit-width.
    ///
    /// # Panics
    ///
    /// Panics if `ret_width` is not in `1..=64`.
    pub fn new(name: &str, ret_width: u32) -> Self {
        assert!((1..=64).contains(&ret_width), "width must be in 1..=64");
        FunctionBuilder {
            name: name.to_owned(),
            ret_width,
            vars: Vec::new(),
            num_params: 0,
            body: Vec::new(),
        }
    }

    /// Declares the next parameter.
    ///
    /// # Panics
    ///
    /// Panics if called after any local has been declared (parameters must
    /// occupy the leading variable slots) or if the width is invalid.
    pub fn param(&mut self, name: &str, width: u32) -> VarId {
        assert!((1..=64).contains(&width), "width must be in 1..=64");
        assert_eq!(
            self.vars.len(),
            self.num_params,
            "parameters must be declared before locals"
        );
        self.vars.push(VarDecl {
            name: name.to_owned(),
            width,
            kind: VarKind::Param,
        });
        self.num_params += 1;
        VarId((self.vars.len() - 1) as u32)
    }

    fn block(&mut self) -> BlockBuilder<'_> {
        BlockBuilder {
            vars: &mut self.vars,
            stmts: &mut self.body,
        }
    }

    /// Declares a scalar local. See [`BlockBuilder::local`].
    pub fn local(&mut self, name: &str, width: u32) -> VarId {
        self.block().local(name, width)
    }

    /// Declares an array local. See [`BlockBuilder::array`].
    pub fn array(&mut self, name: &str, width: u32, len: u32) -> VarId {
        self.block().array(name, width, len)
    }

    /// Appends an assignment. See [`BlockBuilder::assign`].
    pub fn assign(&mut self, target: VarId, value: Expr) {
        self.block().assign(target, value);
    }

    /// Appends an array store. See [`BlockBuilder::store`].
    pub fn store(&mut self, array: VarId, index: Expr, value: Expr) {
        self.block().store(array, index, value);
    }

    /// Appends a two-armed conditional. See [`BlockBuilder::if_else`].
    pub fn if_else(
        &mut self,
        cond: Expr,
        then_f: impl FnOnce(&mut BlockBuilder<'_>),
        else_f: impl FnOnce(&mut BlockBuilder<'_>),
    ) {
        self.block().if_else(cond, then_f, else_f);
    }

    /// Appends a one-armed conditional. See [`BlockBuilder::if_`].
    pub fn if_(&mut self, cond: Expr, then_f: impl FnOnce(&mut BlockBuilder<'_>)) {
        self.block().if_(cond, then_f);
    }

    /// Appends a loop. See [`BlockBuilder::while_`].
    pub fn while_(&mut self, cond: Expr, body_f: impl FnOnce(&mut BlockBuilder<'_>)) {
        self.block().while_(cond, body_f);
    }

    /// Appends `return value`.
    pub fn ret(&mut self, value: Expr) {
        self.block().ret(value);
    }

    /// Appends a value-less return.
    pub fn ret_void(&mut self) {
        self.block().ret_void();
    }

    /// Appends a reconfiguration call.
    pub fn reconfigure(&mut self, config: ConfigId) {
        self.block().reconfigure(config);
    }

    /// Appends an FPGA resource call.
    pub fn resource_call(&mut self, func: &str, args: Vec<Expr>, target: Option<VarId>) {
        self.block().resource_call(func, args, target);
    }

    /// Finalizes the function, assigning dense statement and condition ids.
    pub fn build(self) -> Function {
        let mut body = self.body;
        let mut next_stmt = 0u32;
        let mut next_cond = 0u32;
        number_block(&mut body, &mut next_stmt, &mut next_cond);
        Function {
            name: self.name,
            vars: self.vars,
            num_params: self.num_params,
            ret_width: self.ret_width,
            body,
            num_statements: next_stmt,
            num_conditions: next_cond,
        }
    }
}

fn number_block(stmts: &mut [Stmt], next_stmt: &mut u32, next_cond: &mut u32) {
    for s in stmts {
        match s {
            Stmt::Assign { id, .. }
            | Stmt::Store { id, .. }
            | Stmt::Return { id, .. }
            | Stmt::Reconfigure { id, .. }
            | Stmt::ResourceCall { id, .. } => {
                *id = StmtId(*next_stmt);
                *next_stmt += 1;
            }
            Stmt::If {
                id,
                cond_id,
                then_,
                else_,
                ..
            } => {
                *id = StmtId(*next_stmt);
                *next_stmt += 1;
                *cond_id = CondId(*next_cond);
                *next_cond += 1;
                number_block(then_, next_stmt, next_cond);
                number_block(else_, next_stmt, next_cond);
            }
            Stmt::While {
                id, cond_id, body, ..
            } => {
                *id = StmtId(*next_stmt);
                *next_stmt += 1;
                *cond_id = CondId(*next_cond);
                *next_cond += 1;
                number_block(body, next_stmt, next_cond);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_numbers_statements_densely() {
        let mut fb = FunctionBuilder::new("f", 8);
        let a = fb.param("a", 8);
        let x = fb.local("x", 8);
        fb.assign(x, Expr::var(a));
        fb.if_else(
            Expr::lt(Expr::var(x), Expr::constant(10, 8)),
            |t| t.assign(x, Expr::constant(1, 8)),
            |e| e.assign(x, Expr::constant(2, 8)),
        );
        fb.ret(Expr::var(x));
        let f = fb.build();
        assert_eq!(f.num_statements(), 5); // assign, if, 2 arms, return
        assert_eq!(f.num_conditions(), 1);
        let mut ids = Vec::new();
        f.visit_stmts(&mut |s| ids.push(s.id().index()));
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..5).collect::<Vec<_>>());
    }

    #[test]
    fn params_precede_locals() {
        let mut fb = FunctionBuilder::new("f", 8);
        let a = fb.param("a", 8);
        let b = fb.param("b", 16);
        let x = fb.local("x", 32);
        let f = {
            let mut fb = fb;
            fb.ret(Expr::var(a));
            fb.build()
        };
        assert_eq!(f.num_params(), 2);
        assert_eq!(f.params(), vec![a, b]);
        assert_eq!(f.var(x).width, 32);
        assert_eq!(f.var(a).kind, VarKind::Param);
        assert_eq!(f.var(x).kind, VarKind::Local);
    }

    #[test]
    #[should_panic(expected = "parameters must be declared before locals")]
    fn late_param_panics() {
        let mut fb = FunctionBuilder::new("f", 8);
        fb.local("x", 8);
        fb.param("a", 8);
    }

    #[test]
    fn var_lookup_by_name() {
        let mut fb = FunctionBuilder::new("f", 8);
        let a = fb.param("alpha", 8);
        fb.ret(Expr::var(a));
        let f = fb.build();
        assert_eq!(f.var_by_name("alpha"), Some(a));
        assert_eq!(f.var_by_name("beta"), None);
    }

    #[test]
    fn arrays_carry_length() {
        let mut fb = FunctionBuilder::new("f", 8);
        let arr = fb.array("buf", 8, 16);
        fb.ret(Expr::constant(0, 8));
        let f = fb.build();
        assert_eq!(f.var(arr).kind, VarKind::Array { len: 16 });
    }

    #[test]
    fn nested_loops_and_branches_number_correctly() {
        let mut fb = FunctionBuilder::new("f", 8);
        let i = fb.local("i", 8);
        fb.while_(Expr::lt(Expr::var(i), Expr::constant(4, 8)), |b| {
            b.if_(Expr::eq(Expr::var(i), Expr::constant(2, 8)), |t| {
                t.assign(i, Expr::constant(4, 8));
            });
            b.assign(i, Expr::add(Expr::var(i), Expr::constant(1, 8)));
        });
        fb.ret(Expr::var(i));
        let f = fb.build();
        assert_eq!(f.num_conditions(), 2); // while + if
        assert_eq!(f.num_statements(), 5); // while, if, inner assign, incr, ret
    }
}
