//! Structured statements.

use crate::expr::Expr;
use crate::func::VarId;

/// Identifier of a statement (assigned by [`crate::Function`] numbering;
/// the unit of statement coverage).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StmtId(pub(crate) u32);

impl StmtId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// A placeholder id for statements built by program transformations;
    /// replaced by the dense numbering that [`crate::Function::rebuild`]
    /// performs.
    pub fn placeholder() -> Self {
        StmtId(0)
    }
}

/// Identifier of a branching condition (unit of branch coverage).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CondId(pub(crate) u32);

impl CondId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of an FPGA configuration (context), e.g. the paper's
/// `config1` / `config2`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConfigId(pub u32);

impl ConfigId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A structured statement.
///
/// `id` fields are assigned during [`crate::Function`] construction and are
/// dense (0..num_statements); `cond` ids are likewise dense per function.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Scalar assignment `target = value`.
    Assign {
        /// Statement id (coverage point).
        id: StmtId,
        /// Assigned variable.
        target: VarId,
        /// Right-hand side.
        value: Expr,
    },
    /// Array element store `array[index] = value`. Out-of-range stores are
    /// dropped (keeping the semantics total) but recorded in the run's
    /// memory-inspection report.
    Store {
        /// Statement id (coverage point).
        id: StmtId,
        /// Target array variable.
        array: VarId,
        /// Element index.
        index: Expr,
        /// Stored value.
        value: Expr,
    },
    /// Two-armed conditional.
    If {
        /// Statement id (coverage point).
        id: StmtId,
        /// Branch-coverage id for the condition.
        cond_id: CondId,
        /// 1-bit condition.
        cond: Expr,
        /// Taken when the condition is non-zero.
        then_: Vec<Stmt>,
        /// Taken when the condition is zero (may be empty).
        else_: Vec<Stmt>,
    },
    /// Pre-tested loop.
    While {
        /// Statement id (coverage point).
        id: StmtId,
        /// Branch-coverage id for the condition.
        cond_id: CondId,
        /// 1-bit condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// Return from the function with an optional value.
    Return {
        /// Statement id (coverage point).
        id: StmtId,
        /// Returned value, if the function returns one.
        value: Option<Expr>,
    },
    /// Level-3 instrumentation: load the given FPGA configuration.
    /// Semantically a no-op for dataflow; tracked by the interpreter and
    /// verified by SymbC.
    Reconfigure {
        /// Statement id (coverage point).
        id: StmtId,
        /// Configuration to download.
        config: ConfigId,
    },
    /// Level-3 instrumentation: invoke a hardware resource `func` that must
    /// currently be loaded in the FPGA, assigning its (opaque) result to
    /// `target` if present.
    ResourceCall {
        /// Statement id (coverage point).
        id: StmtId,
        /// Name of the FPGA-resident function.
        func: String,
        /// Argument expressions (evaluated, recorded in the call trace).
        args: Vec<Expr>,
        /// Optional result target.
        target: Option<VarId>,
    },
}

impl Stmt {
    /// The statement's coverage id.
    pub fn id(&self) -> StmtId {
        match self {
            Stmt::Assign { id, .. }
            | Stmt::Store { id, .. }
            | Stmt::If { id, .. }
            | Stmt::While { id, .. }
            | Stmt::Return { id, .. }
            | Stmt::Reconfigure { id, .. }
            | Stmt::ResourceCall { id, .. } => *id,
        }
    }

    /// Visits this statement and all nested statements, depth-first.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Stmt)) {
        f(self);
        match self {
            Stmt::If { then_, else_, .. } => {
                for s in then_ {
                    s.visit(f);
                }
                for s in else_ {
                    s.visit(f);
                }
            }
            Stmt::While { body, .. } => {
                for s in body {
                    s.visit(f);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::func::VarId;

    #[test]
    fn visit_reaches_nested_statements() {
        let v = VarId::from_index(0);
        let inner = Stmt::Assign {
            id: StmtId(1),
            target: v,
            value: Expr::constant(1, 8),
        };
        let outer = Stmt::If {
            id: StmtId(0),
            cond_id: CondId(0),
            cond: Expr::constant(1, 1),
            then_: vec![inner],
            else_: vec![],
        };
        let mut ids = Vec::new();
        outer.visit(&mut |s| ids.push(s.id()));
        assert_eq!(ids, vec![StmtId(0), StmtId(1)]);
    }

    #[test]
    fn config_id_index() {
        assert_eq!(ConfigId(2).index(), 2);
    }
}
