//! Pretty-printing of behavioural functions.
//!
//! Counterexamples, SymbC violation reports and documentation all need a
//! readable rendering of the IR; this module prints a function in a
//! C-flavoured concrete syntax with variable *names* (not ids), statement
//! ids as optional margin comments, and stable formatting (the output is
//! deterministic, so it can be snapshot-tested).

use crate::expr::Expr;
use crate::func::{Function, VarKind};
use crate::stmt::Stmt;
use std::fmt::Write as _;

/// Renders `func` as readable pseudo-C.
///
/// With `with_ids`, every statement line carries its [`crate::StmtId`] as a
/// trailing comment — the ids SymbC violations and coverage reports refer
/// to.
pub fn function_to_string(func: &Function, with_ids: bool) -> String {
    let mut out = String::new();
    let params: Vec<String> = func
        .params()
        .iter()
        .map(|&p| {
            let d = func.var(p);
            format!("u{} {}", d.width, d.name)
        })
        .collect();
    let _ = writeln!(
        out,
        "fn {}({}) -> u{} {{",
        func.name(),
        params.join(", "),
        func.ret_width()
    );
    // Locals, declared up front like the builder sees them.
    for (i, d) in func.vars().iter().enumerate().skip(func.num_params()) {
        let _ = i;
        match d.kind {
            VarKind::Local => {
                let _ = writeln!(out, "  let {}: u{};", d.name, d.width);
            }
            VarKind::Array { len } => {
                let _ = writeln!(out, "  let {}: [u{}; {}];", d.name, d.width, len);
            }
            VarKind::Param => {}
        }
    }
    print_block(&mut out, func, func.body(), 1, with_ids);
    let _ = writeln!(out, "}}");
    out
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn id_comment(s: &Stmt, with_ids: bool) -> String {
    if with_ids {
        format!("  // s{}", s.id().index())
    } else {
        String::new()
    }
}

fn expr_str(func: &Function, e: &Expr) -> String {
    // Reuse the Display impl but substitute variable names for v<N>.
    let raw = e.to_string();
    substitute_names(func, &raw)
}

fn substitute_names(func: &Function, raw: &str) -> String {
    // Replace longest indices first so v12 is not clobbered by v1.
    let mut s = raw.to_owned();
    let mut ids: Vec<usize> = (0..func.vars().len()).collect();
    ids.sort_by_key(|&i| std::cmp::Reverse(i));
    for i in ids {
        let name = &func.vars()[i].name;
        s = s.replace(&format!("v{i}["), &format!("{name}["));
        s = s.replace(&format!("v{i}"), name);
    }
    s
}

fn print_block(out: &mut String, func: &Function, stmts: &[Stmt], depth: usize, with_ids: bool) {
    for s in stmts {
        match s {
            Stmt::Assign { target, value, .. } => {
                indent(out, depth);
                let _ = writeln!(
                    out,
                    "{} = {};{}",
                    func.var(*target).name,
                    expr_str(func, value),
                    id_comment(s, with_ids)
                );
            }
            Stmt::Store {
                array,
                index,
                value,
                ..
            } => {
                indent(out, depth);
                let _ = writeln!(
                    out,
                    "{}[{}] = {};{}",
                    func.var(*array).name,
                    expr_str(func, index),
                    expr_str(func, value),
                    id_comment(s, with_ids)
                );
            }
            Stmt::If {
                cond, then_, else_, ..
            } => {
                indent(out, depth);
                let _ = writeln!(
                    out,
                    "if {} {{{}",
                    expr_str(func, cond),
                    id_comment(s, with_ids)
                );
                print_block(out, func, then_, depth + 1, with_ids);
                if !else_.is_empty() {
                    indent(out, depth);
                    let _ = writeln!(out, "}} else {{");
                    print_block(out, func, else_, depth + 1, with_ids);
                }
                indent(out, depth);
                let _ = writeln!(out, "}}");
            }
            Stmt::While { cond, body, .. } => {
                indent(out, depth);
                let _ = writeln!(
                    out,
                    "while {} {{{}",
                    expr_str(func, cond),
                    id_comment(s, with_ids)
                );
                print_block(out, func, body, depth + 1, with_ids);
                indent(out, depth);
                let _ = writeln!(out, "}}");
            }
            Stmt::Return { value, .. } => {
                indent(out, depth);
                match value {
                    Some(v) => {
                        let _ = writeln!(
                            out,
                            "return {};{}",
                            expr_str(func, v),
                            id_comment(s, with_ids)
                        );
                    }
                    None => {
                        let _ = writeln!(out, "return;{}", id_comment(s, with_ids));
                    }
                }
            }
            Stmt::Reconfigure { config, .. } => {
                indent(out, depth);
                let _ = writeln!(
                    out,
                    "reconfigure(config{});{}",
                    config.index() + 1,
                    id_comment(s, with_ids)
                );
            }
            Stmt::ResourceCall {
                func: fname,
                args,
                target,
                ..
            } => {
                indent(out, depth);
                let args_s: Vec<String> = args.iter().map(|a| expr_str(func, a)).collect();
                match target {
                    Some(t) => {
                        let _ = writeln!(
                            out,
                            "{} = fpga::{}({});{}",
                            func.var(*t).name,
                            fname,
                            args_s.join(", "),
                            id_comment(s, with_ids)
                        );
                    }
                    None => {
                        let _ = writeln!(
                            out,
                            "fpga::{}({});{}",
                            fname,
                            args_s.join(", "),
                            id_comment(s, with_ids)
                        );
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::FunctionBuilder;
    use crate::stmt::ConfigId;

    fn sample() -> Function {
        let mut fb = FunctionBuilder::new("demo", 16);
        let n = fb.param("n", 8);
        let acc = fb.local("acc", 16);
        let buf = fb.array("buf", 16, 4);
        fb.store(buf, Expr::constant(0, 8), Expr::constant(7, 16));
        fb.reconfigure(ConfigId(0));
        fb.while_(Expr::lt(Expr::var(acc), Expr::var(n)), |b| {
            b.resource_call("distance", vec![Expr::var(acc)], Some(acc));
        });
        fb.if_else(
            Expr::eq(Expr::var(n), Expr::constant(0, 8)),
            |t| t.ret(Expr::constant(0, 16)),
            |e| e.ret(Expr::index(buf, Expr::constant(0, 8))),
        );
        fb.build()
    }

    #[test]
    fn renders_all_statement_kinds() {
        let f = sample();
        let text = function_to_string(&f, false);
        assert!(text.contains("fn demo(u8 n) -> u16 {"));
        assert!(text.contains("let acc: u16;"));
        assert!(text.contains("let buf: [u16; 4];"));
        assert!(text.contains("buf[0u8] = 7u16;"));
        assert!(text.contains("reconfigure(config1);"));
        assert!(text.contains("while (acc < n) {"));
        assert!(text.contains("acc = fpga::distance(acc);"));
        assert!(text.contains("if (n == 0u8) {"));
        assert!(text.contains("} else {"));
        assert!(text.contains("return buf[0u8];"));
    }

    #[test]
    fn ids_appear_when_requested() {
        let f = sample();
        let with = function_to_string(&f, true);
        let without = function_to_string(&f, false);
        assert!(with.contains("// s0"));
        assert!(!without.contains("// s0"));
    }

    #[test]
    fn name_substitution_handles_double_digits() {
        let mut fb = FunctionBuilder::new("many", 8);
        let mut last = fb.param("p", 8);
        for i in 0..12 {
            let v = fb.local(&format!("local{i}"), 8);
            fb.assign(v, Expr::var(last));
            last = v;
        }
        fb.ret(Expr::var(last));
        let f = fb.build();
        let text = function_to_string(&f, false);
        // v11 must render as local10, never as "local1" + stray "1".
        assert!(text.contains("return local11;"));
        assert!(!text.contains('v'), "raw variable ids leaked: {text}");
    }

    #[test]
    fn output_is_deterministic() {
        let f = sample();
        assert_eq!(function_to_string(&f, true), function_to_string(&f, true));
    }
}
