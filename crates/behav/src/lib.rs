//! Behavioural IR: the "C level" of the Symbad flow.
//!
//! Levels 1–3 of the methodology operate on behavioural descriptions —
//! the reference C model, SystemC module bodies, and the embedded software
//! instrumented with reconfiguration calls. This crate is the shared
//! intermediate representation for all of them:
//!
//! * word-level [`Expr`]essions and structured [`Stmt`]ements (assignments,
//!   conditionals, bounded loops, array accesses, returns),
//! * the two level-3 instrumentation primitives, [`Stmt::Reconfigure`] and
//!   [`Stmt::ResourceCall`], checked by the `symbc` crate,
//! * a deterministic [`interp`]reter with operation counting (feeding the
//!   `platform` crate's automatic SW timing annotation), coverage recording
//!   and high-level (bit) fault injection for the `atpg` crate,
//! * coverage bookkeeping ([`coverage`]) for the statement / branch /
//!   condition / bit metrics of Laerte++,
//! * a bounded [`unroll`] transform producing the loop-free form consumed
//!   by the `hdl` crate's behavioural synthesis,
//! * a [`bytecode`] compiler and register VM — the decode-once
//!   execute-many fast path for hot callers (ATPG fault sweeps, per-frame
//!   kernel execution), differentially validated against the interpreter.
//!
//! # Example
//!
//! ```
//! use behav::{Expr, FunctionBuilder, interp::Interpreter};
//!
//! // f(a, b) = |a - b|
//! let mut fb = FunctionBuilder::new("absdiff", 16);
//! let a = fb.param("a", 16);
//! let b = fb.param("b", 16);
//! let lt = Expr::lt(Expr::var(a), Expr::var(b));
//! fb.if_else(
//!     lt,
//!     |t| t.ret(Expr::sub(Expr::var(b), Expr::var(a))),
//!     |e| e.ret(Expr::sub(Expr::var(a), Expr::var(b))),
//! );
//! let f = fb.build();
//! let out = Interpreter::new(&f).run(&[3, 10]).unwrap();
//! assert_eq!(out.return_value, Some(7));
//! ```

pub mod bytecode;
pub mod coverage;
pub mod expr;
pub mod func;
pub mod interp;
pub mod pretty;
pub mod stmt;
pub mod unroll;

pub use bytecode::{BehavExec, Program, Runner, Vm};
pub use coverage::{CoverageReport, CoverageSet};
pub use expr::{BinOp, Expr, UnaryOp};
pub use func::{BlockBuilder, Function, FunctionBuilder, VarDecl, VarId, VarKind};
pub use stmt::{CondId, ConfigId, Stmt, StmtId};
