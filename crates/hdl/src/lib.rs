//! RTL: the level-4 hardware representation of the Symbad flow.
//!
//! At level 4 the chosen architecture is mapped to RTL: the FPGA-resident
//! kernels (DISTANCE, ROOT in the case study) are produced by behavioural
//! synthesis, and the bus interface wrappers are small FSMs. This crate
//! provides:
//!
//! * [`rtl`] — a word-level sequential netlist IR with a cycle-accurate
//!   simulator,
//! * [`lower`] — bit-blasting of the netlist through a backend-generic
//!   [`lower::BitCtx`], with backends for the `sat` crate (Tseitin CNF, used
//!   by BMC and SAT-ATPG) and the `bdd` crate (symbolic transition
//!   relations),
//! * [`synth`] — behavioural synthesis: loop-free `behav` functions are
//!   if-converted into combinational RTL,
//! * [`fsm`] — a finite-state-machine builder for the bus-protocol wrappers,
//! * [`vhdl`] — emission of the verified netlist as synthesizable VHDL-93,
//!   the flow's "FPGA RTL VHDL" deliverable,
//! * [`vcd`] — value-change-dump export of RTL simulations for waveform
//!   viewers.
//!
//! # Example: synthesize and simulate |a−b|
//!
//! ```
//! use behav::{Expr, FunctionBuilder};
//! use hdl::synth::synthesize;
//!
//! let mut fb = FunctionBuilder::new("absdiff", 16);
//! let a = fb.param("a", 16);
//! let b = fb.param("b", 16);
//! fb.if_else(
//!     Expr::lt(Expr::var(a), Expr::var(b)),
//!     |t| t.ret(Expr::sub(Expr::var(b), Expr::var(a))),
//!     |e| e.ret(Expr::sub(Expr::var(a), Expr::var(b))),
//! );
//! let f = fb.build();
//! let rtl = synthesize(&f).expect("synthesizable");
//! let out = rtl.eval_combinational(&[3, 10]);
//! assert_eq!(out[0], 7);
//! ```

pub mod fsm;
pub mod lower;
pub mod rtl;
pub mod synth;
pub mod vcd;
pub mod vhdl;

pub use lower::{BddBackend, BitCtx, CnfBackend, LoweredCircuit};
pub use rtl::{Rtl, RtlOp, SigId};
pub use synth::{synthesize, SynthError};
