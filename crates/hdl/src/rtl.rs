//! The word-level RTL netlist and its cycle-accurate simulator.
//!
//! A netlist is a DAG of word-valued nodes. Non-register nodes may only
//! reference earlier nodes (enforced by the builder API), so combinational
//! evaluation is a single in-order sweep. Registers close sequential loops:
//! they read their current state during evaluation and latch their `next`
//! input at the cycle boundary.

use behav::interp::{apply_binop, mask};
use behav::BinOp;
use std::fmt;

/// Index of a node (signal) in an [`Rtl`] netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SigId(pub(crate) usize);

impl SigId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Operation of one netlist node.
#[derive(Debug, Clone, PartialEq)]
pub enum RtlOp {
    /// A constant.
    Const(u64),
    /// A primary input (order of declaration = input index).
    Input,
    /// A register with the given reset value; its `next` input is attached
    /// via [`Rtl::set_next`].
    Reg {
        /// Reset / initial value.
        init: u64,
    },
    /// Bitwise complement.
    Not(SigId),
    /// Two's-complement negation.
    Neg(SigId),
    /// A binary word operation (Div/Rem are not representable; the
    /// synthesizer rejects them, as division is implemented iteratively in
    /// hardware).
    Binary(BinOp, SigId, SigId),
    /// 2:1 word multiplexer (`sel` must be 1 bit wide).
    Mux {
        /// 1-bit selector.
        sel: SigId,
        /// Value when `sel` is 1.
        then_: SigId,
        /// Value when `sel` is 0.
        else_: SigId,
    },
}

#[derive(Debug, Clone)]
struct Node {
    op: RtlOp,
    width: u32,
    name: Option<String>,
}

/// A sequential word-level netlist.
#[derive(Debug, Clone, Default)]
pub struct Rtl {
    name: String,
    nodes: Vec<Node>,
    inputs: Vec<SigId>,
    registers: Vec<(SigId, Option<SigId>)>,
    outputs: Vec<(String, SigId)>,
}

impl Rtl {
    /// Creates an empty netlist with the given module name.
    pub fn new(name: &str) -> Self {
        Rtl {
            name: name.to_owned(),
            ..Rtl::default()
        }
    }

    /// Module name.
    pub fn name(&self) -> &str {
        &self.name
    }

    fn push(&mut self, op: RtlOp, width: u32) -> SigId {
        assert!((1..=64).contains(&width), "width must be in 1..=64");
        self.nodes.push(Node {
            op,
            width,
            name: None,
        });
        SigId(self.nodes.len() - 1)
    }

    /// Adds a constant node.
    ///
    /// # Panics
    ///
    /// Panics if `value` does not fit in `width` bits.
    pub fn constant(&mut self, value: u64, width: u32) -> SigId {
        assert!(
            width == 64 || value < (1u64 << width),
            "constant {value} does not fit in {width} bits"
        );
        self.push(RtlOp::Const(value), width)
    }

    /// Adds a primary input.
    pub fn input(&mut self, name: &str, width: u32) -> SigId {
        let id = self.push(RtlOp::Input, width);
        self.nodes[id.0].name = Some(name.to_owned());
        self.inputs.push(id);
        id
    }

    /// Adds a register with a reset value; connect its next-state input
    /// later with [`Rtl::set_next`].
    pub fn reg(&mut self, name: &str, width: u32, init: u64) -> SigId {
        let id = self.push(RtlOp::Reg { init }, width);
        self.nodes[id.0].name = Some(name.to_owned());
        self.registers.push((id, None));
        id
    }

    /// Connects the next-state input of `reg`.
    ///
    /// # Panics
    ///
    /// Panics if `reg` is not a register or widths mismatch.
    pub fn set_next(&mut self, reg: SigId, next: SigId) {
        assert_eq!(
            self.nodes[reg.0].width, self.nodes[next.0].width,
            "register next-state width mismatch"
        );
        let slot = self
            .registers
            .iter_mut()
            .find(|(r, _)| *r == reg)
            .expect("set_next on a non-register signal");
        slot.1 = Some(next);
    }

    /// Bitwise complement.
    pub fn not(&mut self, a: SigId) -> SigId {
        let w = self.width(a);
        self.push(RtlOp::Not(a), w)
    }

    /// Two's-complement negation.
    pub fn neg(&mut self, a: SigId) -> SigId {
        let w = self.width(a);
        self.push(RtlOp::Neg(a), w)
    }

    /// Binary word operation; the result width is the max operand width
    /// (operands are zero-extended), or 1 for comparisons.
    ///
    /// # Panics
    ///
    /// Panics on `Div`/`Rem`, which have no combinational RTL node.
    pub fn binary(&mut self, op: BinOp, a: SigId, b: SigId) -> SigId {
        assert!(
            !matches!(op, BinOp::Div | BinOp::Rem),
            "division has no direct RTL node; synthesize it iteratively"
        );
        let w = if op.is_comparison() {
            1
        } else {
            self.width(a).max(self.width(b))
        };
        self.push(RtlOp::Binary(op, a, b), w)
    }

    /// 2:1 multiplexer.
    ///
    /// # Panics
    ///
    /// Panics if `sel` is not 1 bit wide or arm widths mismatch.
    pub fn mux(&mut self, sel: SigId, then_: SigId, else_: SigId) -> SigId {
        assert_eq!(self.width(sel), 1, "mux selector must be 1 bit");
        let w = self.width(then_).max(self.width(else_));
        self.push(RtlOp::Mux { sel, then_, else_ }, w)
    }

    /// Declares `sig` as an output under `name`.
    pub fn output(&mut self, name: &str, sig: SigId) {
        self.outputs.push((name.to_owned(), sig));
    }

    /// Redirects an existing output to another signal (used for fault
    /// injection by the property-coverage checker).
    ///
    /// # Panics
    ///
    /// Panics if no output with that name exists.
    pub fn replace_output(&mut self, name: &str, sig: SigId) {
        let slot = self
            .outputs
            .iter_mut()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("no output named `{name}`"));
        slot.1 = sig;
    }

    /// Width of a signal.
    pub fn width(&self, sig: SigId) -> u32 {
        self.nodes[sig.0].width
    }

    /// Operation of a signal.
    pub fn op(&self, sig: SigId) -> &RtlOp {
        &self.nodes[sig.0].op
    }

    /// Optional name of a signal.
    pub fn signal_name(&self, sig: SigId) -> Option<&str> {
        self.nodes[sig.0].name.as_deref()
    }

    /// Primary inputs in declaration order.
    pub fn inputs(&self) -> &[SigId] {
        &self.inputs
    }

    /// Registers as `(register, next)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if any register's next-state input was never connected.
    pub fn registers(&self) -> Vec<(SigId, SigId)> {
        self.registers
            .iter()
            .map(|&(r, n)| (r, n.expect("register next-state not connected")))
            .collect()
    }

    /// Number of registers.
    pub fn num_registers(&self) -> usize {
        self.registers.len()
    }

    /// Outputs as `(name, signal)` pairs.
    pub fn outputs(&self) -> &[(String, SigId)] {
        &self.outputs
    }

    /// Total number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Total state bits (sum of register widths) — the model-checking state
    /// space is `2^state_bits`.
    pub fn state_bits(&self) -> u32 {
        self.registers
            .iter()
            .map(|&(r, _)| self.nodes[r.0].width)
            .sum()
    }

    /// Evaluates all node values for one cycle given primary-input values
    /// and the current register state.
    fn eval_nodes(&self, inputs: &[u64], reg_state: &[u64]) -> Vec<u64> {
        assert_eq!(inputs.len(), self.inputs.len(), "input arity mismatch");
        let mut values = vec![0u64; self.nodes.len()];
        let mut input_iter = 0usize;
        let mut reg_iter = 0usize;
        for (i, node) in self.nodes.iter().enumerate() {
            let w = node.width;
            values[i] = match &node.op {
                RtlOp::Const(v) => *v,
                RtlOp::Input => {
                    let v = inputs[input_iter] & mask(w);
                    input_iter += 1;
                    v
                }
                RtlOp::Reg { .. } => {
                    let v = reg_state[reg_iter] & mask(w);
                    reg_iter += 1;
                    v
                }
                RtlOp::Not(a) => !values[a.0] & mask(w),
                RtlOp::Neg(a) => values[a.0].wrapping_neg() & mask(w),
                RtlOp::Binary(op, a, b) => {
                    let wa = self.nodes[a.0].width.max(self.nodes[b.0].width);
                    apply_binop(*op, values[a.0], values[b.0], wa)
                }
                RtlOp::Mux { sel, then_, else_ } => {
                    if values[sel.0] != 0 {
                        values[then_.0]
                    } else {
                        values[else_.0]
                    }
                }
            };
        }
        values
    }

    /// Evaluates a purely combinational netlist (no registers): returns the
    /// output values for the given inputs.
    ///
    /// # Panics
    ///
    /// Panics if the netlist contains registers.
    pub fn eval_combinational(&self, inputs: &[u64]) -> Vec<u64> {
        assert!(
            self.registers.is_empty(),
            "eval_combinational on a sequential netlist"
        );
        let values = self.eval_nodes(inputs, &[]);
        self.outputs.iter().map(|&(_, s)| values[s.0]).collect()
    }

    /// Evaluates and returns the value of *every* node for one cycle —
    /// the full visibility a waveform dump ([`crate::vcd`]) needs.
    pub fn node_values(&self, inputs: &[u64], state: &[u64]) -> Vec<u64> {
        self.eval_nodes(inputs, state)
    }

    /// Reset register state.
    pub fn reset_state(&self) -> Vec<u64> {
        self.registers
            .iter()
            .map(|&(r, _)| match self.nodes[r.0].op {
                RtlOp::Reg { init } => init & mask(self.nodes[r.0].width),
                _ => unreachable!("registers vector holds only Reg nodes"),
            })
            .collect()
    }

    /// Simulates one clock cycle: returns `(outputs, next_state)`.
    pub fn step(&self, inputs: &[u64], state: &[u64]) -> (Vec<u64>, Vec<u64>) {
        let values = self.eval_nodes(inputs, state);
        let outputs = self.outputs.iter().map(|&(_, s)| values[s.0]).collect();
        let next = self
            .registers
            .iter()
            .map(|&(r, n)| {
                let n = n.expect("register next-state not connected");
                values[n.0] & mask(self.nodes[r.0].width)
            })
            .collect();
        (outputs, next)
    }

    /// Simulates `input_trace.len()` cycles from reset; returns the output
    /// trace (one vector per cycle).
    pub fn simulate(&self, input_trace: &[Vec<u64>]) -> Vec<Vec<u64>> {
        let mut state = self.reset_state();
        let mut out = Vec::with_capacity(input_trace.len());
        for inputs in input_trace {
            let (o, next) = self.step(inputs, &state);
            out.push(o);
            state = next;
        }
        out
    }
}

impl fmt::Display for Rtl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "module {}: {} nodes, {} inputs, {} regs ({} state bits), {} outputs",
            self.name,
            self.nodes.len(),
            self.inputs.len(),
            self.registers.len(),
            self.state_bits(),
            self.outputs.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combinational_adder() {
        let mut r = Rtl::new("adder");
        let a = r.input("a", 8);
        let b = r.input("b", 8);
        let sum = r.binary(BinOp::Add, a, b);
        r.output("sum", sum);
        assert_eq!(r.eval_combinational(&[200, 100])[0], (200 + 100) & 0xFF);
        assert_eq!(r.eval_combinational(&[1, 2])[0], 3);
    }

    #[test]
    fn comparison_yields_one_bit() {
        let mut r = Rtl::new("cmp");
        let a = r.input("a", 8);
        let b = r.input("b", 8);
        let lt = r.binary(BinOp::Lt, a, b);
        assert_eq!(r.width(lt), 1);
        r.output("lt", lt);
        assert_eq!(r.eval_combinational(&[3, 5])[0], 1);
        assert_eq!(r.eval_combinational(&[5, 3])[0], 0);
    }

    #[test]
    fn mux_and_not() {
        let mut r = Rtl::new("m");
        let s = r.input("s", 1);
        let a = r.input("a", 4);
        let na = r.not(a);
        let m = r.mux(s, a, na);
        r.output("o", m);
        assert_eq!(r.eval_combinational(&[1, 0b1010])[0], 0b1010);
        assert_eq!(r.eval_combinational(&[0, 0b1010])[0], 0b0101);
    }

    #[test]
    fn counter_counts() {
        let mut r = Rtl::new("counter");
        let en = r.input("en", 1);
        let q = r.reg("q", 4, 0);
        let one = r.constant(1, 4);
        let inc = r.binary(BinOp::Add, q, one);
        let next = r.mux(en, inc, q);
        r.set_next(q, next);
        r.output("q", q);
        let trace = r.simulate(&[vec![1], vec![1], vec![0], vec![1]]);
        let qs: Vec<u64> = trace.iter().map(|o| o[0]).collect();
        assert_eq!(qs, vec![0, 1, 2, 2]);
        assert_eq!(r.state_bits(), 4);
        assert_eq!(r.num_registers(), 1);
    }

    #[test]
    fn counter_wraps_at_width() {
        let mut r = Rtl::new("counter");
        let q = r.reg("q", 2, 3);
        let one = r.constant(1, 2);
        let inc = r.binary(BinOp::Add, q, one);
        r.set_next(q, inc);
        r.output("q", q);
        let trace = r.simulate(&[vec![], vec![], vec![]]);
        let qs: Vec<u64> = trace.iter().map(|o| o[0]).collect();
        assert_eq!(qs, vec![3, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "division has no direct RTL node")]
    fn division_is_rejected() {
        let mut r = Rtl::new("d");
        let a = r.input("a", 8);
        let b = r.input("b", 8);
        let _ = r.binary(BinOp::Div, a, b);
    }

    #[test]
    #[should_panic(expected = "next-state not connected")]
    fn unconnected_register_panics_on_step() {
        let mut r = Rtl::new("bad");
        let _q = r.reg("q", 4, 0);
        let state = r.reset_state();
        let _ = r.step(&[], &state);
    }

    #[test]
    fn reset_state_uses_init_values() {
        let mut r = Rtl::new("init");
        let q = r.reg("q", 8, 42);
        r.set_next(q, q);
        assert_eq!(r.reset_state(), vec![42]);
    }

    #[test]
    fn display_summarizes() {
        let mut r = Rtl::new("m");
        let a = r.input("a", 8);
        r.output("o", a);
        let s = r.to_string();
        assert!(s.contains("module m"));
        assert!(s.contains("1 inputs"));
    }
}
