//! Finite-state-machine generation for bus interface wrappers.
//!
//! Level 4 of the case study spent "one week … to build the interfaces":
//! dedicated wrappers converting each HW module's RTL protocol to the
//! transactional bus protocol. The paper notes that this "could be
//! significantly reduced by the automation of the phase" — this module *is*
//! that automation: a declarative Moore-machine description compiled to an
//! [`Rtl`] netlist (binary-encoded state register, priority-ordered
//! transitions), ready for the model checker.

use crate::rtl::{Rtl, SigId};
use behav::BinOp;

/// Index of an FSM state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateId(usize);

impl StateId {
    /// Raw index (also the binary encoding of the state).
    pub fn index(self) -> usize {
        self.0
    }
}

/// A guard: a conjunction of `(input, expected value)` tests on the FSM's
/// 1-bit inputs. An empty guard is always true.
pub type Guard = Vec<(usize, bool)>;

#[derive(Debug, Clone)]
struct Transition {
    from: StateId,
    guard: Guard,
    to: StateId,
}

/// Declarative Moore machine, compiled to RTL with [`FsmBuilder::build`].
#[derive(Debug, Clone, Default)]
pub struct FsmBuilder {
    name: String,
    states: Vec<String>,
    inputs: Vec<String>,
    transitions: Vec<Transition>,
    /// Moore outputs: (name, width, per-state value).
    outputs: Vec<(String, u32, Vec<u64>)>,
}

impl FsmBuilder {
    /// Starts an FSM with the given module name.
    pub fn new(name: &str) -> Self {
        FsmBuilder {
            name: name.to_owned(),
            ..FsmBuilder::default()
        }
    }

    /// Declares a state; the first state declared is the reset state.
    pub fn state(&mut self, name: &str) -> StateId {
        self.states.push(name.to_owned());
        StateId(self.states.len() - 1)
    }

    /// Declares a 1-bit input; returns its index for use in guards.
    pub fn input(&mut self, name: &str) -> usize {
        self.inputs.push(name.to_owned());
        self.inputs.len() - 1
    }

    /// Adds a transition; earlier transitions from the same state take
    /// priority. With no matching transition the FSM stays in place.
    pub fn transition(&mut self, from: StateId, guard: Guard, to: StateId) {
        self.transitions.push(Transition { from, guard, to });
    }

    /// Declares a Moore output with one value per declared state.
    ///
    /// # Panics
    ///
    /// Panics if `per_state.len()` differs from the number of states.
    pub fn moore_output(&mut self, name: &str, width: u32, per_state: &[u64]) {
        assert_eq!(
            per_state.len(),
            self.states.len(),
            "one output value per state required"
        );
        self.outputs
            .push((name.to_owned(), width, per_state.to_vec()));
    }

    /// Number of state bits in the binary encoding.
    pub fn state_width(&self) -> u32 {
        let n = self.states.len().max(2);
        (usize::BITS - (n - 1).leading_zeros()).max(1)
    }

    /// Compiles to an [`Rtl`] netlist. The state register is exposed as
    /// output `state` alongside the declared Moore outputs.
    ///
    /// # Panics
    ///
    /// Panics if no state was declared.
    pub fn build(&self) -> Rtl {
        assert!(!self.states.is_empty(), "fsm needs at least one state");
        let mut rtl = Rtl::new(&self.name);
        let sw = self.state_width();
        let input_sigs: Vec<SigId> = self.inputs.iter().map(|n| rtl.input(n, 1)).collect();
        let state = rtl.reg("state", sw, 0);

        // Next-state logic: start from "stay", apply transitions in reverse
        // so that the first declared transition has the highest priority.
        let mut next = state;
        for t in self.transitions.iter().rev() {
            let from_c = rtl.constant(t.from.0 as u64, sw);
            let mut cond = rtl.binary(BinOp::Eq, state, from_c);
            for &(inp, val) in &t.guard {
                let sig = input_sigs[inp];
                let term = if val { sig } else { rtl.not(sig) };
                cond = rtl.binary(BinOp::And, cond, term);
            }
            let to_c = rtl.constant(t.to.0 as u64, sw);
            next = rtl.mux(cond, to_c, next);
        }
        rtl.set_next(state, next);
        rtl.output("state", state);

        for (name, width, per_state) in &self.outputs {
            let mut val = rtl.constant(per_state[0], *width);
            for (s, &v) in per_state.iter().enumerate().skip(1) {
                let sc = rtl.constant(s as u64, sw);
                let is_s = rtl.binary(BinOp::Eq, state, sc);
                let vc = rtl.constant(v, *width);
                val = rtl.mux(is_s, vc, val);
            }
            rtl.output(name, val);
        }
        rtl
    }
}

/// Builds the standard bus-wrapper FSM used by the case study's level-4
/// interfaces: `IDLE → REQUEST → WAIT_ACK → DONE → IDLE`.
///
/// Inputs: `start`, `ack`. Outputs: `state`, `bus_req` (high in REQUEST and
/// WAIT_ACK), `done` (high in DONE).
pub fn bus_wrapper_fsm(name: &str) -> Rtl {
    let mut b = FsmBuilder::new(name);
    let idle = b.state("IDLE");
    let request = b.state("REQUEST");
    let wait_ack = b.state("WAIT_ACK");
    let done = b.state("DONE");
    let start = b.input("start");
    let ack = b.input("ack");
    b.transition(idle, vec![(start, true)], request);
    b.transition(request, vec![], wait_ack);
    b.transition(wait_ack, vec![(ack, true)], done);
    b.transition(done, vec![], idle);
    b.moore_output("bus_req", 1, &[0, 1, 1, 0]);
    b.moore_output("done", 1, &[0, 0, 0, 1]);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_width_calculation() {
        let mut b = FsmBuilder::new("f");
        b.state("a");
        assert_eq!(b.state_width(), 1);
        b.state("b");
        assert_eq!(b.state_width(), 1);
        b.state("c");
        assert_eq!(b.state_width(), 2);
        b.state("d");
        assert_eq!(b.state_width(), 2);
        b.state("e");
        assert_eq!(b.state_width(), 3);
    }

    #[test]
    fn bus_wrapper_walks_the_handshake() {
        let rtl = bus_wrapper_fsm("wrap");
        // inputs: [start, ack]
        let trace = rtl.simulate(&[
            vec![0, 0], // IDLE
            vec![1, 0], // IDLE, start pulsed → REQUEST next
            vec![0, 0], // REQUEST → WAIT_ACK
            vec![0, 0], // WAIT_ACK (no ack yet)
            vec![0, 1], // WAIT_ACK, ack → DONE
            vec![0, 0], // DONE → IDLE
            vec![0, 0], // IDLE
        ]);
        let states: Vec<u64> = trace.iter().map(|o| o[0]).collect();
        assert_eq!(states, vec![0, 0, 1, 2, 2, 3, 0]);
        let bus_req: Vec<u64> = trace.iter().map(|o| o[1]).collect();
        assert_eq!(bus_req, vec![0, 0, 1, 1, 1, 0, 0]);
        let done: Vec<u64> = trace.iter().map(|o| o[2]).collect();
        assert_eq!(done, vec![0, 0, 0, 0, 0, 1, 0]);
    }

    #[test]
    fn priority_of_transitions() {
        let mut b = FsmBuilder::new("p");
        let s0 = b.state("s0");
        let s1 = b.state("s1");
        let s2 = b.state("s2");
        let x = b.input("x");
        // Both transitions from s0 can fire when x=1; the first declared wins.
        b.transition(s0, vec![(x, true)], s1);
        b.transition(s0, vec![], s2);
        let rtl = b.build();
        let trace = rtl.simulate(&[vec![1], vec![0]]);
        assert_eq!(trace[1][0], s1.index() as u64);
        // With x=0 the fallback transition fires.
        let trace2 = rtl.simulate(&[vec![0], vec![0]]);
        assert_eq!(trace2[1][0], s2.index() as u64);
    }

    #[test]
    fn fsm_with_no_matching_transition_stays() {
        let mut b = FsmBuilder::new("stay");
        let s0 = b.state("s0");
        let s1 = b.state("s1");
        let go = b.input("go");
        b.transition(s0, vec![(go, true)], s1);
        let rtl = b.build();
        let trace = rtl.simulate(&[vec![0], vec![0], vec![0]]);
        assert!(trace.iter().all(|o| o[0] == 0));
    }

    #[test]
    #[should_panic(expected = "one output value per state")]
    fn moore_output_arity_checked() {
        let mut b = FsmBuilder::new("f");
        b.state("a");
        b.state("b");
        b.moore_output("o", 1, &[0]);
    }
}
