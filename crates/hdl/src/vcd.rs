//! VCD (value-change-dump) export of RTL simulations.
//!
//! The standard waveform format: any EDA viewer (GTKWave & co.) can open
//! the output. Dumped signals are the module's primary inputs, registers
//! and declared outputs — the same observables the model checker's
//! counterexample traces carry, so a failing property can be inspected as
//! a waveform.

use crate::rtl::{Rtl, SigId};
use std::fmt::Write as _;

/// One dumped signal: VCD id code, name, width, and the netlist signal.
struct Channel {
    code: String,
    name: String,
    width: u32,
    sig: SigId,
}

fn id_code(n: usize) -> String {
    // Printable VCD identifier codes: base-94 over '!'..='~'.
    let mut n = n;
    let mut s = String::new();
    loop {
        s.push((b'!' + (n % 94) as u8) as char);
        n /= 94;
        if n == 0 {
            break;
        }
    }
    s
}

fn binary(value: u64, width: u32) -> String {
    let mut s = String::with_capacity(width as usize);
    for i in (0..width).rev() {
        s.push(if value >> i & 1 == 1 { '1' } else { '0' });
    }
    s
}

/// Simulates `rtl` on `input_trace` (as [`Rtl::simulate`]) and renders the
/// run as a VCD document. One VCD time unit = one clock cycle.
pub fn dump(rtl: &Rtl, input_trace: &[Vec<u64>]) -> String {
    // Collect channels: inputs, registers, outputs.
    let mut channels: Vec<Channel> = Vec::new();
    let mut next = 0usize;
    for &i in rtl.inputs() {
        channels.push(Channel {
            code: id_code(next),
            name: rtl.signal_name(i).unwrap_or("in").to_owned(),
            width: rtl.width(i),
            sig: i,
        });
        next += 1;
    }
    for (r, _) in rtl.registers() {
        channels.push(Channel {
            code: id_code(next),
            name: rtl.signal_name(r).unwrap_or("reg").to_owned(),
            width: rtl.width(r),
            sig: r,
        });
        next += 1;
    }
    for (name, sig) in rtl.outputs() {
        channels.push(Channel {
            code: id_code(next),
            name: name.clone(),
            width: rtl.width(*sig),
            sig: *sig,
        });
        next += 1;
    }

    let mut out = String::new();
    let _ = writeln!(out, "$date symbad reproduction $end");
    let _ = writeln!(out, "$timescale 1 ns $end");
    let _ = writeln!(out, "$scope module {} $end", rtl.name());
    for c in &channels {
        let _ = writeln!(out, "$var wire {} {} {} $end", c.width, c.code, c.name);
    }
    let _ = writeln!(out, "$upscope $end");
    let _ = writeln!(out, "$enddefinitions $end");

    // Replay the simulation, dumping changed values per cycle.
    let mut state = rtl.reset_state();
    let mut last: Vec<Option<u64>> = vec![None; channels.len()];
    for (cycle, inputs) in input_trace.iter().enumerate() {
        let values = rtl.node_values(inputs, &state);
        let _ = writeln!(out, "#{cycle}");
        for (ci, c) in channels.iter().enumerate() {
            let v = values[c.sig.index()];
            if last[ci] != Some(v) {
                if c.width == 1 {
                    let _ = writeln!(out, "{}{}", v & 1, c.code);
                } else {
                    let _ = writeln!(out, "b{} {}", binary(v, c.width), c.code);
                }
                last[ci] = Some(v);
            }
        }
        let (_, next_state) = rtl.step(inputs, &state);
        state = next_state;
    }
    let _ = writeln!(out, "#{}", input_trace.len());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fsm::bus_wrapper_fsm;
    use behav::BinOp;

    #[test]
    fn vcd_structure_for_counter() {
        let mut rtl = Rtl::new("counter");
        let en = rtl.input("en", 1);
        let q = rtl.reg("q", 4, 0);
        let one = rtl.constant(1, 4);
        let inc = rtl.binary(BinOp::Add, q, one);
        let next = rtl.mux(en, inc, q);
        rtl.set_next(q, next);
        rtl.output("q", q);
        let vcd = dump(&rtl, &[vec![1], vec![1], vec![0]]);
        assert!(vcd.contains("$scope module counter $end"));
        assert!(vcd.contains("$var wire 1"));
        assert!(vcd.contains("$var wire 4"));
        assert!(vcd.contains("$enddefinitions $end"));
        // Time markers for each cycle plus the closing one.
        for t in 0..=3 {
            assert!(vcd.contains(&format!("#{t}\n")), "missing #{t}");
        }
        // q starts at 0 and changes to 1 at cycle 1.
        assert!(vcd.contains("b0000 "));
        assert!(vcd.contains("b0001 "));
    }

    #[test]
    fn unchanged_values_are_not_redumped() {
        let mut rtl = Rtl::new("const");
        let a = rtl.input("a", 1);
        rtl.output("o", a);
        let vcd = dump(&rtl, &[vec![1], vec![1], vec![1]]);
        // The input/output pair dumps once at #0 and never again.
        let ones = vcd.matches("1!").count() + vcd.matches("1\"").count();
        assert_eq!(ones, 2, "one dump per channel: {vcd}");
    }

    #[test]
    fn wrapper_waveform_shows_handshake() {
        let rtl = bus_wrapper_fsm("w");
        let vcd = dump(
            &rtl,
            &[vec![0, 0], vec![1, 0], vec![0, 0], vec![0, 1], vec![0, 0]],
        );
        assert!(vcd.contains("$var wire 2"));
        assert!(vcd.contains("b10 ")); // WAIT_ACK encoding appears
    }

    #[test]
    fn id_codes_are_printable_and_distinct() {
        let codes: Vec<String> = (0..200).map(id_code).collect();
        let mut dedup = codes.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), codes.len());
        assert!(codes
            .iter()
            .all(|c| c.chars().all(|ch| ('!'..='~').contains(&ch))));
    }
}
