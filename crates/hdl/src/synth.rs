//! Behavioural synthesis: loop-free `behav` functions → combinational RTL.
//!
//! This is the level-4 step the paper calls "Behavioral Synthesis and IP
//! reuse": the FPGA-resident kernels are turned into RTL by *if-conversion*
//! — every control-flow join becomes a word multiplexer, and `return`
//! statements are folded into a `(returned, value)` pair threaded through
//! the body. Loops must be unrolled first ([`behav::unroll`]), which is how
//! the iterative ROOT (square root) module becomes synthesizable.
//!
//! The synthesized netlist is proven equivalent to the behavioural source
//! by the test-suite (simulation cross-check here; SAT miter in `mc`).

use crate::rtl::{Rtl, SigId};
use behav::{BinOp, Expr, Function, Stmt, UnaryOp, VarId};
use std::fmt;

/// Why a function could not be synthesized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SynthError {
    /// The body still contains a loop; unroll it first.
    LoopNotSupported,
    /// Arrays have no combinational equivalent (memories are platform IP).
    ArrayNotSupported,
    /// Division/remainder must be implemented iteratively and then unrolled.
    DivisionNotSupported,
    /// Only shifts by compile-time constants are synthesizable here.
    VariableShiftNotSupported,
    /// Reconfiguration / resource calls are software constructs.
    InstrumentationNotSupported,
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            SynthError::LoopNotSupported => "loops must be unrolled before synthesis",
            SynthError::ArrayNotSupported => "arrays are not synthesizable to combinational RTL",
            SynthError::DivisionNotSupported => {
                "division must be implemented iteratively before synthesis"
            }
            SynthError::VariableShiftNotSupported => {
                "only constant shift amounts are synthesizable"
            }
            SynthError::InstrumentationNotSupported => {
                "reconfigure/resource calls cannot be synthesized"
            }
        };
        f.write_str(msg)
    }
}

impl std::error::Error for SynthError {}

/// Synthesizes a loop-free behavioural function into a combinational
/// netlist with one input per parameter and a single output `out`.
///
/// # Errors
///
/// Returns a [`SynthError`] for constructs with no combinational
/// equivalent (loops, arrays, division, variable shifts, instrumentation).
pub fn synthesize(func: &Function) -> Result<Rtl, SynthError> {
    let mut rtl = Rtl::new(func.name());
    let mut env: Vec<Option<SigId>> = vec![None; func.vars().len()];
    for p in func.params() {
        let decl = func.var(p);
        env[p.index()] = Some(rtl.input(&decl.name, decl.width));
    }
    let mut st = SynthState {
        rtl: &mut rtl,
        func,
        env,
        returned: None,
        ret_val: None,
    };
    let zero_flag = st.rtl.constant(0, 1);
    let zero_ret = st.rtl.constant(0, func.ret_width());
    st.returned = Some(zero_flag);
    st.ret_val = Some(zero_ret);
    st.block(func.body())?;
    let out = st.ret_val.expect("initialized");
    rtl.output("out", out);
    Ok(rtl)
}

struct SynthState<'a> {
    rtl: &'a mut Rtl,
    func: &'a Function,
    env: Vec<Option<SigId>>,
    returned: Option<SigId>,
    ret_val: Option<SigId>,
}

impl<'a> SynthState<'a> {
    fn var_sig(&mut self, v: VarId) -> SigId {
        match self.env[v.index()] {
            Some(s) => s,
            None => {
                // Unassigned local reads as 0 (matching the interpreter).
                let w = self.func.var(v).width;
                let z = self.rtl.constant(0, w);
                self.env[v.index()] = Some(z);
                z
            }
        }
    }

    /// Reduces a signal to 1 bit via `!= 0` when needed.
    fn bool_sig(&mut self, s: SigId) -> SigId {
        if self.rtl.width(s) == 1 {
            s
        } else {
            let z = self.rtl.constant(0, self.rtl.width(s));
            self.rtl.binary(BinOp::Ne, s, z)
        }
    }

    fn expr(&mut self, e: &Expr) -> Result<SigId, SynthError> {
        match e {
            Expr::Const { value, width } => Ok(self.rtl.constant(*value, *width)),
            Expr::Var(v) => Ok(self.var_sig(*v)),
            Expr::Index { .. } => Err(SynthError::ArrayNotSupported),
            Expr::Unary { op, arg } => {
                let a = self.expr(arg)?;
                Ok(match op {
                    UnaryOp::Not => self.rtl.not(a),
                    UnaryOp::Neg => self.rtl.neg(a),
                })
            }
            Expr::Binary { op, lhs, rhs } => {
                match op {
                    BinOp::Div | BinOp::Rem => return Err(SynthError::DivisionNotSupported),
                    // Shift amounts must be constants for the lowering.
                    BinOp::Shl | BinOp::Shr if !matches!(**rhs, Expr::Const { .. }) => {
                        return Err(SynthError::VariableShiftNotSupported);
                    }
                    _ => {}
                }
                let a = self.expr(lhs)?;
                let b = self.expr(rhs)?;
                Ok(self.rtl.binary(*op, a, b))
            }
            Expr::Mux { cond, then_, else_ } => {
                let c = self.expr(cond)?;
                let c = self.bool_sig(c);
                let t = self.expr(then_)?;
                let e2 = self.expr(else_)?;
                Ok(self.rtl.mux(c, t, e2))
            }
        }
    }

    /// Guard a new value with the `returned` flag: once the function has
    /// returned, later writes must not take effect.
    fn guarded(&mut self, old: SigId, new: SigId) -> SigId {
        let returned = self.returned.expect("initialized");
        self.rtl.mux(returned, old, new)
    }

    fn block(&mut self, stmts: &[Stmt]) -> Result<(), SynthError> {
        for s in stmts {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), SynthError> {
        match s {
            Stmt::Assign { target, value, .. } => {
                let new = self.expr(value)?;
                let old = self.var_sig(*target);
                let merged = self.guarded(old, new);
                self.env[target.index()] = Some(merged);
                Ok(())
            }
            Stmt::Store { .. } => Err(SynthError::ArrayNotSupported),
            Stmt::While { .. } => Err(SynthError::LoopNotSupported),
            Stmt::Reconfigure { .. } | Stmt::ResourceCall { .. } => {
                Err(SynthError::InstrumentationNotSupported)
            }
            Stmt::Return { value, .. } => {
                if let Some(v) = value {
                    let new = self.expr(v)?;
                    let old = self.ret_val.expect("initialized");
                    self.ret_val = Some(self.guarded(old, new));
                }
                // From here on, this path has returned.
                let one = self.rtl.constant(1, 1);
                let returned = self.returned.expect("initialized");
                self.returned = Some(self.rtl.binary(BinOp::Or, returned, one));
                Ok(())
            }
            Stmt::If {
                cond, then_, else_, ..
            } => {
                let c = self.expr(cond)?;
                let c = self.bool_sig(c);
                let env_before = self.env.clone();
                let returned_before = self.returned;
                let ret_val_before = self.ret_val;

                self.block(then_)?;
                let env_then = std::mem::replace(&mut self.env, env_before.clone());
                let returned_then = std::mem::replace(&mut self.returned, returned_before);
                let ret_then = std::mem::replace(&mut self.ret_val, ret_val_before);

                self.block(else_)?;
                // Merge: phi nodes as muxes on the branch condition.
                for (i, &t) in env_then.iter().enumerate() {
                    let e = self.env[i];
                    self.env[i] = match (t, e) {
                        (None, None) => None,
                        _ => {
                            let w = self.func.var(VarId::from_index(i)).width;
                            let tv = t.unwrap_or_else(|| self.rtl.constant(0, w));
                            let ev = e.unwrap_or_else(|| self.rtl.constant(0, w));
                            if tv == ev {
                                Some(tv)
                            } else {
                                Some(self.rtl.mux(c, tv, ev))
                            }
                        }
                    };
                }
                let rt = returned_then.expect("initialized");
                let re = self.returned.expect("initialized");
                self.returned = Some(if rt == re {
                    rt
                } else {
                    self.rtl.mux(c, rt, re)
                });
                let vt = ret_then.expect("initialized");
                let ve = self.ret_val.expect("initialized");
                self.ret_val = Some(if vt == ve {
                    vt
                } else {
                    self.rtl.mux(c, vt, ve)
                });
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use behav::interp::Interpreter;
    use behav::unroll::unroll;
    use behav::FunctionBuilder;

    /// Exhaustive (or sampled) equivalence between the interpreter and the
    /// synthesized netlist.
    fn assert_equiv(func: &Function, rtl: &Rtl, samples: &[Vec<u64>]) {
        for inputs in samples {
            let behav_out = Interpreter::new(func)
                .run(inputs)
                .expect("interpreter run")
                .return_value
                .unwrap_or(0);
            let rtl_out = rtl.eval_combinational(inputs)[0];
            assert_eq!(behav_out, rtl_out, "inputs {inputs:?}");
        }
    }

    #[test]
    fn straight_line_arithmetic() {
        let mut fb = FunctionBuilder::new("f", 16);
        let a = fb.param("a", 16);
        let b = fb.param("b", 16);
        let x = fb.local("x", 16);
        fb.assign(
            x,
            Expr::add(Expr::mul(Expr::var(a), Expr::var(b)), Expr::constant(3, 16)),
        );
        fb.ret(Expr::var(x));
        let f = fb.build();
        let rtl = synthesize(&f).expect("synthesizable");
        let samples: Vec<Vec<u64>> = (0..20).map(|i| vec![i * 37 % 997, i * 91 % 499]).collect();
        assert_equiv(&f, &rtl, &samples);
    }

    #[test]
    fn if_conversion_with_early_return() {
        let mut fb = FunctionBuilder::new("clamp", 8);
        let a = fb.param("a", 8);
        fb.if_(Expr::gt(Expr::var(a), Expr::constant(100, 8)), |t| {
            t.ret(Expr::constant(100, 8));
        });
        fb.ret(Expr::var(a));
        let f = fb.build();
        let rtl = synthesize(&f).expect("synthesizable");
        let samples: Vec<Vec<u64>> = (0..=255).map(|v| vec![v]).collect();
        assert_equiv(&f, &rtl, &samples);
    }

    #[test]
    fn assignments_after_return_are_dead() {
        let mut fb = FunctionBuilder::new("f", 8);
        let a = fb.param("a", 8);
        let x = fb.local("x", 8);
        fb.assign(x, Expr::var(a));
        fb.if_(Expr::eq(Expr::var(a), Expr::constant(0, 8)), |t| {
            t.ret(Expr::constant(77, 8));
        });
        fb.assign(x, Expr::add(Expr::var(x), Expr::constant(1, 8)));
        fb.ret(Expr::var(x));
        let f = fb.build();
        let rtl = synthesize(&f).expect("synthesizable");
        let samples: Vec<Vec<u64>> = (0..=255).map(|v| vec![v]).collect();
        assert_equiv(&f, &rtl, &samples);
    }

    #[test]
    fn nested_branches() {
        let mut fb = FunctionBuilder::new("classify", 8);
        let a = fb.param("a", 8);
        let out = fb.local("out", 8);
        fb.if_else(
            Expr::lt(Expr::var(a), Expr::constant(85, 8)),
            |t| t.assign(out, Expr::constant(0, 8)),
            |e| {
                e.if_else(
                    Expr::lt(Expr::var(a), Expr::constant(170, 8)),
                    |t2| t2.assign(out, Expr::constant(1, 8)),
                    |e2| e2.assign(out, Expr::constant(2, 8)),
                );
            },
        );
        fb.ret(Expr::var(out));
        let f = fb.build();
        let rtl = synthesize(&f).expect("synthesizable");
        let samples: Vec<Vec<u64>> = (0..=255).map(|v| vec![v]).collect();
        assert_equiv(&f, &rtl, &samples);
    }

    #[test]
    fn unrolled_sqrt_synthesizes_and_matches() {
        // Integer sqrt by linear search (trip count ≤ 16 for 8-bit input).
        let mut fb = FunctionBuilder::new("root", 8);
        let a = fb.param("a", 8);
        let r = fb.local("r", 8);
        fb.while_(
            Expr::le(
                Expr::mul(
                    Expr::add(Expr::var(r), Expr::constant(1, 8)),
                    Expr::add(Expr::var(r), Expr::constant(1, 8)),
                ),
                Expr::var(a),
            ),
            |b| {
                b.assign(r, Expr::add(Expr::var(r), Expr::constant(1, 8)));
            },
        );
        fb.ret(Expr::var(r));
        let f = fb.build();
        let unrolled = unroll(&f, 16);
        let rtl = synthesize(&unrolled).expect("synthesizable after unroll");
        // Note: 8-bit mul wraps, so compare against the behavioural model
        // (which has identical wrap semantics), sampling the full domain.
        let samples: Vec<Vec<u64>> = (0..=255).map(|v| vec![v]).collect();
        assert_equiv(&unrolled, &rtl, &samples);
        // And spot-check true square roots in the wrap-free range.
        assert_eq!(rtl.eval_combinational(&[49])[0], 7);
        assert_eq!(rtl.eval_combinational(&[50])[0], 7);
        assert_eq!(rtl.eval_combinational(&[0])[0], 0);
    }

    #[test]
    fn loops_are_rejected_without_unrolling() {
        let mut fb = FunctionBuilder::new("f", 8);
        fb.while_(Expr::constant(0, 1), |_| {});
        fb.ret(Expr::constant(0, 8));
        let f = fb.build();
        assert_eq!(synthesize(&f).unwrap_err(), SynthError::LoopNotSupported);
    }

    #[test]
    fn arrays_are_rejected() {
        let mut fb = FunctionBuilder::new("f", 8);
        let arr = fb.array("m", 8, 4);
        fb.store(arr, Expr::constant(0, 8), Expr::constant(1, 8));
        fb.ret(Expr::constant(0, 8));
        let f = fb.build();
        assert_eq!(synthesize(&f).unwrap_err(), SynthError::ArrayNotSupported);
    }

    #[test]
    fn division_is_rejected() {
        let mut fb = FunctionBuilder::new("f", 8);
        let a = fb.param("a", 8);
        fb.ret(Expr::div(Expr::var(a), Expr::constant(3, 8)));
        let f = fb.build();
        assert_eq!(
            synthesize(&f).unwrap_err(),
            SynthError::DivisionNotSupported
        );
    }

    #[test]
    fn instrumentation_is_rejected() {
        let mut fb = FunctionBuilder::new("f", 8);
        fb.reconfigure(behav::ConfigId(0));
        fb.ret(Expr::constant(0, 8));
        let f = fb.build();
        assert_eq!(
            synthesize(&f).unwrap_err(),
            SynthError::InstrumentationNotSupported
        );
    }

    #[test]
    fn variable_shift_is_rejected() {
        let mut fb = FunctionBuilder::new("f", 8);
        let a = fb.param("a", 8);
        let b = fb.param("b", 8);
        fb.ret(Expr::shl(Expr::var(a), Expr::var(b)));
        let f = fb.build();
        assert_eq!(
            synthesize(&f).unwrap_err(),
            SynthError::VariableShiftNotSupported
        );
    }

    #[test]
    fn mux_expression_synthesizes() {
        let mut fb = FunctionBuilder::new("f", 8);
        let a = fb.param("a", 8);
        fb.ret(Expr::mux(
            Expr::ge(Expr::var(a), Expr::constant(128, 8)),
            Expr::sub(Expr::var(a), Expr::constant(128, 8)),
            Expr::var(a),
        ));
        let f = fb.build();
        let rtl = synthesize(&f).expect("synthesizable");
        let samples: Vec<Vec<u64>> = (0..=255).map(|v| vec![v]).collect();
        assert_equiv(&f, &rtl, &samples);
    }
}
