//! Bit-blasting: lowering the word-level netlist to single-bit logic.
//!
//! One lowering serves every formal backend through the [`BitCtx`]
//! abstraction: the `sat` backend emits Tseitin CNF (for BMC, k-induction
//! and SAT-based ATPG), the `bdd` backend builds decision diagrams (for
//! symbolic reachability). Because both run the *same* lowering code, an
//! equivalence bug would have to fool two independent reasoning engines and
//! the word-level simulator at once — the cross-checks in the test suite
//! exploit exactly that.
//!
//! Bit vectors are LSB-first. Variable shift amounts are not lowered
//! (synthesis only produces constant shifts; see [`lower`]).

use crate::rtl::{Rtl, RtlOp, SigId};
use behav::BinOp;

/// Backend abstraction over single-bit logic.
pub trait BitCtx {
    /// The backend's bit handle (a SAT literal, a BDD node, …).
    type Bit: Copy;

    /// The constant bit.
    fn bit_const(&mut self, value: bool) -> Self::Bit;
    /// A fresh unconstrained bit (used for primary inputs).
    fn bit_fresh(&mut self) -> Self::Bit;
    /// Conjunction.
    fn bit_and(&mut self, a: Self::Bit, b: Self::Bit) -> Self::Bit;
    /// Disjunction.
    fn bit_or(&mut self, a: Self::Bit, b: Self::Bit) -> Self::Bit;
    /// Exclusive or.
    fn bit_xor(&mut self, a: Self::Bit, b: Self::Bit) -> Self::Bit;
    /// Negation.
    fn bit_not(&mut self, a: Self::Bit) -> Self::Bit;

    /// 2:1 mux, default-implemented from the primitives.
    fn bit_mux(&mut self, sel: Self::Bit, t: Self::Bit, e: Self::Bit) -> Self::Bit {
        let st = self.bit_and(sel, t);
        let ns = self.bit_not(sel);
        let se = self.bit_and(ns, e);
        self.bit_or(st, se)
    }
}

/// CNF backend over [`sat::CnfBuilder`].
#[derive(Debug, Default)]
pub struct CnfBackend {
    builder: sat::CnfBuilder,
}

impl CnfBackend {
    /// Creates an empty backend.
    pub fn new() -> Self {
        CnfBackend::default()
    }

    /// Access to the underlying builder (e.g. to add assumptions/clauses).
    pub fn builder_mut(&mut self) -> &mut sat::CnfBuilder {
        &mut self.builder
    }

    /// Extracts the builder.
    pub fn into_builder(self) -> sat::CnfBuilder {
        self.builder
    }
}

impl BitCtx for CnfBackend {
    type Bit = sat::Lit;

    fn bit_const(&mut self, value: bool) -> sat::Lit {
        if value {
            self.builder.lit_true()
        } else {
            self.builder.lit_false()
        }
    }

    fn bit_fresh(&mut self) -> sat::Lit {
        self.builder.new_lit()
    }

    fn bit_and(&mut self, a: sat::Lit, b: sat::Lit) -> sat::Lit {
        self.builder.and_gate(a, b)
    }

    fn bit_or(&mut self, a: sat::Lit, b: sat::Lit) -> sat::Lit {
        self.builder.or_gate(a, b)
    }

    fn bit_xor(&mut self, a: sat::Lit, b: sat::Lit) -> sat::Lit {
        self.builder.xor_gate(a, b)
    }

    fn bit_not(&mut self, a: sat::Lit) -> sat::Lit {
        !a
    }

    fn bit_mux(&mut self, sel: sat::Lit, t: sat::Lit, e: sat::Lit) -> sat::Lit {
        self.builder.mux_gate(sel, t, e)
    }
}

/// BDD backend over [`bdd::Manager`]. Fresh bits allocate consecutive BDD
/// variables starting from the index given at construction.
#[derive(Debug)]
pub struct BddBackend<'m> {
    mgr: &'m mut bdd::Manager,
    next_var: u32,
}

impl<'m> BddBackend<'m> {
    /// Creates a backend allocating fresh variables from `first_var`.
    pub fn new(mgr: &'m mut bdd::Manager, first_var: u32) -> Self {
        BddBackend {
            mgr,
            next_var: first_var,
        }
    }

    /// The next variable index that would be allocated.
    pub fn next_var(&self) -> u32 {
        self.next_var
    }

    /// Access to the manager.
    pub fn manager_mut(&mut self) -> &mut bdd::Manager {
        self.mgr
    }
}

impl BitCtx for BddBackend<'_> {
    type Bit = bdd::Ref;

    fn bit_const(&mut self, value: bool) -> bdd::Ref {
        self.mgr.constant(value)
    }

    fn bit_fresh(&mut self) -> bdd::Ref {
        let v = self.mgr.var(self.next_var);
        self.next_var += 1;
        v
    }

    fn bit_and(&mut self, a: bdd::Ref, b: bdd::Ref) -> bdd::Ref {
        self.mgr.and(a, b)
    }

    fn bit_or(&mut self, a: bdd::Ref, b: bdd::Ref) -> bdd::Ref {
        self.mgr.or(a, b)
    }

    fn bit_xor(&mut self, a: bdd::Ref, b: bdd::Ref) -> bdd::Ref {
        self.mgr.xor(a, b)
    }

    fn bit_not(&mut self, a: bdd::Ref) -> bdd::Ref {
        self.mgr.not(a)
    }

    fn bit_mux(&mut self, sel: bdd::Ref, t: bdd::Ref, e: bdd::Ref) -> bdd::Ref {
        self.mgr.ite(sel, t, e)
    }
}

/// The result of lowering: per-node bit vectors (LSB first).
#[derive(Debug, Clone)]
pub struct LoweredCircuit<B> {
    bits: Vec<Vec<B>>,
}

impl<B: Copy> LoweredCircuit<B> {
    /// Bits of one signal, LSB first.
    pub fn signal(&self, sig: SigId) -> &[B] {
        &self.bits[sig.index()]
    }

    /// Bits of every declared output, with names.
    pub fn outputs(&self, rtl: &Rtl) -> Vec<(String, Vec<B>)> {
        rtl.outputs()
            .iter()
            .map(|(n, s)| (n.clone(), self.bits[s.index()].clone()))
            .collect()
    }

    /// Next-state bits of every register, in register order.
    pub fn next_state(&self, rtl: &Rtl) -> Vec<Vec<B>> {
        rtl.registers()
            .iter()
            .map(|&(_, next)| self.bits[next.index()].clone())
            .collect()
    }
}

/// Lowers every node of `rtl` in one pass.
///
/// `input_bits` supplies the bits of each primary input (in declaration
/// order); `reg_bits` supplies the *current-state* bits of each register
/// (in registration order). Passing the bits in — rather than allocating
/// fresh ones internally — lets BMC chain time frames and lets the BDD
/// engine control variable numbering.
///
/// # Panics
///
/// Panics on width mismatches, on variable shift amounts (only shifts by a
/// constant node are synthesizable to muxless wiring), and on arity
/// mismatches.
pub fn lower<C: BitCtx>(
    rtl: &Rtl,
    ctx: &mut C,
    input_bits: &[Vec<C::Bit>],
    reg_bits: &[Vec<C::Bit>],
) -> LoweredCircuit<C::Bit> {
    assert_eq!(input_bits.len(), rtl.inputs().len(), "input arity mismatch");
    assert_eq!(
        reg_bits.len(),
        rtl.num_registers(),
        "register arity mismatch"
    );
    let mut bits: Vec<Vec<C::Bit>> = Vec::with_capacity(rtl.num_nodes());
    let mut in_idx = 0usize;
    let mut reg_idx = 0usize;

    for i in 0..rtl.num_nodes() {
        let sig = SigId(i);
        let w = rtl.width(sig) as usize;
        let v: Vec<C::Bit> = match rtl.op(sig) {
            RtlOp::Const(c) => (0..w).map(|b| ctx.bit_const(c >> b & 1 == 1)).collect(),
            RtlOp::Input => {
                let v = input_bits[in_idx].clone();
                assert_eq!(v.len(), w, "input width mismatch");
                in_idx += 1;
                v
            }
            RtlOp::Reg { .. } => {
                let v = reg_bits[reg_idx].clone();
                assert_eq!(v.len(), w, "register width mismatch");
                reg_idx += 1;
                v
            }
            RtlOp::Not(a) => {
                let a = zext(ctx, &bits[a.index()], w);
                a.iter().map(|&b| ctx.bit_not(b)).collect()
            }
            RtlOp::Neg(a) => {
                let a = zext(ctx, &bits[a.index()], w);
                let na: Vec<C::Bit> = a.iter().map(|&b| ctx.bit_not(b)).collect();
                let one = const_vec(ctx, 1, w);
                add(ctx, &na, &one)
            }
            RtlOp::Binary(op, a, b) => {
                let ops_w = if op.is_comparison() {
                    (rtl.width(*a).max(rtl.width(*b))) as usize
                } else {
                    w
                };
                let bv_a = zext(ctx, &bits[a.index()], ops_w);
                // Constant-shift special case reads the raw constant.
                if matches!(op, BinOp::Shl | BinOp::Shr) {
                    let amount = match rtl.op(*b) {
                        RtlOp::Const(c) => (*c % ops_w as u64) as usize,
                        _ => panic!(
                            "variable shift amounts are not lowered; \
                             use a constant shift (synthesis guarantees this)"
                        ),
                    };
                    match op {
                        BinOp::Shl => shift_left(ctx, &bv_a, amount),
                        BinOp::Shr => shift_right(ctx, &bv_a, amount),
                        _ => unreachable!(),
                    }
                } else {
                    let bv_b = zext(ctx, &bits[b.index()], ops_w);
                    lower_binop(ctx, *op, &bv_a, &bv_b)
                }
            }
            RtlOp::Mux { sel, then_, else_ } => {
                let s = bits[sel.index()][0];
                let t = zext(ctx, &bits[then_.index()], w);
                let e = zext(ctx, &bits[else_.index()], w);
                t.iter()
                    .zip(&e)
                    .map(|(&tb, &eb)| ctx.bit_mux(s, tb, eb))
                    .collect()
            }
        };
        debug_assert_eq!(v.len(), w);
        bits.push(v);
    }
    LoweredCircuit { bits }
}

/// Public bit-vector helpers for clients (the model checker and SAT-ATPG)
/// that build constraints on top of lowered circuits.
pub mod bv {
    use super::{add_with_carry, equal, sub_with_borrow, BitCtx};

    /// Bits of a constant, LSB first.
    pub fn constant<C: BitCtx>(ctx: &mut C, value: u64, width: usize) -> Vec<C::Bit> {
        super::const_vec(ctx, value, width)
    }

    /// Ripple-carry sum (inputs must have equal width).
    pub fn add<C: BitCtx>(ctx: &mut C, a: &[C::Bit], b: &[C::Bit]) -> Vec<C::Bit> {
        super::add(ctx, a, b)
    }

    /// Difference `a − b` (two's complement, equal widths).
    pub fn sub<C: BitCtx>(ctx: &mut C, a: &[C::Bit], b: &[C::Bit]) -> Vec<C::Bit> {
        sub_with_borrow(ctx, a, b).0
    }

    /// Equality bit.
    pub fn eq<C: BitCtx>(ctx: &mut C, a: &[C::Bit], b: &[C::Bit]) -> C::Bit {
        equal(ctx, a, b)
    }

    /// Unsigned `a < b`.
    pub fn lt<C: BitCtx>(ctx: &mut C, a: &[C::Bit], b: &[C::Bit]) -> C::Bit {
        let (_, no_borrow) = sub_with_borrow(ctx, a, b);
        ctx.bit_not(no_borrow)
    }

    /// Unsigned `a ≤ b`.
    pub fn le<C: BitCtx>(ctx: &mut C, a: &[C::Bit], b: &[C::Bit]) -> C::Bit {
        let (_, no_borrow) = sub_with_borrow(ctx, b, a);
        no_borrow
    }

    /// Carry-out of `a + b + cin` (for overflow constraints).
    pub fn add_carry<C: BitCtx>(
        ctx: &mut C,
        a: &[C::Bit],
        b: &[C::Bit],
        cin: Option<C::Bit>,
    ) -> (Vec<C::Bit>, C::Bit) {
        add_with_carry(ctx, a, b, cin)
    }
}

fn const_vec<C: BitCtx>(ctx: &mut C, value: u64, width: usize) -> Vec<C::Bit> {
    (0..width)
        .map(|b| ctx.bit_const(value >> b & 1 == 1))
        .collect()
}

fn zext<C: BitCtx>(ctx: &mut C, bits: &[C::Bit], width: usize) -> Vec<C::Bit> {
    let mut v: Vec<C::Bit> = bits.iter().copied().take(width).collect();
    while v.len() < width {
        v.push(ctx.bit_const(false));
    }
    v
}

fn add<C: BitCtx>(ctx: &mut C, a: &[C::Bit], b: &[C::Bit]) -> Vec<C::Bit> {
    add_with_carry(ctx, a, b, None).0
}

/// Ripple-carry adder; returns (sum, carry-out).
fn add_with_carry<C: BitCtx>(
    ctx: &mut C,
    a: &[C::Bit],
    b: &[C::Bit],
    cin: Option<C::Bit>,
) -> (Vec<C::Bit>, C::Bit) {
    let mut carry = match cin {
        Some(c) => c,
        None => ctx.bit_const(false),
    };
    let mut out = Vec::with_capacity(a.len());
    for (&x, &y) in a.iter().zip(b) {
        let xy = ctx.bit_xor(x, y);
        let sum = ctx.bit_xor(xy, carry);
        let c1 = ctx.bit_and(x, y);
        let c2 = ctx.bit_and(xy, carry);
        carry = ctx.bit_or(c1, c2);
        out.push(sum);
    }
    (out, carry)
}

/// Subtraction `a − b` via `a + ¬b + 1`; returns (diff, no-borrow flag).
/// The carry-out is 1 exactly when `a ≥ b` (unsigned).
fn sub_with_borrow<C: BitCtx>(ctx: &mut C, a: &[C::Bit], b: &[C::Bit]) -> (Vec<C::Bit>, C::Bit) {
    let nb: Vec<C::Bit> = b.iter().map(|&x| ctx.bit_not(x)).collect();
    let one = ctx.bit_const(true);
    add_with_carry(ctx, a, &nb, Some(one))
}

fn shift_left<C: BitCtx>(ctx: &mut C, a: &[C::Bit], amount: usize) -> Vec<C::Bit> {
    let w = a.len();
    (0..w)
        .map(|i| {
            if i >= amount {
                a[i - amount]
            } else {
                ctx.bit_const(false)
            }
        })
        .collect()
}

fn shift_right<C: BitCtx>(ctx: &mut C, a: &[C::Bit], amount: usize) -> Vec<C::Bit> {
    let w = a.len();
    (0..w)
        .map(|i| {
            if i + amount < w {
                a[i + amount]
            } else {
                ctx.bit_const(false)
            }
        })
        .collect()
}

fn equal<C: BitCtx>(ctx: &mut C, a: &[C::Bit], b: &[C::Bit]) -> C::Bit {
    let mut acc = ctx.bit_const(true);
    for (&x, &y) in a.iter().zip(b) {
        let diff = ctx.bit_xor(x, y);
        let same = ctx.bit_not(diff);
        acc = ctx.bit_and(acc, same);
    }
    acc
}

fn lower_binop<C: BitCtx>(ctx: &mut C, op: BinOp, a: &[C::Bit], b: &[C::Bit]) -> Vec<C::Bit> {
    match op {
        BinOp::Add => add(ctx, a, b),
        BinOp::Sub => sub_with_borrow(ctx, a, b).0,
        BinOp::Mul => {
            let w = a.len();
            let mut acc = const_vec(ctx, 0, w);
            for (i, &bit) in b.iter().enumerate() {
                // acc += (a << i) masked by b[i]
                let shifted = shift_left(ctx, a, i);
                let masked: Vec<C::Bit> = shifted.iter().map(|&s| ctx.bit_and(s, bit)).collect();
                acc = add(ctx, &acc, &masked);
            }
            acc
        }
        BinOp::And => a.iter().zip(b).map(|(&x, &y)| ctx.bit_and(x, y)).collect(),
        BinOp::Or => a.iter().zip(b).map(|(&x, &y)| ctx.bit_or(x, y)).collect(),
        BinOp::Xor => a.iter().zip(b).map(|(&x, &y)| ctx.bit_xor(x, y)).collect(),
        BinOp::Eq => vec![equal(ctx, a, b)],
        BinOp::Ne => {
            let e = equal(ctx, a, b);
            vec![ctx.bit_not(e)]
        }
        BinOp::Lt => {
            let (_, no_borrow) = sub_with_borrow(ctx, a, b);
            vec![ctx.bit_not(no_borrow)]
        }
        BinOp::Ge => {
            let (_, no_borrow) = sub_with_borrow(ctx, a, b);
            vec![no_borrow]
        }
        BinOp::Gt => {
            let (_, no_borrow) = sub_with_borrow(ctx, b, a);
            vec![ctx.bit_not(no_borrow)]
        }
        BinOp::Le => {
            let (_, no_borrow) = sub_with_borrow(ctx, b, a);
            vec![no_borrow]
        }
        BinOp::Div | BinOp::Rem => unreachable!("rejected by Rtl::binary"),
        BinOp::Shl | BinOp::Shr => unreachable!("handled by the constant-shift path"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rtl::Rtl;
    use sat::Lit;

    /// Builds a combinational RTL exercising an operator, lowers it to CNF,
    /// and checks agreement with the word-level simulator on many inputs.
    fn check_op(op: BinOp, width: u32, cases: &[(u64, u64)]) {
        let mut rtl = Rtl::new("t");
        let a = rtl.input("a", width);
        let b = rtl.input("b", width);
        let o = rtl.binary(op, a, b);
        rtl.output("o", o);

        for &(va, vb) in cases {
            let expected = rtl.eval_combinational(&[va, vb])[0];
            let mut ctx = CnfBackend::new();
            let bits_a: Vec<Lit> = (0..width).map(|_| ctx.bit_fresh()).collect();
            let bits_b: Vec<Lit> = (0..width).map(|_| ctx.bit_fresh()).collect();
            let lowered = lower(&rtl, &mut ctx, &[bits_a.clone(), bits_b.clone()], &[]);
            let out_bits = lowered.outputs(&rtl)[0].1.clone();
            let mut assumptions = Vec::new();
            for (i, &l) in bits_a.iter().enumerate() {
                assumptions.push(sat::Lit::with_polarity(l.var(), va >> i & 1 == 1));
            }
            for (i, &l) in bits_b.iter().enumerate() {
                assumptions.push(sat::Lit::with_polarity(l.var(), vb >> i & 1 == 1));
            }
            let builder = ctx.builder_mut();
            assert!(builder.solve_with(&assumptions).is_sat());
            let mut got = 0u64;
            for (i, &l) in out_bits.iter().enumerate() {
                if builder.lit_value(l) {
                    got |= 1 << i;
                }
            }
            assert_eq!(got, expected, "{op:?} on ({va}, {vb})");
        }
    }

    const CASES: &[(u64, u64)] = &[
        (0, 0),
        (1, 0),
        (0, 1),
        (7, 7),
        (255, 1),
        (128, 128),
        (200, 55),
        (13, 250),
        (255, 255),
    ];

    #[test]
    fn cnf_add_matches_simulator() {
        check_op(BinOp::Add, 8, CASES);
    }

    #[test]
    fn cnf_sub_matches_simulator() {
        check_op(BinOp::Sub, 8, CASES);
    }

    #[test]
    fn cnf_mul_matches_simulator() {
        check_op(BinOp::Mul, 8, CASES);
    }

    #[test]
    fn cnf_bitwise_match_simulator() {
        check_op(BinOp::And, 8, CASES);
        check_op(BinOp::Or, 8, CASES);
        check_op(BinOp::Xor, 8, CASES);
    }

    #[test]
    fn cnf_comparisons_match_simulator() {
        check_op(BinOp::Eq, 8, CASES);
        check_op(BinOp::Ne, 8, CASES);
        check_op(BinOp::Lt, 8, CASES);
        check_op(BinOp::Le, 8, CASES);
        check_op(BinOp::Gt, 8, CASES);
        check_op(BinOp::Ge, 8, CASES);
    }

    #[test]
    fn constant_shifts_match_simulator() {
        for amount in 0..8u64 {
            let mut rtl = Rtl::new("t");
            let a = rtl.input("a", 8);
            let k = rtl.constant(amount, 8);
            let l = rtl.binary(BinOp::Shl, a, k);
            let r = rtl.binary(BinOp::Shr, a, k);
            rtl.output("l", l);
            rtl.output("r", r);
            let expected = rtl.eval_combinational(&[0b1011_0110]);

            let mut ctx = CnfBackend::new();
            let bits_a: Vec<Lit> = (0..8).map(|_| ctx.bit_fresh()).collect();
            let lowered = lower(&rtl, &mut ctx, std::slice::from_ref(&bits_a), &[]);
            let outs = lowered.outputs(&rtl);
            let mut assumptions = Vec::new();
            for (i, &lit) in bits_a.iter().enumerate() {
                assumptions.push(sat::Lit::with_polarity(
                    lit.var(),
                    0b1011_0110u64 >> i & 1 == 1,
                ));
            }
            let builder = ctx.builder_mut();
            assert!(builder.solve_with(&assumptions).is_sat());
            for (oi, (_, obits)) in outs.iter().enumerate() {
                let mut got = 0u64;
                for (i, &lit) in obits.iter().enumerate() {
                    if builder.lit_value(lit) {
                        got |= 1 << i;
                    }
                }
                assert_eq!(got, expected[oi], "shift by {amount}");
            }
        }
    }

    #[test]
    fn bdd_backend_matches_simulator() {
        let mut rtl = Rtl::new("t");
        let a = rtl.input("a", 4);
        let b = rtl.input("b", 4);
        let s = rtl.binary(BinOp::Add, a, b);
        let lt = rtl.binary(BinOp::Lt, a, b);
        rtl.output("s", s);
        rtl.output("lt", lt);

        let mut mgr = bdd::Manager::new();
        let mut ctx = BddBackend::new(&mut mgr, 0);
        let bits_a: Vec<bdd::Ref> = (0..4).map(|_| ctx.bit_fresh()).collect();
        let bits_b: Vec<bdd::Ref> = (0..4).map(|_| ctx.bit_fresh()).collect();
        let lowered = lower(&rtl, &mut ctx, &[bits_a, bits_b], &[]);
        let outs = lowered.outputs(&rtl);

        for va in 0..16u64 {
            for vb in 0..16u64 {
                let expected = rtl.eval_combinational(&[va, vb]);
                let mut assignment = vec![false; 8];
                for i in 0..4 {
                    assignment[i] = va >> i & 1 == 1;
                    assignment[4 + i] = vb >> i & 1 == 1;
                }
                for (oi, (_, obits)) in outs.iter().enumerate() {
                    let mut got = 0u64;
                    for (i, &r) in obits.iter().enumerate() {
                        if mgr.eval(r, &assignment) {
                            got |= 1 << i;
                        }
                    }
                    assert_eq!(got, expected[oi], "a={va} b={vb}");
                }
            }
        }
    }

    #[test]
    fn miter_proves_equivalence_of_two_adders() {
        // a + b  vs  b + a: the miter (xor of outputs) must be UNSAT.
        let mut rtl = Rtl::new("t");
        let a = rtl.input("a", 8);
        let b = rtl.input("b", 8);
        let s1 = rtl.binary(BinOp::Add, a, b);
        let s2 = rtl.binary(BinOp::Add, b, a);
        let ne = rtl.binary(BinOp::Ne, s1, s2);
        rtl.output("ne", ne);

        let mut ctx = CnfBackend::new();
        let bits_a: Vec<Lit> = (0..8).map(|_| ctx.bit_fresh()).collect();
        let bits_b: Vec<Lit> = (0..8).map(|_| ctx.bit_fresh()).collect();
        let lowered = lower(&rtl, &mut ctx, &[bits_a, bits_b], &[]);
        let ne_bit = lowered.outputs(&rtl)[0].1[0];
        let builder = ctx.builder_mut();
        builder.assert_lit(ne_bit);
        assert!(builder.solve().is_unsat());
    }

    #[test]
    fn widening_zero_extends() {
        let mut rtl = Rtl::new("t");
        let a = rtl.input("a", 4);
        let b = rtl.input("b", 8);
        let s = rtl.binary(BinOp::Add, a, b);
        rtl.output("s", s);
        assert_eq!(rtl.eval_combinational(&[15, 240])[0], 255);

        let mut ctx = CnfBackend::new();
        let bits_a: Vec<Lit> = (0..4).map(|_| ctx.bit_fresh()).collect();
        let bits_b: Vec<Lit> = (0..8).map(|_| ctx.bit_fresh()).collect();
        let lowered = lower(&rtl, &mut ctx, &[bits_a.clone(), bits_b.clone()], &[]);
        let out = lowered.outputs(&rtl)[0].1.clone();
        let mut assumptions = Vec::new();
        for (i, &l) in bits_a.iter().enumerate() {
            assumptions.push(sat::Lit::with_polarity(l.var(), 15u64 >> i & 1 == 1));
        }
        for (i, &l) in bits_b.iter().enumerate() {
            assumptions.push(sat::Lit::with_polarity(l.var(), 240u64 >> i & 1 == 1));
        }
        let builder = ctx.builder_mut();
        assert!(builder.solve_with(&assumptions).is_sat());
        let mut got = 0u64;
        for (i, &l) in out.iter().enumerate() {
            if builder.lit_value(l) {
                got |= 1 << i;
            }
        }
        assert_eq!(got, 255);
    }
}
