//! Umbrella crate re-exporting every crate of the Symbad reproduction so the
//! top-level `examples/` and `tests/` can exercise the whole public API.
pub use atpg;
pub use bdd;
pub use behav;
pub use cache;
pub use exec;
pub use fuzz;
pub use hdl;
pub use lp;
pub use mc;
pub use media;
pub use pcc;
pub use platform;
pub use sat;
pub use sim;
pub use symbad_core;
pub use symbc;
pub use telemetry;
pub use tlm;

pub mod testkit;
