//! Shared scaffolding for the top-level integration tests.
//!
//! The `tests/*.rs` integration binaries are separate crates, so helpers
//! they all need — scratch directories, golden-file comparison, the
//! brute-force SAT reference, CNF-to-engine builders — live here instead
//! of being copy-pasted into each file. Everything is deterministic and
//! filesystem-safe for parallel test threads (scratch directories are
//! keyed by caller-chosen names).

use std::fs;
use std::path::PathBuf;

/// A scratch directory under `target/test-scratch/` for persistence
/// round-trips, wiped on entry and unique per `name` so parallel test
/// threads never collide.
pub fn scratch_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join("test-scratch")
        .join(name);
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// The committed golden file for `name`, under `tests/golden/`.
pub fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compares `actual` against the committed golden file, or rewrites the
/// golden when the `UPDATE_GOLDEN` environment variable is set.
pub fn assert_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, actual).unwrap();
        return;
    }
    let expected = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {name}: {e}; run with UPDATE_GOLDEN=1"));
    assert_eq!(
        actual, expected,
        "{name} diverged from its golden file; if the change is intentional, \
         regenerate with UPDATE_GOLDEN=1 cargo test"
    );
}

/// Exhaustive satisfiability of a small CNF over `n` variables, each
/// clause a list of `(variable index, polarity)` literals. The reference
/// every engine-level SAT answer is checked against.
pub fn brute_force_sat(n: usize, clauses: &[Vec<(usize, bool)>]) -> bool {
    assert!(n < 32, "brute force enumerates 2^n assignments");
    (0..(1u32 << n)).any(|bits| {
        clauses
            .iter()
            .all(|c| c.iter().any(|&(v, pos)| (bits >> v & 1 == 1) == pos))
    })
}

/// Loads a `(variable index, polarity)` CNF into a fresh CDCL solver,
/// returning the solver and the variable handles in index order.
pub fn solver_from_clauses(
    n: usize,
    clauses: &[Vec<(usize, bool)>],
) -> (sat::Solver, Vec<sat::Var>) {
    let mut solver = sat::Solver::new();
    let vars: Vec<sat::Var> = (0..n).map(|_| solver.new_var()).collect();
    for c in clauses {
        solver.add_clause(
            c.iter()
                .map(|&(v, pos)| sat::Lit::with_polarity(vars[v], pos)),
        );
    }
    (solver, vars)
}

/// Builds the same CNF as a BDD (conjunction of clause disjunctions),
/// returning the manager and the formula root.
pub fn bdd_from_clauses(clauses: &[Vec<(usize, bool)>]) -> (bdd::Manager, bdd::Ref) {
    let mut mgr = bdd::Manager::new();
    let mut formula = mgr.constant(true);
    for c in clauses {
        let mut clause_bdd = mgr.constant(false);
        for &(v, pos) in c {
            let lit = if pos {
                mgr.var(v as u32)
            } else {
                mgr.nvar(v as u32)
            };
            clause_bdd = mgr.or(clause_bdd, lit);
        }
        formula = mgr.and(formula, clause_bdd);
    }
    (mgr, formula)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn brute_force_and_both_engines_agree_on_a_tiny_cnf() {
        // (x0 ∨ x1) ∧ (¬x0) ∧ (¬x1) is UNSAT; drop the last clause → SAT.
        let unsat = vec![
            vec![(0, true), (1, true)],
            vec![(0, false)],
            vec![(1, false)],
        ];
        let sat_cnf = &unsat[..2];
        assert!(!brute_force_sat(2, &unsat));
        assert!(brute_force_sat(2, sat_cnf));
        let (mut s, _) = solver_from_clauses(2, &unsat);
        assert!(!s.solve().is_sat());
        let (_, f) = bdd_from_clauses(&unsat);
        assert_eq!(f, bdd::Ref::FALSE);
        let (_, f) = bdd_from_clauses(sat_cnf);
        assert_ne!(f, bdd::Ref::FALSE);
    }

    #[test]
    fn scratch_dirs_are_isolated_by_name() {
        let a = scratch_dir("testkit-a");
        let b = scratch_dir("testkit-b");
        assert_ne!(a, b);
        fs::create_dir_all(&a).unwrap();
        fs::write(a.join("probe"), "x").unwrap();
        // Re-requesting the same name wipes it.
        let a2 = scratch_dir("testkit-a");
        assert_eq!(a, a2);
        assert!(!a2.join("probe").exists());
        let _ = fs::remove_dir_all(&a);
        let _ = fs::remove_dir_all(&b);
    }
}
