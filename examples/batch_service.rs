//! The batch verification service under a mixed multi-tenant workload.
//!
//! Three tenants submit twelve jobs spanning every job axis — designs
//! (probe counts), seeded fault campaigns, platform variants — and the
//! service drains them through the shared obligation cache:
//!
//! * **batch A** (cold, 8 workers): jobs run one at a time with their
//!   verification obligations fanned out; the service journal is
//!   streamed incrementally (`Service::flush_events` after every job,
//!   exactly as an operator's log shipper would) and every line is
//!   schema-checked,
//! * **batch B** (warm, same service): the same twelve specs resubmitted
//!   — obligations replay from cache entries batch A inserted, the
//!   cross-tenant hit counters become non-zero, and every report is
//!   asserted bit-identical to its batch-A counterpart,
//! * **batch C** (cold, 1 worker, fresh service): the sequential
//!   baseline for the throughput comparison.
//!
//! Artifacts land under `target/serve/`:
//!
//! * `service_journal.jsonl` — the streamed service lifecycle lane,
//! * `job-XXXX.jsonl` — each batch-A job's private flight recorder,
//! * `BENCH_service.json` — the service benchmark summary,
//!
//! and the same summary is spliced into `target/flow/BENCH_flow.json`
//! as a `service` section (creating the file if `full_flow` has not run
//! yet) so CI reads one benchmark document.
//!
//! ```text
//! cargo run --release --example batch_service
//! ```

use std::fs;
use std::path::Path;
use std::thread;

use serve::{BatchReport, JobRecord, Service, ServiceConfig};
use symbad_core::job::{FaultPlanSpec, JobSpec};
use telemetry::{journal, Json};

/// The mixed workload: every tenant submits one job per axis variant.
fn spec_matrix() -> Vec<JobSpec> {
    let base = JobSpec::default();
    let mut lean = base;
    lean.design.probes = 1;
    let mut faulted = base;
    faulted.faults = Some(FaultPlanSpec::seeded(7));
    let mut fast_fabric = base;
    fast_fabric.platform.hw_speedup = 8;
    vec![base, lean, faulted, fast_fabric]
}

fn submissions() -> Vec<(&'static str, JobSpec)> {
    let mut subs = Vec::new();
    for tenant in ["alpha", "beta", "gamma"] {
        for spec in spec_matrix() {
            subs.push((tenant, spec));
        }
    }
    subs
}

fn service(workers: usize) -> Service {
    Service::new(ServiceConfig {
        mode: exec::ExecMode::from_workers(workers),
        wall_clock: true,
        ..ServiceConfig::default()
    })
}

/// Per-job report JSONs keyed by (tenant, spec fingerprint), sorted —
/// the batch identity the determinism assertions compare.
fn keyed_reports(records: &[JobRecord]) -> Vec<((String, u128), String)> {
    let mut out: Vec<((String, u128), String)> = records
        .iter()
        .map(|r| {
            let report = r
                .report()
                .unwrap_or_else(|| panic!("{} completed", r.id))
                .to_json();
            ((r.tenant.clone(), r.spec.fingerprint().0), report)
        })
        .collect();
    out.sort();
    out
}

/// Splices `section` into the top-level object of `path` as
/// `"service"`, replacing any previous `service` section and creating
/// the file when absent. Textual: the bench file is always the 2-space
/// pretty rendering of a flat object, so the last `}` closes the root.
fn merge_bench_section(path: &Path, section: &Json) -> std::io::Result<()> {
    let base = fs::read_to_string(path).unwrap_or_else(|_| "{}".to_owned());
    let mut doc = base.trim_end().to_owned();
    if let Some(idx) = doc.find(",\n  \"service\":") {
        // A previous batch_service run already spliced a section in —
        // drop it (it extends to the root's closing brace).
        doc.truncate(idx);
        doc.push_str("\n}");
    }
    let body = doc.strip_suffix('}').unwrap_or("{").trim_end();
    // Indent the nested rendering by one level (2 spaces), dropping the
    // trailing newline of `render_pretty`.
    let rendered = section.render_pretty();
    let nested = rendered.trim_end().replace('\n', "\n  ");
    let merged = if body.trim_end() == "{" {
        format!("{{\n  \"service\": {nested}\n}}\n")
    } else {
        format!("{body},\n  \"service\": {nested}\n}}\n")
    };
    fs::write(path, merged)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = Path::new("target/serve");
    fs::create_dir_all(out_dir)?;

    let host_parallelism = thread::available_parallelism().map_or(1, |n| n.get());
    let workers = 8;
    let subs = submissions();

    // ── Batch A: cold cache, 8 workers, streamed journal ──────────────
    let mut svc = service(workers);
    let mut streamed = String::new();
    for (tenant, spec) in &subs {
        svc.submit(tenant, *spec)?;
    }
    streamed.push_str(&svc.flush_events());
    let mut records_a = Vec::new();
    let mut latency = telemetry::Histogram::new();
    while let Some(record) = svc.run_next() {
        // The incremental stream an operator would tail: admissions were
        // flushed above, and each iteration flushes exactly one job's
        // started/obligation/finished lines (plus its wall timing).
        streamed.push_str(&svc.flush_events());
        latency.record(record.wall_us);
        records_a.push(record);
    }
    for line in streamed.lines() {
        journal::validate_line(line).map_err(|e| format!("bad journal line: {e}"))?;
    }
    let reports_a = keyed_reports(&records_a);
    assert!(
        records_a
            .iter()
            .all(|r| r.report().is_some_and(|rep| rep.all_ok())),
        "batch A: every job's flow passes"
    );

    let obligations_a: u64 = records_a.iter().map(JobRecord::obligations).sum();
    let wall_a: u64 = records_a.iter().map(|r| r.wall_us).sum();
    let latency_a = latency.summary();
    let throughput_a = obligations_a as f64 * 1_000_000.0 / wall_a.max(1) as f64;

    // ── Batch B: warm cache, same service — bit-identical, shared ─────
    for (tenant, spec) in &subs {
        svc.submit(tenant, *spec)?;
    }
    let warm: BatchReport = svc.drain();
    assert_eq!(
        keyed_reports(&warm.records),
        reports_a,
        "warm reports are bit-identical to cold ones"
    );
    let cross = svc.cross_tenant_hits();
    let cross_total: u64 = cross.iter().map(|(_, n)| n).sum();
    assert!(
        cross_total > 0,
        "tenants share fingerprint-identical obligations, got {cross:?}"
    );

    // ── Batch C: cold cache, 1 worker — the sequential baseline ───────
    let mut svc_seq = service(1);
    for (tenant, spec) in &subs {
        svc_seq.submit(tenant, *spec)?;
    }
    let seq = svc_seq.drain();
    assert_eq!(
        keyed_reports(&seq.records),
        reports_a,
        "worker count does not change any report"
    );
    let throughput_seq = seq.stats.obligations_per_sec;

    // ── Artifacts ─────────────────────────────────────────────────────
    fs::write(out_dir.join("service_journal.jsonl"), &streamed)?;
    for record in &records_a {
        fs::write(
            out_dir.join(format!("{}.jsonl", record.id)),
            record.journal.to_jsonl(),
        )?;
    }

    let tenant_cache = Json::obj(
        svc.tenant_cache_stats()
            .iter()
            .map(|(tenant, stats)| {
                (
                    tenant.as_str(),
                    Json::obj(vec![
                        ("hits", Json::UInt(stats.hits)),
                        ("misses", Json::UInt(stats.misses)),
                        ("hit_rate", Json::Num(stats.hit_rate())),
                    ]),
                )
            })
            .collect::<Vec<_>>(),
    );
    let cross_by_tenant = Json::obj(
        cross
            .iter()
            .map(|(tenant, n)| (tenant.as_str(), Json::UInt(*n)))
            .collect::<Vec<_>>(),
    );
    let section = Json::obj(vec![
        ("jobs", Json::UInt(subs.len() as u64)),
        ("tenants", Json::UInt(3)),
        ("workers", Json::UInt(workers as u64)),
        ("host_parallelism", Json::UInt(host_parallelism as u64)),
        ("obligations", Json::UInt(obligations_a)),
        ("obligations_per_sec", Json::Num(throughput_a)),
        ("obligations_per_sec_1_worker", Json::Num(throughput_seq)),
        (
            "job_latency_p50_ms",
            Json::Num(latency_a.p50 as f64 / 1000.0),
        ),
        (
            "job_latency_p95_ms",
            Json::Num(latency_a.p95 as f64 / 1000.0),
        ),
        (
            "job_latency_p99_ms",
            Json::Num(latency_a.p99 as f64 / 1000.0),
        ),
        ("cross_tenant_cache_hits", Json::UInt(cross_total)),
        ("cross_tenant_cache_hits_by_tenant", cross_by_tenant),
        ("tenant_cache", tenant_cache),
    ]);
    fs::write(out_dir.join("BENCH_service.json"), section.render_pretty())?;
    let bench_flow = Path::new("target/flow");
    fs::create_dir_all(bench_flow)?;
    merge_bench_section(&bench_flow.join("BENCH_flow.json"), &section)?;

    println!(
        "batch service: {} jobs × 3 batches, all reports bit-identical",
        subs.len()
    );
    println!(
        "  cold {workers}-worker: {obligations_a} obligations in {:.1} ms ({throughput_a:.0} obl/s)",
        wall_a as f64 / 1000.0
    );
    println!(
        "  job latency p50/p95/p99: {:.1}/{:.1}/{:.1} ms",
        latency_a.p50 as f64 / 1000.0,
        latency_a.p95 as f64 / 1000.0,
        latency_a.p99 as f64 / 1000.0
    );
    println!(
        "  1-worker baseline: {:.0} obl/s (host parallelism {host_parallelism})",
        throughput_seq
    );
    println!("  cross-tenant cache hits: {cross_total} ({cross:?})");
    println!("artifacts: target/serve/, service section in target/flow/BENCH_flow.json");
    Ok(())
}
