//! The Figure-1 verification cascade end-to-end: one seeded error per
//! class, each caught by the stage the paper assigns to it.
//!
//! ```text
//! cargo run --release --example verification_cascade
//! ```

use symbad_core::cascade;

fn main() {
    let report = cascade::run();
    println!("Symbad verification cascade\n");
    for s in &report.stages {
        println!("level {} — {}", s.level, s.stage);
        println!("  seeded error : {}", s.seeded_error);
        println!("  caught       : {}", s.caught);
        println!("  fix certified: {}", s.clean_passes);
        println!("  evidence     : {}\n", s.detail);
    }
    println!(
        "cascade effective (every stage catches its error class): {}",
        report.all_effective()
    );
    assert!(report.all_effective());
}
