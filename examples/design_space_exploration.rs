//! Architecture exploration: the level-2 HW/SW partition curve and the
//! level-3 reconfiguration ablations (context split, call placement).
//!
//! ```text
//! cargo run --release --example design_space_exploration
//! ```

use symbad_core::explore;
use symbad_core::partition::ArchConfig;
use symbad_core::workload::Workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = Workload::small();
    let arch = ArchConfig::default();

    println!("── HW/SW partition sweep (level 2) ──");
    println!(
        "{:<28} {:>14} {:>10}",
        "candidate", "ticks/frame", "bus util"
    );
    for p in explore::partition_sweep(&workload, &arch)? {
        println!(
            "{:<28} {:>14.0} {:>9.1}%",
            p.name,
            p.ticks_per_frame,
            p.bus_utilization * 100.0
        );
    }

    println!("\n── Context partitioning (level 3, experiment E9) ──");
    println!(
        "{:<36} {:>12} {:>10} {:>12}",
        "mapping", "ticks/frame", "reconfigs", "bits words"
    );
    for p in explore::context_ablation(&workload, &arch)? {
        println!(
            "{:<36} {:>12.0} {:>10} {:>12}",
            p.name, p.ticks_per_frame, p.reconfigurations, p.download_words
        );
    }

    println!("\n── Reconfiguration placement (level 3, experiment E10) ──");
    println!(
        "{:<36} {:>12} {:>10} {:>12}",
        "strategy", "ticks/frame", "reconfigs", "bits words"
    );
    for p in explore::strategy_ablation(&workload, &arch)? {
        println!(
            "{:<36} {:>12.0} {:>10} {:>12}",
            p.name, p.ticks_per_frame, p.reconfigurations, p.download_words
        );
    }
    Ok(())
}
