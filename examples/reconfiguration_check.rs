//! SymbC in action: proving the fundamental consistency property of
//! reconfiguration-instrumented software — "each time the software requires
//! a hardware resource of the reconfigurable part, this resource is
//! actually available" — and producing a counterexample when it is
//! violated.
//!
//! ```text
//! cargo run --release --example reconfiguration_check
//! ```

use behav::{Expr, FunctionBuilder};
use symbc::{check, ConfigMap, Verdict};

fn main() {
    // The paper's configuration table: DISTANCE in config1, ROOT in
    // config2.
    let mut map = ConfigMap::new();
    let config1 = map.add_config("config1");
    let config2 = map.add_config("config2");
    map.add_function(config1, "distance");
    map.add_function(config2, "root");

    // ── Correctly instrumented software ───────────────────────────────
    let mut fb = FunctionBuilder::new("frame_match", 32);
    let entries = fb.param("entries", 8);
    let i = fb.local("i", 8);
    let acc = fb.local("acc", 32);
    fb.reconfigure(config1);
    fb.while_(Expr::lt(Expr::var(i), Expr::var(entries)), |b| {
        b.resource_call("distance", vec![Expr::var(i)], Some(acc));
        b.assign(i, Expr::add(Expr::var(i), Expr::constant(1, 8)));
    });
    fb.reconfigure(config2);
    fb.resource_call("root", vec![Expr::var(acc)], Some(acc));
    fb.ret(Expr::var(acc));
    let correct = fb.build();

    match check(&correct, &map) {
        Verdict::Consistent(cert) => println!(
            "correct SW: CERTIFIED ({} resource calls, {} reconfigurations)",
            cert.checked_calls, cert.reconfigurations
        ),
        Verdict::Inconsistent(v) => println!("correct SW: unexpected violations {v:?}"),
    }

    // ── A subtle bug: reconfiguration inside only one branch ──────────
    let mut fb = FunctionBuilder::new("frame_match_buggy", 32);
    let fast_path = fb.param("fast_path", 1);
    let acc = fb.local("acc", 32);
    fb.reconfigure(config1);
    fb.resource_call("distance", vec![], Some(acc));
    fb.if_(Expr::eq(Expr::var(fast_path), Expr::constant(0, 1)), |b| {
        b.reconfigure(config2);
    });
    // On the fast path config1 is still loaded here — ROOT is absent.
    fb.resource_call("root", vec![Expr::var(acc)], Some(acc));
    fb.ret(Expr::var(acc));
    let buggy = fb.build();

    println!(
        "\nsoftware under check:\n{}",
        behav::pretty::function_to_string(&buggy, true)
    );
    match check(&buggy, &map) {
        Verdict::Consistent(_) => println!("buggy SW: MISSED (should not happen)"),
        Verdict::Inconsistent(violations) => {
            println!("buggy SW: {} violation(s) found", violations.len());
            for v in &violations {
                println!("  {v}");
                println!(
                    "  possibly-loaded configurations at the call: {:?}",
                    v.offending
                        .iter()
                        .map(|c| c.map(|c| map.config_name(c).to_owned()))
                        .collect::<Vec<_>>()
                );
                if let Some(witness) = &v.witness {
                    println!("  witness branch decisions: {witness:?}");
                }
            }
        }
    }
}
