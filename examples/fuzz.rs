//! Differential fuzzing driver: runs every oracle family at its standard
//! budget, prints a per-family summary, and writes a machine-readable
//! report (plus one replayable reproducer file per disagreement) under
//! `target/symbad-fuzz/`. Exits nonzero if any oracle disagreed, so CI
//! can gate on it.
//!
//! ```text
//! cargo run --release --example fuzz                  # all families
//! SYMBAD_FUZZ_ITERS=1000 cargo run --release --example fuzz
//! SYMBAD_FUZZ_REPRO=0:sat:17 cargo run --example fuzz # replay one case
//! ```
//!
//! The run is deterministic end to end: the same seeds and budgets
//! reproduce the same cases, the same coverage signatures, and (if the
//! engines disagree) the same minimized counterexamples, bit for bit.

use fuzz::{repro, run, run_repro, Family, FuzzConfig, FuzzOutcome};
use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

fn out_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join("symbad-fuzz")
}

/// Replays one `seed:family:iter` reproducer and reports what it finds.
fn replay(id: &fuzz::ReproId) -> ExitCode {
    println!("replaying {} ({} iterations)", id, id.iter + 1);
    match run_repro(id) {
        Some(d) => {
            println!("reproduced: {}", d.detail);
            println!("minimized case:\n{}", d.minimized);
            ExitCode::FAILURE
        }
        None => {
            println!("iteration {} is clean — no disagreement", id.iter);
            ExitCode::SUCCESS
        }
    }
}

fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn summary_json(outcomes: &[FuzzOutcome]) -> String {
    let mut out = String::from("{\n  \"families\": [");
    for (i, o) in outcomes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{ \"family\": \"{}\", \"iters\": {}, \"disagreements\": {}, \
             \"distinct_signatures\": {}, \"novel_iterations\": {}, \"repros\": [",
            o.family.as_str(),
            o.iters,
            o.disagreements.len(),
            o.distinct_signatures,
            o.novel_iterations
        );
        for (j, d) in o.disagreements.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            json_string(&mut out, &d.repro.to_string());
        }
        out.push_str("] }");
    }
    out.push_str("\n  ]\n}\n");
    out
}

fn main() -> ExitCode {
    if let Some(id) = repro::repro_from_env() {
        return replay(&id);
    }

    let dir = out_dir();
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create target/symbad-fuzz");

    let mut outcomes = Vec::new();
    let mut failed = false;
    for family in Family::ALL {
        let config = FuzzConfig::standard(family);
        let outcome = run(family, &config);
        println!(
            "{:>6}: {} iterations, {} distinct signatures ({} novel), {} disagreement(s)",
            family.as_str(),
            outcome.iters,
            outcome.distinct_signatures,
            outcome.novel_iterations,
            outcome.disagreements.len()
        );
        for d in &outcome.disagreements {
            failed = true;
            println!("  !! {}={}  {}", repro::REPRO_ENV, d.repro, d.detail);
            // One file per disagreement: the replay line, what disagreed,
            // and the delta-debugged minimal case — CI uploads these.
            let name = format!("repro-{}.txt", d.repro.to_string().replace(':', "-"));
            let body = format!(
                "{}={}\n\n{}\n\nminimized case:\n{}\n",
                repro::REPRO_ENV,
                d.repro,
                d.detail,
                d.minimized
            );
            fs::write(dir.join(name), body).expect("write reproducer file");
        }
        outcomes.push(outcome);
    }

    fs::write(dir.join("fuzz_summary.json"), summary_json(&outcomes)).expect("write summary");
    println!("summary: {}", dir.join("fuzz_summary.json").display());

    if failed {
        println!(
            "oracles disagreed — replay with the printed {} lines",
            repro::REPRO_ENV
        );
        ExitCode::FAILURE
    } else {
        println!("all oracles agree");
        ExitCode::SUCCESS
    }
}
