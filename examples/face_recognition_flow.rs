//! The full Symbad refinement flow on the face-recognition case study:
//! level 1 (untimed) → level 2 (timed HW/SW) → level 3 (reconfigurable)
//! → level 4 (RTL + formal), with the cross-level checks the paper
//! performs at each step.
//!
//! ```text
//! cargo run --release --example face_recognition_flow
//! ```

use std::time::Instant;
use symbad_core::workload::Workload;
use symbad_core::{level1, level2, level3, level4};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = Workload::paper(2);
    println!(
        "case study: {}-entry gallery, {} probes\n",
        workload.gallery_len(),
        workload.probes.len()
    );

    // ── Level 1 ────────────────────────────────────────────────────────
    let t = Instant::now();
    let l1 = level1::run(&workload)?;
    println!(
        "level 1 (untimed): {:.2}s wall, matches reference: {}",
        t.elapsed().as_secs_f64(),
        l1.matches_reference
    );

    // ── Level 2 ────────────────────────────────────────────────────────
    let t = Instant::now();
    let l2 = level2::run(&workload)?;
    println!(
        "level 2 (timed TL): {:.2}s wall, {} simulated ticks ({:.0} ticks/frame)",
        t.elapsed().as_secs_f64(),
        l2.total_ticks,
        l2.ticks_per_frame
    );
    println!(
        "  trace matches level 1: {}",
        l1.trace.matches_untimed(&l2.trace).is_ok()
    );
    println!("  bus utilization: {:.1}%", l2.bus.utilization * 100.0);

    // ── Level 3 ────────────────────────────────────────────────────────
    let t = Instant::now();
    let l3 = level3::run(&workload)?;
    let fpga = l3.fpga.as_ref().expect("level 3 has an FPGA");
    println!(
        "level 3 (reconfigurable): {:.2}s wall, {} simulated ticks ({:.0} ticks/frame)",
        t.elapsed().as_secs_f64(),
        l3.total_ticks,
        l3.ticks_per_frame
    );
    println!(
        "  trace matches level 2: {}",
        l2.trace.matches_untimed(&l3.trace).is_ok()
    );
    println!(
        "  reconfigurations: {}, bitstream words: {}, bus utilization: {:.1}%",
        fpga.reconfigurations,
        fpga.download_words,
        l3.bus.utilization * 100.0
    );

    // ── Level 4 ────────────────────────────────────────────────────────
    let t = Instant::now();
    let l4 = level4::run();
    println!(
        "level 4 (RTL + formal): {:.2}s wall",
        t.elapsed().as_secs_f64()
    );
    for (name, nodes, equivalent) in &l4.kernels {
        println!("  kernel {name}: {nodes} nodes, RTL ≡ behavioural: {equivalent}");
    }
    for (name, engine, proven) in &l4.properties {
        println!("  property {name} [{engine}]: proven = {proven}");
    }
    println!(
        "  PCC coverage: initial {:.0}% → extended {:.0}%",
        l4.pcc_initial.pct(),
        l4.pcc_extended.pct()
    );
    Ok(())
}
