//! The whole methodology in one call: [`symbad_core::flow::run_full_flow`]
//! executes levels 1–4 with every verification phase, prints the
//! aggregated evidence, and exports the flow's telemetry:
//!
//! * `report_output.txt` / `report_output.json` — the structured
//!   [`symbad_core::flow::FlowReport`], as text and JSON,
//! * `flow_trace.json` — Chrome-trace spans (open in `chrome://tracing`
//!   or <https://ui.perfetto.dev>),
//! * `flow_signals.vcd` — gauge time-series as a VCD waveform,
//! * `BENCH_flow.json` — the benchmark summary (kernel cycle counts, bus
//!   utilisation, reconfiguration latency) consumed by CI.
//!
//! ```text
//! cargo run --release --example full_flow
//! ```

use std::fs;
use symbad_core::flow::{run_full_flow_instrumented, FlowReport};
use symbad_core::workload::Workload;
use telemetry::{chrome_trace, vcd_dump, Collector, Json, SharedInstrument};

/// Builds the `BENCH_flow.json` payload. Everything except `host.wall_ms`
/// is deterministic (simulated cycles, counters, histogram summaries);
/// wall time is confined to the `host` section so regressions in the
/// deterministic sections are attributable to model changes alone.
fn bench_json(report: &FlowReport, collector: &Collector, wall_ms: f64) -> String {
    let latency = collector.histogram("fpga.reconfig_latency").summary();
    Json::obj(vec![
        (
            "kernel",
            Json::obj(vec![
                ("polls", Json::UInt(collector.counter("sim.polls"))),
                (
                    "delta_cycles",
                    Json::UInt(collector.counter("sim.delta_cycles")),
                ),
                (
                    "time_steps",
                    Json::UInt(collector.counter("sim.time_steps")),
                ),
                ("l2_total_ticks", Json::UInt(report.metrics.l2_total_ticks)),
                ("l3_total_ticks", Json::UInt(report.metrics.l3_total_ticks)),
                (
                    "l3_ticks_per_frame",
                    Json::Num(report.metrics.l3_ticks_per_frame),
                ),
            ]),
        ),
        (
            "bus",
            Json::obj(vec![
                (
                    "transactions",
                    Json::UInt(collector.counter("bus.transactions")),
                ),
                ("words", Json::UInt(collector.counter("bus.words"))),
                (
                    "l3_utilization",
                    Json::Num(report.metrics.l3_bus_utilization),
                ),
                (
                    "wait_ticks_p95",
                    Json::UInt(collector.histogram("bus.wait_ticks").percentile(95)),
                ),
            ]),
        ),
        (
            "fpga",
            Json::obj(vec![
                (
                    "reconfigurations",
                    Json::UInt(report.metrics.fpga_reconfigurations),
                ),
                (
                    "download_words",
                    Json::UInt(report.metrics.fpga_download_words),
                ),
                ("reconfig_latency_min", Json::UInt(latency.min)),
                ("reconfig_latency_p50", Json::UInt(latency.p50)),
                ("reconfig_latency_max", Json::UInt(latency.max)),
            ]),
        ),
        (
            "engines",
            Json::obj(vec![
                (
                    "sat_solve_calls",
                    Json::UInt(collector.counter("sat.solve_calls")),
                ),
                (
                    "sat_conflicts",
                    Json::UInt(collector.counter("sat.conflicts")),
                ),
                (
                    "bmc_sat_calls",
                    Json::UInt(collector.counter("bmc.sat_calls")),
                ),
            ]),
        ),
        ("host", Json::obj(vec![("wall_ms", Json::Num(wall_ms))])),
    ])
    .render_pretty()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let start = std::time::Instant::now();
    let workload = Workload::small();
    let collector = Collector::shared();
    let instr: SharedInstrument = collector.clone();
    let report = run_full_flow_instrumented(&workload, &instr)?;
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;

    let text = report.to_text();
    print!("{text}");
    println!(
        "\nrecognized identities: {:?} (expected {:?})",
        report.recognized,
        workload
            .probes
            .iter()
            .map(|&(id, _, _)| id)
            .collect::<Vec<_>>()
    );
    println!("flow healthy: {}", report.all_ok());

    fs::write("report_output.txt", &text)?;
    fs::write("report_output.json", report.to_json())?;
    fs::write("flow_trace.json", chrome_trace(&collector))?;
    fs::write("flow_signals.vcd", vcd_dump(&collector))?;
    fs::write("BENCH_flow.json", bench_json(&report, &collector, wall_ms))?;
    println!(
        "wrote report_output.txt, report_output.json, flow_trace.json, \
         flow_signals.vcd, BENCH_flow.json"
    );

    assert!(report.all_ok());
    Ok(())
}
