//! The whole methodology in one call: [`symbad_core::flow::run_full_flow`]
//! executes levels 1–4 with every verification phase and prints the
//! aggregated evidence.
//!
//! ```text
//! cargo run --release --example full_flow
//! ```

use symbad_core::flow::run_full_flow;
use symbad_core::workload::Workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = Workload::small();
    let report = run_full_flow(&workload)?;
    println!("Symbad full-flow report\n");
    for p in &report.phases {
        println!("[{}] {}", if p.ok { "PASS" } else { "FAIL" }, p.phase);
        println!("       {}\n", p.detail);
    }
    println!(
        "recognized identities: {:?} (expected {:?})",
        report.recognized,
        workload
            .probes
            .iter()
            .map(|&(id, _, _)| id)
            .collect::<Vec<_>>()
    );
    println!("flow healthy: {}", report.all_ok());
    assert!(report.all_ok());
    Ok(())
}
