//! The whole methodology in one call: [`symbad_core::flow::run_full_flow`]
//! executes levels 1–4 with every verification phase, prints the
//! aggregated evidence, and exports the flow's telemetry:
//!
//! * `report_output.txt` / `report_output.json` — the structured
//!   [`symbad_core::flow::FlowReport`], as text and JSON,
//! * `flow_trace.json` — Chrome-trace spans (open in `chrome://tracing`
//!   or <https://ui.perfetto.dev>),
//! * `flow_signals.vcd` — gauge time-series as a VCD waveform,
//! * `BENCH_flow.json` — the benchmark summary (kernel cycle counts, bus
//!   utilisation, reconfiguration latency) consumed by CI.
//!
//! ```text
//! cargo run --release --example full_flow
//! ```

use std::fs;
use std::time::Instant;
use symbad_core::cascade;
use symbad_core::flow::{run_full_flow_instrumented, run_full_flow_mode, FlowReport};
use symbad_core::workload::Workload;
use telemetry::{chrome_trace, vcd_dump, Collector, Json, SharedInstrument};

/// Sequential-vs-parallel wall times of the verification work, recorded
/// in the `exec` section of `BENCH_flow.json`. Wall time is
/// host-dependent (CI machine, core count); the verdict bit-identity
/// asserted in `main` is not.
struct ExecBench {
    workers: usize,
    flow_seq_ms: f64,
    flow_par_ms: f64,
    cascade_seq_ms: f64,
    cascade_par_ms: f64,
}

/// Builds the `BENCH_flow.json` payload. Everything except `host.wall_ms`
/// is deterministic (simulated cycles, counters, histogram summaries);
/// wall time is confined to the `host` section so regressions in the
/// deterministic sections are attributable to model changes alone.
fn bench_json(
    report: &FlowReport,
    collector: &Collector,
    wall_ms: f64,
    exec: &ExecBench,
) -> String {
    let latency = collector.histogram("fpga.reconfig_latency").summary();
    Json::obj(vec![
        (
            "kernel",
            Json::obj(vec![
                ("polls", Json::UInt(collector.counter("sim.polls"))),
                (
                    "delta_cycles",
                    Json::UInt(collector.counter("sim.delta_cycles")),
                ),
                (
                    "time_steps",
                    Json::UInt(collector.counter("sim.time_steps")),
                ),
                ("l2_total_ticks", Json::UInt(report.metrics.l2_total_ticks)),
                ("l3_total_ticks", Json::UInt(report.metrics.l3_total_ticks)),
                (
                    "l3_ticks_per_frame",
                    Json::Num(report.metrics.l3_ticks_per_frame),
                ),
            ]),
        ),
        (
            "bus",
            Json::obj(vec![
                (
                    "transactions",
                    Json::UInt(collector.counter("bus.transactions")),
                ),
                ("words", Json::UInt(collector.counter("bus.words"))),
                (
                    "l3_utilization",
                    Json::Num(report.metrics.l3_bus_utilization),
                ),
                (
                    "wait_ticks_p95",
                    Json::UInt(collector.histogram("bus.wait_ticks").percentile(95)),
                ),
            ]),
        ),
        (
            "fpga",
            Json::obj(vec![
                (
                    "reconfigurations",
                    Json::UInt(report.metrics.fpga_reconfigurations),
                ),
                (
                    "download_words",
                    Json::UInt(report.metrics.fpga_download_words),
                ),
                ("reconfig_latency_min", Json::UInt(latency.min)),
                ("reconfig_latency_p50", Json::UInt(latency.p50)),
                ("reconfig_latency_max", Json::UInt(latency.max)),
            ]),
        ),
        (
            "engines",
            Json::obj(vec![
                (
                    "sat_solve_calls",
                    Json::UInt(collector.counter("sat.solve_calls")),
                ),
                (
                    "sat_conflicts",
                    Json::UInt(collector.counter("sat.conflicts")),
                ),
                (
                    "bmc_sat_calls",
                    Json::UInt(collector.counter("bmc.sat_calls")),
                ),
            ]),
        ),
        ("host", Json::obj(vec![("wall_ms", Json::Num(wall_ms))])),
        (
            "exec",
            Json::obj(vec![
                ("workers", Json::UInt(exec.workers as u64)),
                ("flow_sequential_ms", Json::Num(exec.flow_seq_ms)),
                ("flow_parallel_ms", Json::Num(exec.flow_par_ms)),
                (
                    "flow_speedup",
                    Json::Num(exec.flow_seq_ms / exec.flow_par_ms.max(1e-9)),
                ),
                ("cascade_sequential_ms", Json::Num(exec.cascade_seq_ms)),
                ("cascade_parallel_ms", Json::Num(exec.cascade_par_ms)),
                (
                    "cascade_speedup",
                    Json::Num(exec.cascade_seq_ms / exec.cascade_par_ms.max(1e-9)),
                ),
            ]),
        ),
    ])
    .render_pretty()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let start = Instant::now();
    let workload = Workload::small();
    let collector = Collector::shared();
    let instr: SharedInstrument = collector.clone();
    let report = run_full_flow_instrumented(&workload, &instr)?;
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;

    // Re-run the flow with the verification obligations fanned out across
    // worker threads (SYMBAD_WORKERS, defaulting to the host's cores) and
    // check the invariant the parallel backbone promises: the report —
    // every verdict, metric, and its JSON rendering — is bit-identical.
    let mode = if std::env::var_os("SYMBAD_WORKERS").is_some() {
        exec::ExecMode::from_env()
    } else {
        exec::ExecMode::host_parallel()
    };
    let seq_start = Instant::now();
    let seq_report = run_full_flow_mode(&workload, exec::ExecMode::Sequential)?;
    let flow_seq_ms = seq_start.elapsed().as_secs_f64() * 1e3;
    let par_start = Instant::now();
    let par_report = run_full_flow_mode(&workload, mode)?;
    let flow_par_ms = par_start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        par_report.to_json(),
        seq_report.to_json(),
        "parallel flow report must be bit-identical to the sequential one"
    );
    assert_eq!(par_report.to_json(), report.to_json());

    // The verification cascade alone (the level-1..4 checking stages with
    // no simulation in between) is where the fan-out pays off most.
    let cas_start = Instant::now();
    let cas_seq = cascade::run();
    let cascade_seq_ms = cas_start.elapsed().as_secs_f64() * 1e3;
    let cas_start = Instant::now();
    let cas_par = cascade::run_mode(mode);
    let cascade_par_ms = cas_start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(cas_par, cas_seq, "parallel cascade must be bit-identical");
    let exec_bench = ExecBench {
        workers: mode.workers(),
        flow_seq_ms,
        flow_par_ms,
        cascade_seq_ms,
        cascade_par_ms,
    };
    println!(
        "exec: {} workers; flow {flow_seq_ms:.0} ms → {flow_par_ms:.0} ms; \
         cascade {cascade_seq_ms:.0} ms → {cascade_par_ms:.0} ms",
        exec_bench.workers
    );

    let text = report.to_text();
    print!("{text}");
    println!(
        "\nrecognized identities: {:?} (expected {:?})",
        report.recognized,
        workload
            .probes
            .iter()
            .map(|&(id, _, _)| id)
            .collect::<Vec<_>>()
    );
    println!("flow healthy: {}", report.all_ok());

    fs::write("report_output.txt", &text)?;
    fs::write("report_output.json", report.to_json())?;
    fs::write("flow_trace.json", chrome_trace(&collector))?;
    fs::write("flow_signals.vcd", vcd_dump(&collector))?;
    fs::write(
        "BENCH_flow.json",
        bench_json(&report, &collector, wall_ms, &exec_bench),
    )?;
    println!(
        "wrote report_output.txt, report_output.json, flow_trace.json, \
         flow_signals.vcd, BENCH_flow.json"
    );

    assert!(report.all_ok());
    Ok(())
}
