//! The whole methodology in one call: [`symbad_core::flow::run_full_flow`]
//! executes levels 1–4 with every verification phase, prints the
//! aggregated evidence, and exports the flow's telemetry. Every artifact
//! lands under `target/flow/` (the repo root stays clean):
//!
//! * `report_output.txt` / `report_output.json` — the structured
//!   [`symbad_core::flow::FlowReport`], as text and JSON,
//! * `flow_trace.json` — Chrome-trace spans (open in `chrome://tracing`
//!   or <https://ui.perfetto.dev>),
//! * `flow_signals.vcd` — gauge time-series as a VCD waveform,
//! * `journal.jsonl` — the flight-recorder event journal (deterministic
//!   lane first, then the timing lane), one JSON object per line,
//! * `profile.txt` / `profile.json` — the [`telemetry::FlowProfile`]
//!   aggregation of the journal: costliest obligations, per-engine cache
//!   hit ratios, budget utilisation, latency percentiles,
//! * `prometheus.txt` — the collector counters/gauges/histograms in
//!   Prometheus text exposition format 0.0.4,
//! * `BENCH_flow.json` — the benchmark summary (kernel cycle counts, bus
//!   utilisation, reconfiguration latency, obligation-cache hit rates,
//!   obligations/sec and latency percentiles) consumed by CI.
//!
//! The example also exercises the obligation cache end to end: the
//! instrumented primary run is cold (fresh cache, so the engine counters
//! reflect real solver work), a warm rerun on the populated cache must
//! reproduce the report bit for bit, and the cache is persisted to
//! `target/symbad-cache/` for the next invocation.
//!
//! ```text
//! cargo run --release --example full_flow
//! ```

use atpg::metrics::bit_coverage_with;
use atpg::Testbench;
use behav::bytecode::{compile, BehavExec, Vm};
use behav::interp::{enumerate_bit_faults, Interpreter};
use media::kernels::root_function;
use std::fs;
use std::path::Path;
use std::time::Instant;
use symbad_core::cascade;
use symbad_core::flow::{
    run_full_flow_cached, run_full_flow_cached_journaled, run_full_flow_mode,
    run_full_flow_supervised_journaled, FlowReport,
};
use symbad_core::supervise::SupervisionPolicy;
use symbad_core::workload::Workload;
use telemetry::{
    chrome_trace, journal, prom, vcd_dump, Collector, FlowProfile, Journal, Json, SharedInstrument,
    TimingKind,
};

/// Sequential-vs-parallel wall times of the verification work. Wall time
/// is host-dependent (CI machine, core count); the verdict bit-identity
/// asserted in `main` is not. `None` when the host runs with a single
/// worker — a "parallel" run would be the sequential one relabelled, so
/// the bench reports the mode instead of a vacuous speedup of 1.0.
struct ExecCompare {
    flow_seq_ms: f64,
    flow_par_ms: f64,
    cascade_seq_ms: f64,
    cascade_par_ms: f64,
}

/// Obligation-cache behaviour across the cold primary run and the warm
/// rerun, plus the incremental-solving counters that show one solver
/// served every BMC depth (`bmc_solver_constructions` ≪ `bmc_sat_calls`).
struct CacheBench {
    entries_loaded: usize,
    entries_saved: usize,
    cold_hits: u64,
    cold_misses: u64,
    inserts: u64,
    warm_hits: u64,
    warm_misses: u64,
    warm_hit_rate: f64,
}

/// Cooperative-SAT behaviour (DESIGN.md §16): lemma-pool contents after
/// the cold flow, pool traffic on a warm-pool rerun (cold verdicts, warm
/// lemmas, via `retain_lemmas`), and a deterministic conflict-rich
/// microbench — a planted 3-XOR chain, solved cold with a collector
/// share and again seeded from the pool — pinning the conflict
/// reduction the pool buys. The flow's own miters discharge in
/// near-zero conflicts, so the microbench is where the reduction is
/// measurable.
struct SatBench {
    pool_entries: u64,
    pool_clauses: u64,
    flow_pool_hits: u64,
    flow_pool_imports: u64,
    flow_pool_rejects: u64,
    cube_splits: u64,
    micro_cold_conflicts: u64,
    micro_seeded_conflicts: u64,
    micro_pool_hits: u64,
    micro_imports: u64,
    micro_conflict_reduction: f64,
}

/// Deterministic planted 3-XOR chain over `n` variables: each equation
/// `a ^ b ^ c = 1` rules out its four even-parity assignments, giving a
/// satisfiable instance the CDCL loop still has to fight for.
fn xor_chain_cnf(n: usize) -> sat::Cnf {
    let lit = |v: usize, pos: bool| sat::Lit::with_polarity(sat::Var::from_index(v), pos);
    let mut clauses = Vec::new();
    for i in 0..n {
        let (a, b, c) = (i, (i * 7 + 3) % n, (i * 13 + 5) % n);
        if a == b || b == c || a == c {
            continue;
        }
        for mask in 0..8u32 {
            if (mask.count_ones() % 2) == 1 {
                continue;
            }
            clauses.push(vec![
                lit(a, mask & 1 == 0),
                lit(b, mask & 2 == 0),
                lit(c, mask & 4 == 0),
            ]);
        }
    }
    sat::Cnf {
        num_vars: n,
        clauses,
    }
}

/// Measures the [`SatBench`] microbench half: cold solve exporting into
/// a fresh lemma pool, then a pool-seeded re-solve of the byte-identical
/// CNF. Verdicts must match (sharing changes effort, never answers) and
/// the seeded solve must fight fewer conflicts.
fn bench_sat_pool() -> (u64, u64, u64, u64, f64) {
    let cnf = xor_chain_cnf(48);
    let mut cold = sat::Solver::new();
    cnf.load_into(&mut cold);
    cold.set_share(sat::SolverShare::collector(
        sat::ShareFilter::permissive(16),
        cache::pool::MAX_CLAUSES_PER_ENTRY,
    ));
    let cold_verdict = cold.solve();
    let exports = cold
        .take_share()
        .expect("collector share is attached")
        .into_pool_exports();
    assert!(
        !exports.is_empty(),
        "the microbench CNF must produce learnt-clause exports"
    );

    let pool = cache::LemmaPool::new();
    let fp = cache::Fingerprint(0x5a7b_ad00_1337_c0de_5a7b_ad00_1337_c0de);
    pool.insert(fp, &exports);

    let mut seeded = sat::Solver::new();
    cnf.load_into(&mut seeded);
    let mut imports = 0u64;
    for clause in pool.lookup(fp) {
        if seeded.import_clause(&clause) == sat::ImportResult::Added {
            imports += 1;
        }
    }
    let seeded_verdict = seeded.solve();
    assert_eq!(
        seeded_verdict, cold_verdict,
        "a pool-seeded solve must reach the cold verdict"
    );
    assert!(
        seeded.conflicts() < cold.conflicts(),
        "the warm pool must reduce conflicts ({} cold vs {} seeded)",
        cold.conflicts(),
        seeded.conflicts()
    );
    let reduction = 1.0 - seeded.conflicts() as f64 / cold.conflicts().max(1) as f64;
    (
        cold.conflicts(),
        seeded.conflicts(),
        pool.stats().hits,
        imports,
        reduction,
    )
}

/// Interpreter-vs-VM throughput on the ATPG bit-fault sweep of the ROOT
/// kernel (the hottest behavioural workload in the flow), plus the wall
/// time of the level-2 frame loop that now runs its kernels on the VM.
struct BehavBench {
    faults: usize,
    vectors: usize,
    interp_runs_per_sec: f64,
    vm_runs_per_sec: f64,
    speedup: f64,
    l2_wall_ms: f64,
}

/// Measures [`BehavBench`]. Correctness first (both engines must produce
/// the identical coverage verdict and identical per-run signatures), then
/// the full `faults × vectors` sweep without early exit so both engines do
/// exactly the same number of runs — mirroring the code paths
/// [`bit_coverage_with`] actually takes per engine.
fn bench_behav(workload: &Workload) -> Result<BehavBench, Box<dyn std::error::Error>> {
    let func = root_function();
    let tb = Testbench {
        vectors: (0..48u64)
            .map(|i| vec![i.wrapping_mul(2_654_435_761) & 0xFFFF_FFFF])
            .collect(),
    };
    let interp_cov = bit_coverage_with(&func, &tb, BehavExec::Interp);
    let vm_cov = bit_coverage_with(&func, &tb, BehavExec::Vm);
    assert_eq!(
        interp_cov, vm_cov,
        "engines disagree on the bit-coverage sweep"
    );

    let faults = enumerate_bit_faults(&func);
    let runs = (faults.len() + 1) * tb.len();
    let sweep = std::iter::once(None).chain(faults.iter().copied().map(Some));

    // A fault stuck on the loop condition can make the kernel diverge, so
    // both engines run under the same tight step budget and fold a runaway
    // into the sink rather than panicking. A healthy root run takes ~109
    // steps, so the cap never fires on one.
    const STEP_LIMIT: u64 = 1_000;

    let t = Instant::now();
    let mut interp_sink = 0u64;
    for fault in sweep.clone() {
        for v in &tb.vectors {
            let mut interp = Interpreter::new(&func).with_step_limit(STEP_LIMIT);
            if let Some(f) = fault {
                interp = interp.with_fault(f);
            }
            interp_sink ^= match interp.run(v) {
                Ok(out) => out.return_value.unwrap_or(0),
                Err(_) => u64::MAX,
            };
        }
    }
    let interp_s = t.elapsed().as_secs_f64().max(1e-9);

    let mut vm = Vm::new(compile(&func)).with_step_limit(STEP_LIMIT);
    let t = Instant::now();
    let mut vm_sink = 0u64;
    for fault in sweep {
        vm.set_fault(fault);
        for v in &tb.vectors {
            vm_sink ^= match vm.run_signature(v) {
                Ok((ret, _)) => ret.unwrap_or(0),
                Err(_) => u64::MAX,
            };
        }
    }
    let vm_s = t.elapsed().as_secs_f64().max(1e-9);
    assert_eq!(interp_sink, vm_sink, "engines disagree on sweep outputs");

    let t = Instant::now();
    let l2 = symbad_core::level2::run(workload)?;
    let l2_wall_ms = t.elapsed().as_secs_f64() * 1e3;
    drop(l2);

    Ok(BehavBench {
        faults: faults.len(),
        vectors: tb.len(),
        interp_runs_per_sec: runs as f64 / interp_s,
        vm_runs_per_sec: runs as f64 / vm_s,
        speedup: interp_s / vm_s,
        l2_wall_ms,
    })
}

/// Builds the `BENCH_flow.json` payload. Everything except `host.wall_ms`,
/// the `exec` wall times, and the `observability` throughput/latency
/// figures is deterministic (simulated cycles, counters, histogram
/// summaries), so regressions in the deterministic sections are
/// attributable to model changes alone.
#[allow(clippy::too_many_arguments)] // one section struct per argument
fn bench_json(
    report: &FlowReport,
    collector: &Collector,
    wall_ms: f64,
    workers: usize,
    compare: &Option<ExecCompare>,
    cache_bench: &CacheBench,
    profile: &FlowProfile,
    behav_bench: &BehavBench,
    sat_bench: &SatBench,
) -> String {
    let latency = collector.histogram("fpga.reconfig_latency").summary();
    let cache_section = Json::obj(vec![
        (
            "entries_loaded",
            Json::UInt(cache_bench.entries_loaded as u64),
        ),
        (
            "entries_saved",
            Json::UInt(cache_bench.entries_saved as u64),
        ),
        ("cold_hits", Json::UInt(cache_bench.cold_hits)),
        ("cold_misses", Json::UInt(cache_bench.cold_misses)),
        ("inserts", Json::UInt(cache_bench.inserts)),
        ("warm_hits", Json::UInt(cache_bench.warm_hits)),
        ("warm_misses", Json::UInt(cache_bench.warm_misses)),
        ("warm_hit_rate", Json::Num(cache_bench.warm_hit_rate)),
        (
            "bmc_solver_constructions",
            Json::UInt(collector.counter("bmc.solver_constructions")),
        ),
        (
            "bmc_sat_calls",
            Json::UInt(collector.counter("bmc.sat_calls")),
        ),
        (
            "sat_incremental_solve_calls",
            Json::UInt(collector.counter("sat.incremental_solve_calls")),
        ),
    ]);
    let mut exec_section = vec![
        ("workers", Json::UInt(workers as u64)),
        (
            "mode",
            Json::Str(
                if compare.is_some() {
                    "parallel"
                } else {
                    "sequential"
                }
                .into(),
            ),
        ),
    ];
    if let Some(c) = compare {
        exec_section.push(("flow_sequential_ms", Json::Num(c.flow_seq_ms)));
        exec_section.push(("flow_parallel_ms", Json::Num(c.flow_par_ms)));
        exec_section.push((
            "flow_speedup",
            Json::Num(c.flow_seq_ms / c.flow_par_ms.max(1e-9)),
        ));
        exec_section.push(("cascade_sequential_ms", Json::Num(c.cascade_seq_ms)));
        exec_section.push(("cascade_parallel_ms", Json::Num(c.cascade_par_ms)));
        exec_section.push((
            "cascade_speedup",
            Json::Num(c.cascade_seq_ms / c.cascade_par_ms.max(1e-9)),
        ));
    }
    exec_section.push(("cache", cache_section));
    let lat = profile.latency_summary();
    Json::obj(vec![
        (
            "kernel",
            Json::obj(vec![
                ("polls", Json::UInt(collector.counter("sim.polls"))),
                (
                    "delta_cycles",
                    Json::UInt(collector.counter("sim.delta_cycles")),
                ),
                (
                    "time_steps",
                    Json::UInt(collector.counter("sim.time_steps")),
                ),
                ("l2_total_ticks", Json::UInt(report.metrics.l2_total_ticks)),
                ("l3_total_ticks", Json::UInt(report.metrics.l3_total_ticks)),
                (
                    "l3_ticks_per_frame",
                    Json::Num(report.metrics.l3_ticks_per_frame),
                ),
            ]),
        ),
        (
            "bus",
            Json::obj(vec![
                (
                    "transactions",
                    Json::UInt(collector.counter("bus.transactions")),
                ),
                ("words", Json::UInt(collector.counter("bus.words"))),
                (
                    "l3_utilization",
                    Json::Num(report.metrics.l3_bus_utilization),
                ),
                (
                    "wait_ticks_p95",
                    Json::UInt(collector.histogram("bus.wait_ticks").percentile(95)),
                ),
            ]),
        ),
        (
            "fpga",
            Json::obj(vec![
                (
                    "reconfigurations",
                    Json::UInt(report.metrics.fpga_reconfigurations),
                ),
                (
                    "download_words",
                    Json::UInt(report.metrics.fpga_download_words),
                ),
                ("reconfig_latency_min", Json::UInt(latency.min)),
                ("reconfig_latency_p50", Json::UInt(latency.p50)),
                ("reconfig_latency_max", Json::UInt(latency.max)),
            ]),
        ),
        (
            "engines",
            Json::obj(vec![
                (
                    "sat_solve_calls",
                    Json::UInt(collector.counter("sat.solve_calls")),
                ),
                (
                    "sat_conflicts",
                    Json::UInt(collector.counter("sat.conflicts")),
                ),
                (
                    "bmc_sat_calls",
                    Json::UInt(collector.counter("bmc.sat_calls")),
                ),
            ]),
        ),
        (
            "observability",
            Json::obj(vec![
                ("obligations", Json::UInt(profile.obligations.len() as u64)),
                ("journal_events", Json::UInt(profile.events.0 as u64)),
                ("journal_events_dropped", Json::UInt(profile.events.1)),
                (
                    "obligations_per_sec",
                    Json::Num(profile.obligations_per_sec()),
                ),
                ("obligation_latency_p50_us", Json::UInt(lat.p50)),
                ("obligation_latency_p95_us", Json::UInt(lat.p95)),
                ("obligation_latency_p99_us", Json::UInt(lat.p99)),
                ("obligation_latency_max_us", Json::UInt(lat.max)),
            ]),
        ),
        (
            "behav",
            Json::obj(vec![
                ("fault_sweep_faults", Json::UInt(behav_bench.faults as u64)),
                (
                    "fault_sweep_vectors",
                    Json::UInt(behav_bench.vectors as u64),
                ),
                (
                    "interp_runs_per_sec",
                    Json::Num(behav_bench.interp_runs_per_sec),
                ),
                ("vm_runs_per_sec", Json::Num(behav_bench.vm_runs_per_sec)),
                ("vm_speedup", Json::Num(behav_bench.speedup)),
                ("l2_wall_ms", Json::Num(behav_bench.l2_wall_ms)),
            ]),
        ),
        (
            "sat",
            Json::obj(vec![
                ("pool_entries", Json::UInt(sat_bench.pool_entries)),
                ("pool_clauses", Json::UInt(sat_bench.pool_clauses)),
                ("flow_pool_hits", Json::UInt(sat_bench.flow_pool_hits)),
                ("flow_pool_imports", Json::UInt(sat_bench.flow_pool_imports)),
                ("flow_pool_rejects", Json::UInt(sat_bench.flow_pool_rejects)),
                ("cube_splits", Json::UInt(sat_bench.cube_splits)),
                (
                    "micro_cold_conflicts",
                    Json::UInt(sat_bench.micro_cold_conflicts),
                ),
                (
                    "micro_seeded_conflicts",
                    Json::UInt(sat_bench.micro_seeded_conflicts),
                ),
                ("micro_pool_hits", Json::UInt(sat_bench.micro_pool_hits)),
                ("micro_pool_imports", Json::UInt(sat_bench.micro_imports)),
                (
                    "micro_conflict_reduction",
                    Json::Num(sat_bench.micro_conflict_reduction),
                ),
            ]),
        ),
        ("host", Json::obj(vec![("wall_ms", Json::Num(wall_ms))])),
        ("exec", Json::obj(exec_section)),
    ])
    .render_pretty()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let start = Instant::now();
    let workload = Workload::small();
    let collector = Collector::shared();
    let instr: SharedInstrument = collector.clone();
    let out_dir = Path::new("target/flow");
    fs::create_dir_all(out_dir)?;

    // Obligation cache lifecycle. A previous invocation may have persisted
    // proved obligations under target/symbad-cache/ — report how many we
    // would inherit — but run the instrumented primary flow against a
    // FRESH cache: a warm cache replays verdicts without touching the
    // solvers, which would zero the engine counters benchmarked below.
    let cache_dir = Path::new("target/symbad-cache");
    let entries_loaded = cache::ObligationCache::load_or_empty(cache_dir).len();
    let obligations = cache::ObligationCache::new();

    // The primary run doubles as the phase-level flight recording: every
    // phase transition and the FPGA reconfiguration summary land on the
    // journal's deterministic lane. Obligation-level attribution comes
    // from the supervised run below.
    let journal = Journal::with_wall_clock();
    let report = run_full_flow_cached_journaled(
        &workload,
        &instr,
        exec::ExecMode::Sequential,
        &obligations,
        &journal,
    )?;
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let cold = obligations.stats();

    // Warm rerun on the now-populated cache: every verification obligation
    // is replayed from its cached verdict, and the report — verdicts,
    // counterexamples, coverage, JSON rendering — must be bit-identical.
    let warm_report = run_full_flow_cached_journaled(
        &workload,
        &telemetry::noop(),
        exec::ExecMode::Sequential,
        &obligations,
        &journal,
    )?;
    assert_eq!(
        warm_report.to_json(),
        report.to_json(),
        "warm (cached) flow report must be bit-identical to the cold one"
    );
    let total = obligations.stats();
    let cache_bench = CacheBench {
        entries_loaded,
        entries_saved: obligations.len(),
        cold_hits: cold.hits,
        cold_misses: cold.misses,
        inserts: total.inserts,
        warm_hits: total.hits - cold.hits,
        warm_misses: total.misses - cold.misses,
        warm_hit_rate: {
            let warm_total = (total.hits - cold.hits) + (total.misses - cold.misses);
            if warm_total == 0 {
                0.0
            } else {
                (total.hits - cold.hits) as f64 / warm_total as f64
            }
        },
    };
    obligations.save(cache_dir)?;
    println!(
        "cache: {} entries loaded from disk; cold run {} hits / {} misses; \
         warm rerun {} hits / {} misses ({:.0}% hit rate); {} entries saved",
        cache_bench.entries_loaded,
        cache_bench.cold_hits,
        cache_bench.cold_misses,
        cache_bench.warm_hits,
        cache_bench.warm_misses,
        cache_bench.warm_hit_rate * 100.0,
        cache_bench.entries_saved,
    );

    // Cooperative-SAT pool behaviour. The cold run above populated the
    // cache's lemma pool alongside its verdicts; rerun the flow with
    // warm lemmas but COLD verdicts (`retain_lemmas`), so every miter
    // re-solves seeded from the pool — the report must not move by a
    // bit, and the pool counters land in the bench. The microbench half
    // pins a measurable conflict reduction on a CNF hard enough to need
    // one (the flow's miters are near-trivial for the solver).
    let pool_stats = obligations.lemmas().stats();
    let pool_only = obligations.retain_lemmas();
    let sat_collector = Collector::shared();
    let sat_instr: SharedInstrument = sat_collector.clone();
    let warm_pool_report = run_full_flow_cached(
        &workload,
        &sat_instr,
        exec::ExecMode::Sequential,
        &pool_only,
    )?;
    assert_eq!(
        warm_pool_report.to_json(),
        report.to_json(),
        "warm-lemma-pool flow report must be bit-identical to the cold one"
    );
    let (micro_cold, micro_seeded, micro_hits, micro_imports, micro_reduction) = bench_sat_pool();
    let sat_bench = SatBench {
        pool_entries: pool_stats.entries,
        pool_clauses: pool_stats.clauses,
        flow_pool_hits: sat_collector.counter("sat.pool_hits"),
        flow_pool_imports: sat_collector.counter("sat.pool_imports"),
        flow_pool_rejects: sat_collector.counter("sat.pool_rejects"),
        cube_splits: collector.counter("sat.cube_splits"),
        micro_cold_conflicts: micro_cold,
        micro_seeded_conflicts: micro_seeded,
        micro_pool_hits: micro_hits,
        micro_imports,
        micro_conflict_reduction: micro_reduction,
    };
    println!(
        "sat: lemma pool {} entries / {} clauses; warm-pool flow {} hits, \
         {} imports, {} rejects; microbench {} → {} conflicts seeded \
         ({:.0}% fewer)",
        sat_bench.pool_entries,
        sat_bench.pool_clauses,
        sat_bench.flow_pool_hits,
        sat_bench.flow_pool_imports,
        sat_bench.flow_pool_rejects,
        sat_bench.micro_cold_conflicts,
        sat_bench.micro_seeded_conflicts,
        sat_bench.micro_conflict_reduction * 100.0,
    );

    // Flight recorder proper: rerun the flow supervised and journaled (a
    // fresh cache again, so every obligation does real engine work and the
    // attributed effort is non-trivial). The journal records the full
    // obligation lifecycle — started / cache probe / budget spend /
    // finished with provenance — on the deterministic lane, and wall
    // times, queue depths, and worker attribution on the timing lane.
    let fr_start = Instant::now();
    let fr_cache = cache::ObligationCache::new();
    let supervised = run_full_flow_supervised_journaled(
        &workload,
        &instr,
        exec::ExecMode::Sequential,
        &fr_cache,
        &SupervisionPolicy::default(),
        &journal,
    )?;
    journal.emit_timing(TimingKind::RunWall {
        label: "flow.supervised".to_owned(),
        wall_us: u64::try_from(fr_start.elapsed().as_micros()).unwrap_or(u64::MAX),
    });
    assert!(supervised.all_ok(), "supervised flight-recorder run failed");

    // Every journal line must satisfy the checked-in schema, and the
    // Prometheus exposition must parse back with a non-trivial series set.
    let jsonl = journal.to_jsonl();
    for line in jsonl.lines() {
        journal::validate_line(line)
            .unwrap_or_else(|e| panic!("journal line failed schema validation: {e}\n  {line}"));
    }
    let (det_events, timing_events) = journal.len();
    assert_eq!(journal.dropped(), (0, 0), "journal must not drop events");
    let prom_text = prom::prometheus_text(&collector);
    let samples = prom::parse_exposition(&prom_text)
        .unwrap_or_else(|e| panic!("prometheus exposition failed to parse: {e}"));
    assert!(
        samples.len() > 16,
        "prometheus exposition unexpectedly sparse: {} series",
        samples.len()
    );
    for key in ["sat_solve_calls", "bmc_sat_calls", "bus_transactions"] {
        let series = format!("symbad_{key}");
        assert!(
            prom::sample_value(&samples, &series).map(|v| v > 0.0) == Some(true),
            "expected nonzero series {series} in the exposition"
        );
    }
    let profile = FlowProfile::from_journal(&journal);
    println!(
        "journal: {det_events} deterministic + {timing_events} timing events; \
         {} obligations profiled at {:.0} obligations/sec",
        profile.obligations.len(),
        profile.obligations_per_sec()
    );

    // Sequential-vs-parallel comparison of the verification work, on an
    // UNCACHED flow so both sides do the same solver work (SYMBAD_WORKERS
    // overrides the default of the host's core count). With one worker the
    // comparison is vacuous, so it is skipped and the bench labels the run
    // sequential instead of reporting a speedup of 1.0.
    let mode = if std::env::var_os("SYMBAD_WORKERS").is_some() {
        exec::ExecMode::from_env()
    } else {
        exec::ExecMode::host_parallel()
    };
    let compare = if mode.is_parallel() {
        let seq_start = Instant::now();
        let seq_report = run_full_flow_mode(&workload, exec::ExecMode::Sequential)?;
        let flow_seq_ms = seq_start.elapsed().as_secs_f64() * 1e3;
        let par_start = Instant::now();
        let par_report = run_full_flow_mode(&workload, mode)?;
        let flow_par_ms = par_start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            par_report.to_json(),
            seq_report.to_json(),
            "parallel flow report must be bit-identical to the sequential one"
        );
        assert_eq!(par_report.to_json(), report.to_json());

        // The verification cascade alone (the level-1..4 checking stages
        // with no simulation in between) is where the fan-out pays off most.
        let cas_start = Instant::now();
        let cas_seq = cascade::run();
        let cascade_seq_ms = cas_start.elapsed().as_secs_f64() * 1e3;
        let cas_start = Instant::now();
        let cas_par = cascade::run_mode(mode);
        let cascade_par_ms = cas_start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(cas_par, cas_seq, "parallel cascade must be bit-identical");
        println!(
            "exec: {} workers; flow {flow_seq_ms:.0} ms → {flow_par_ms:.0} ms; \
             cascade {cascade_seq_ms:.0} ms → {cascade_par_ms:.0} ms",
            mode.workers()
        );
        Some(ExecCompare {
            flow_seq_ms,
            flow_par_ms,
            cascade_seq_ms,
            cascade_par_ms,
        })
    } else {
        println!("exec: 1 worker; sequential run (speedup comparison skipped)");
        None
    };

    // Interpreter-vs-VM throughput on the ATPG fault sweep (the win the
    // bytecode engine exists for), pinned into the bench for CI.
    let behav_bench = bench_behav(&workload)?;
    println!(
        "behav: {} faults × {} vectors; interp {:.0} runs/s, vm {:.0} runs/s \
         ({:.1}x); level 2 in {:.0} ms",
        behav_bench.faults,
        behav_bench.vectors,
        behav_bench.interp_runs_per_sec,
        behav_bench.vm_runs_per_sec,
        behav_bench.speedup,
        behav_bench.l2_wall_ms,
    );

    let text = report.to_text();
    print!("{text}");
    println!(
        "\nrecognized identities: {:?} (expected {:?})",
        report.recognized,
        workload
            .probes
            .iter()
            .map(|&(id, _, _)| id)
            .collect::<Vec<_>>()
    );
    println!("flow healthy: {}", report.all_ok());

    fs::write(out_dir.join("report_output.txt"), &text)?;
    fs::write(out_dir.join("report_output.json"), report.to_json())?;
    fs::write(out_dir.join("flow_trace.json"), chrome_trace(&collector))?;
    fs::write(out_dir.join("flow_signals.vcd"), vcd_dump(&collector))?;
    fs::write(out_dir.join("journal.jsonl"), &jsonl)?;
    fs::write(out_dir.join("profile.txt"), profile.report().to_text())?;
    fs::write(out_dir.join("profile.json"), profile.report().to_json())?;
    fs::write(out_dir.join("prometheus.txt"), &prom_text)?;
    fs::write(
        out_dir.join("BENCH_flow.json"),
        bench_json(
            &report,
            &collector,
            wall_ms,
            mode.workers(),
            &compare,
            &cache_bench,
            &profile,
            &behav_bench,
            &sat_bench,
        ),
    )?;
    println!(
        "wrote target/flow/{{report_output.txt,report_output.json,flow_trace.json,\
         flow_signals.vcd,journal.jsonl,profile.txt,profile.json,prometheus.txt,\
         BENCH_flow.json}}"
    );

    assert!(report.all_ok());
    Ok(())
}
