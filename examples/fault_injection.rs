//! Fault injection and recovery on the level-3 platform model.
//!
//! Runs the same workload three ways — fault-free, faulted with recovery,
//! and faulted with recovery disabled — and prints what the injected
//! faults cost and how the driver absorbed them.
//!
//! ```sh
//! cargo run --release --example fault_injection
//! ```

use sim::faults::FaultPlan;
use symbad_core::level3;
use symbad_core::timed::{addr, RecoveryPolicy};
use symbad_core::Workload;

fn main() {
    let workload = Workload::small();

    let clean = level3::run(&workload).expect("fault-free level-3 run");
    println!(
        "fault-free : {} ticks, recognized {:?}",
        clean.total_ticks, clean.recognized
    );

    let plan = || {
        FaultPlan::new(7)
            .with_bitstream_corruption(400_000) // 40% of downloads corrupted
            .with_bus_errors(addr::FLASH_BASE, addr::FLASH_SIZE, 150_000)
    };

    let recovered = level3::run_with_faults(&workload, plan(), RecoveryPolicy::default())
        .expect("recovery absorbs the injected faults");
    let fr = recovered.faults.as_ref().expect("fault report");
    println!(
        "recovered  : {} ticks (+{:.1}%), recognized {:?}",
        recovered.total_ticks,
        100.0 * (recovered.total_ticks as f64 / clean.total_ticks as f64 - 1.0),
        recovered.recognized
    );
    println!(
        "             injected={} retries={} recovered={} degraded={:?}",
        fr.injected.total(),
        fr.retries,
        fr.recovered,
        fr.degraded
    );
    assert_eq!(
        recovered.recognized, clean.recognized,
        "faults change timing, never function"
    );

    match level3::run_with_faults(&workload, plan(), RecoveryPolicy::disabled()) {
        Err(e) => println!("no recovery: typed failure: {e}"),
        Ok(r) => println!(
            "no recovery: this seed's faults happened to miss ({} ticks)",
            r.total_ticks
        ),
    }
}
