//! The supervised flow end to end:
//! [`symbad_core::flow::run_full_flow_supervised_journaled`] executes the
//! whole methodology under panic isolation and a deterministic effort
//! budget with the flight recorder attached, then proves the degradation
//! contract by rerunning the flow with 1, 2, and 8 workers (fresh
//! obligation cache each time) and asserting that the report, the
//! journal's deterministic lane, and the profile's deterministic report
//! are all bit-identical.
//!
//! The same example serves three CI regimes:
//!
//! * default build: supervision is idle, the taxonomy is clean, and the
//!   report is conclusive;
//! * `--features panic-mutant`: the SAT solver panics every 256th
//!   propagation — the flow still completes and the partial report counts
//!   the panicked obligations and their retries;
//! * `--features diverge-mutant`: every second budgeted solve burns its
//!   whole budget — the example runs under a bounded effort so the
//!   divergence surfaces as deterministic `unknown` obligations.
//!
//! The degradation timeline printed at the end is reconstructed from the
//! journal, not from the report: each degraded obligation is shown with
//! its attempt count, outcome, and the engine effort it spent before
//! degrading.
//!
//! Writes `target/report_supervised.json`,
//! `target/flow/supervised_journal.jsonl`, and
//! `target/flow/supervised_profile.txt`.
//!
//! ```text
//! cargo run --release --example supervised_flow
//! ```

use std::fs;
use symbad_core::flow::{run_full_flow_supervised_journaled, FlowReport};
use symbad_core::supervise::SupervisionPolicy;
use symbad_core::workload::Workload;
use telemetry::{EventKind, FlowProfile, Journal};

/// The per-regime policy: bounded under `diverge-mutant` (divergence only
/// affects budgeted solves), unbounded otherwise.
fn policy() -> SupervisionPolicy {
    #[cfg(feature = "diverge-mutant")]
    {
        SupervisionPolicy::with_effort(exec::Effort::bounded(100_000))
    }
    #[cfg(not(feature = "diverge-mutant"))]
    {
        SupervisionPolicy::default()
    }
}

fn run_with(
    workers: usize,
    policy: &SupervisionPolicy,
) -> Result<(FlowReport, Journal), sim::SimError> {
    // A fresh cache per run: the degradation pattern must come from the
    // budget and the injected faults, never from previously cached
    // verdicts. The journal stays wall-clock-free so its deterministic
    // lane is the only lane with obligation data — timing events here are
    // limited to queue depths and worker attribution, which legitimately
    // differ across worker counts.
    let cache = cache::ObligationCache::new();
    let journal = Journal::new();
    let report = run_full_flow_supervised_journaled(
        &Workload::small(),
        &telemetry::noop(),
        exec::ExecMode::from_workers(workers),
        &cache,
        policy,
        &journal,
    )?;
    Ok((report, journal))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    exec::silence_injected_panics();
    let policy = policy();

    let (reference, journal) = run_with(1, &policy)?;
    let json = reference.to_json();
    let det_jsonl = journal.deterministic_jsonl();
    let det_report = FlowProfile::from_journal(&journal)
        .deterministic_report()
        .to_text();
    for workers in [2usize, 8] {
        let (report, j) = run_with(workers, &policy)?;
        assert_eq!(
            report.to_json(),
            json,
            "supervised flow report diverged with {workers} workers"
        );
        assert_eq!(
            j.deterministic_jsonl(),
            det_jsonl,
            "journal deterministic lane diverged with {workers} workers"
        );
        assert_eq!(
            FlowProfile::from_journal(&j)
                .deterministic_report()
                .to_text(),
            det_report,
            "deterministic profile report diverged with {workers} workers"
        );
    }
    println!(
        "supervised flow report, journal deterministic lane, and profile \
         bit-identical for workers 1, 2, 8"
    );

    let d = reference
        .degradation
        .as_ref()
        .expect("supervised runs always carry a degradation taxonomy");
    println!(
        "obligations: {} total — {} proved, {} refuted, {} unknown, \
         {} panicked ({} retried)",
        d.total, d.proved, d.refuted, d.unknown, d.panicked, d.retries
    );

    // Degradation timeline, reconstructed from the journal alone: for each
    // degraded obligation, its provenance record carries the attempt count
    // (retried ⇒ 2 attempts) and the effort the engine spent before the
    // supervisor gave up on it.
    let profile = FlowProfile::from_journal(&journal);
    println!(
        "degradation timeline ({} entries):",
        profile.degradations.len()
    );
    for entry in &profile.degradations {
        let prov = profile
            .obligations
            .iter()
            .find(|p| p.obligation == entry.obligation)
            .expect("every degradation has a finished-obligation record");
        println!(
            "  [{}] {} — attempts {}, spent {}: {}",
            entry.status,
            entry.obligation,
            if prov.retried { 2 } else { 1 },
            prov.effort.to_line(),
            entry.detail
        );
    }
    // The journal's degradation lane and the report's taxonomy must agree.
    assert_eq!(
        profile.degradations.len(),
        d.unknown + d.panicked,
        "journal degradation timeline must match the report taxonomy"
    );
    let retried_in_journal = journal
        .events()
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Retry { .. }))
        .count();
    assert_eq!(
        retried_in_journal, d.retries,
        "journal retry events must match the report taxonomy"
    );
    println!(
        "conclusive: {} (all phases ok: {})",
        reference.conclusive(),
        reference.all_ok()
    );

    // Under an injected fault the report must be partial, never absent;
    // with honest engines and an unbounded budget it must be conclusive.
    #[cfg(any(feature = "panic-mutant", feature = "diverge-mutant"))]
    assert!(
        !reference.conclusive() && d.total > 0,
        "injected faults must surface as a partial verdict"
    );
    #[cfg(not(any(feature = "panic-mutant", feature = "diverge-mutant")))]
    assert!(
        reference.conclusive(),
        "idle supervision must be conclusive"
    );

    fs::create_dir_all("target/flow")?;
    fs::write("target/report_supervised.json", &json)?;
    fs::write("target/flow/supervised_journal.jsonl", journal.to_jsonl())?;
    fs::write(
        "target/flow/supervised_profile.txt",
        profile.report().to_text(),
    )?;
    println!(
        "wrote target/report_supervised.json, target/flow/supervised_journal.jsonl, \
         target/flow/supervised_profile.txt"
    );
    Ok(())
}
