//! The supervised flow end to end:
//! [`symbad_core::flow::run_full_flow_supervised`] executes the whole
//! methodology under panic isolation and a deterministic effort budget,
//! then proves the degradation contract by rerunning the flow with 1, 2,
//! and 8 workers (fresh obligation cache each time) and asserting the
//! reports — including the `degradation` section — are bit-identical.
//!
//! The same example serves three CI regimes:
//!
//! * default build: supervision is idle, the taxonomy is clean, and the
//!   report is conclusive;
//! * `--features panic-mutant`: the SAT solver panics every 256th
//!   propagation — the flow still completes and the partial report counts
//!   the panicked obligations and their retries;
//! * `--features diverge-mutant`: every second budgeted solve burns its
//!   whole budget — the example runs under a bounded effort so the
//!   divergence surfaces as deterministic `unknown` obligations.
//!
//! Writes `target/report_supervised.json`.
//!
//! ```text
//! cargo run --release --example supervised_flow
//! ```

use std::fs;
use symbad_core::flow::{run_full_flow_supervised, FlowReport};
use symbad_core::supervise::SupervisionPolicy;
use symbad_core::workload::Workload;

/// The per-regime policy: bounded under `diverge-mutant` (divergence only
/// affects budgeted solves), unbounded otherwise.
fn policy() -> SupervisionPolicy {
    #[cfg(feature = "diverge-mutant")]
    {
        SupervisionPolicy::with_effort(exec::Effort::bounded(100_000))
    }
    #[cfg(not(feature = "diverge-mutant"))]
    {
        SupervisionPolicy::default()
    }
}

fn run_with(workers: usize, policy: &SupervisionPolicy) -> Result<FlowReport, sim::SimError> {
    // A fresh cache per run: the degradation pattern must come from the
    // budget and the injected faults, never from previously cached
    // verdicts.
    let cache = cache::ObligationCache::new();
    run_full_flow_supervised(
        &Workload::small(),
        &telemetry::noop(),
        exec::ExecMode::from_workers(workers),
        &cache,
        policy,
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    exec::silence_injected_panics();
    let policy = policy();

    let reference = run_with(1, &policy)?;
    let json = reference.to_json();
    for workers in [2usize, 8] {
        let report = run_with(workers, &policy)?;
        assert_eq!(
            report.to_json(),
            json,
            "supervised flow report diverged with {workers} workers"
        );
    }
    println!("supervised flow report bit-identical for workers 1, 2, 8");

    let d = reference
        .degradation
        .as_ref()
        .expect("supervised runs always carry a degradation taxonomy");
    println!(
        "obligations: {} total — {} proved, {} refuted, {} unknown, \
         {} panicked ({} retried)",
        d.total, d.proved, d.refuted, d.unknown, d.panicked, d.retries
    );
    for outcome in &d.degraded {
        println!(
            "  degraded [{}{}] {}: {}",
            outcome.status.as_str(),
            if outcome.retried { ", retried" } else { "" },
            outcome.name,
            outcome.detail
        );
    }
    println!(
        "conclusive: {} (all phases ok: {})",
        reference.conclusive(),
        reference.all_ok()
    );

    // Under an injected fault the report must be partial, never absent;
    // with honest engines and an unbounded budget it must be conclusive.
    #[cfg(any(feature = "panic-mutant", feature = "diverge-mutant"))]
    assert!(
        !reference.conclusive() && d.total > 0,
        "injected faults must surface as a partial verdict"
    );
    #[cfg(not(any(feature = "panic-mutant", feature = "diverge-mutant")))]
    assert!(
        reference.conclusive(),
        "idle supervision must be conclusive"
    );

    fs::create_dir_all("target")?;
    fs::write("target/report_supervised.json", &json)?;
    println!("wrote target/report_supervised.json");
    Ok(())
}
