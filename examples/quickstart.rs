//! Quickstart: build a workload, run the level-1 functional model, and
//! check it against the C reference model.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use symbad_core::level1;
use symbad_core::workload::Workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small synthetic face workload: 4 identities × 2 poses enrolled,
    // 2 noisy probes presented to the camera model.
    let workload = Workload::small();
    println!(
        "gallery: {} entries; probes: {}",
        workload.gallery_len(),
        workload.probes.len()
    );

    // Level 1: the untimed Figure-2 dataflow network.
    let report = level1::run(&workload)?;

    println!("simulation outcome: {:?}", report.outcome.result);
    assert!(report.outcome.is_quiescent());
    println!("kernel polls: {}", report.outcome.stats.polls);
    for (i, (&(id, pose, seed), recognized)) in
        workload.probes.iter().zip(&report.recognized).enumerate()
    {
        println!(
            "probe {i}: identity {id} pose {pose} (noise seed {seed}) → recognized as {recognized}"
        );
    }
    println!(
        "trace matches C reference model: {}",
        report.matches_reference
    );
    assert!(report.matches_reference);
    Ok(())
}
