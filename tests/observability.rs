//! Flight-recorder contract tests: the journal's deterministic lane and
//! the profile's deterministic report are bit-identical for workers 1,
//! 2, and 8, every journal line satisfies the checked-in schema, and the
//! Prometheus exposition round-trips through its own parser.
//!
//! Like `tests/supervision.rs`, the same tests run under three regimes —
//! the default build, `--features panic-mutant`, and `--features
//! diverge-mutant` — because the deterministic-lane guarantee is most
//! valuable exactly when obligations panic, retry, and degrade: the
//! flight recording of a faulty run must still not depend on the worker
//! count.

use symbad_core::flow::run_full_flow_supervised_journaled;
use symbad_core::supervise::SupervisionPolicy;
use symbad_core::workload::Workload;
use telemetry::{journal, EventKind, FlowProfile, Journal};

/// The per-regime policy, mirroring `examples/supervised_flow.rs`:
/// bounded under `diverge-mutant` (divergence only affects budgeted
/// solves), unbounded otherwise.
fn policy() -> SupervisionPolicy {
    #[cfg(feature = "diverge-mutant")]
    {
        SupervisionPolicy::with_effort(exec::Effort::bounded(100_000))
    }
    #[cfg(not(feature = "diverge-mutant"))]
    {
        SupervisionPolicy::default()
    }
}

/// Runs the journaled supervised flow on a fresh cache and returns its
/// journal. Wall clock stays off: these tests compare lanes byte for
/// byte, and `ObligationWall` events would differ run to run.
fn journaled(workers: usize) -> Journal {
    exec::silence_injected_panics();
    let cache = cache::ObligationCache::new();
    let journal = Journal::new();
    run_full_flow_supervised_journaled(
        &Workload::small(),
        &telemetry::noop(),
        exec::ExecMode::from_workers(workers),
        &cache,
        &policy(),
        &journal,
    )
    .expect("supervised flow runs");
    journal
}

#[test]
fn deterministic_lane_is_bit_identical_across_worker_counts() {
    let reference = journaled(1);
    let det = reference.deterministic_jsonl();
    let profile = FlowProfile::from_journal(&reference)
        .deterministic_report()
        .to_text();
    assert!(!det.is_empty(), "journal must record the flow");
    for workers in [2usize, 8] {
        let j = journaled(workers);
        assert_eq!(
            j.deterministic_jsonl(),
            det,
            "deterministic journal lane diverged with {workers} workers"
        );
        assert_eq!(
            FlowProfile::from_journal(&j)
                .deterministic_report()
                .to_text(),
            profile,
            "deterministic profile report diverged with {workers} workers"
        );
    }
}

#[test]
fn every_journal_line_satisfies_the_schema() {
    let j = journaled(2);
    let jsonl = j.to_jsonl();
    assert!(jsonl.lines().count() > 0);
    for line in jsonl.lines() {
        journal::validate_line(line)
            .unwrap_or_else(|e| panic!("journal line failed schema validation: {e}\n  {line}"));
    }
    assert_eq!(j.dropped(), (0, 0), "the default capacity must not drop");
}

#[test]
fn journal_obligations_cover_the_whole_flow() {
    let j = journaled(1);
    let profile = FlowProfile::from_journal(&j);
    // Started and Finished pair up one-to-one.
    let started = j
        .events()
        .iter()
        .filter(|e| matches!(e.kind, EventKind::ObligationStarted { .. }))
        .count();
    assert_eq!(started, profile.obligations.len());
    // The flow discharges the two LPV analyses, the SymbC consistency
    // check, two equivalence miters, five properties, and two PCC
    // passes: twelve obligations.
    assert_eq!(profile.obligations.len(), 12);
    // Each known engine appears.
    for engine in ["lpv", "symbc", "level4.miter", "pcc"] {
        assert!(
            profile.engines.contains_key(engine),
            "engine {engine} missing from the profile"
        );
    }
    // Provenance fingerprints are nonzero and unique per obligation.
    let mut fps: Vec<u128> = profile.obligations.iter().map(|p| p.fingerprint).collect();
    fps.sort_unstable();
    fps.dedup();
    assert_eq!(fps.len(), profile.obligations.len());
    assert!(fps.iter().all(|&fp| fp != 0));
}

#[test]
fn prometheus_exposition_round_trips() {
    let collector = telemetry::Collector::shared();
    let instr: telemetry::SharedInstrument = collector.clone();
    exec::silence_injected_panics();
    let cache = cache::ObligationCache::new();
    let journal = Journal::new();
    run_full_flow_supervised_journaled(
        &Workload::small(),
        &instr,
        exec::ExecMode::Sequential,
        &cache,
        &policy(),
        &journal,
    )
    .expect("supervised flow runs");
    let text = telemetry::prometheus_text(&collector);
    let samples = telemetry::parse_exposition(&text).expect("exposition parses");
    assert!(samples.len() > 16, "sparse exposition: {}", samples.len());
    let nonzero = samples.iter().filter(|s| s.value > 0.0).count();
    assert!(nonzero > 8, "exposition has only {nonzero} nonzero series");
}

#[cfg(not(any(feature = "panic-mutant", feature = "diverge-mutant")))]
#[test]
fn honest_runs_record_no_degradations() {
    let j = journaled(1);
    let profile = FlowProfile::from_journal(&j);
    assert!(profile.degradations.is_empty());
    assert!(j
        .events()
        .iter()
        .all(|e| !matches!(e.kind, EventKind::Panic { .. } | EventKind::Retry { .. })));
    assert_eq!(profile.outcomes.get("proved"), Some(&12));
}

#[cfg(feature = "panic-mutant")]
#[test]
fn injected_panics_land_on_the_deterministic_lane() {
    let j = journaled(1);
    let profile = FlowProfile::from_journal(&j);
    let panics = j
        .events()
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Panic { .. }))
        .count();
    let retries = j
        .events()
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Retry { .. }))
        .count();
    assert!(panics > 0, "panic-mutant must surface panic events");
    assert!(retries > 0, "panicked obligations are retried once");
    assert!(!profile.degradations.is_empty());
    assert!(profile.degradations.iter().all(|d| d.status == "panicked"));
}

#[cfg(feature = "diverge-mutant")]
#[test]
fn budget_exhaustion_lands_on_the_deterministic_lane() {
    let j = journaled(1);
    let profile = FlowProfile::from_journal(&j);
    assert!(!profile.degradations.is_empty());
    assert!(profile.degradations.iter().all(|d| d.status == "unknown"));
    // The budget-spend records show at least one axis pinned at its cap.
    let at_cap: u64 = profile.budget.values().map(|a| a.at_cap).sum();
    assert!(at_cap > 0, "diverge-mutant must exhaust a budget axis");
}
