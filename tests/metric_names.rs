//! Metric-name lint: every metric key emitted anywhere in the workspace
//! follows the `component.snake_case` naming scheme, and the inventory
//! in `docs/METRICS.md` is exactly the set of keys the code emits —
//! no undocumented metrics, no stale documentation.
//!
//! The scan covers the non-test portion of every `crates/*/src/**/*.rs`
//! file (test modules routinely record throwaway keys like `"h"`), and
//! extracts the first string literal passed to `counter_add(`,
//! `gauge_set(`, or `.record(` — including calls that rustfmt wrapped
//! across lines. Calls whose key is a variable are ignored; every
//! emission site in the workspace uses a literal key.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

/// Collects `.rs` files under `dir`, recursively, in sorted order.
fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    let mut entries: Vec<_> = fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("read_dir {}: {e}", dir.display()))
        .map(|e| e.expect("dir entry").path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            rust_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Strips `//` comments (tracking string state so a `//` inside a string
/// literal survives) and truncates at the first test-module marker, so
/// throwaway keys recorded by unit tests never reach the lint.
fn strippable(source: &str) -> String {
    let mut out = String::with_capacity(source.len());
    for line in source.lines() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("#[cfg(test)]") || trimmed.starts_with("mod tests") {
            break;
        }
        let mut in_string = false;
        let mut prev = '\0';
        let mut cut = line.len();
        for (i, c) in line.char_indices() {
            if c == '"' && prev != '\\' {
                in_string = !in_string;
            } else if !in_string && c == '/' && prev == '/' {
                cut = i - 1;
                break;
            }
            prev = c;
        }
        out.push_str(&line[..cut]);
        out.push('\n');
    }
    out
}

/// Extracts the literal metric key following each emission call, if the
/// first argument is a string literal (possibly after a line wrap).
fn emitted_keys(source: &str) -> BTreeSet<String> {
    let mut keys = BTreeSet::new();
    let text = strippable(source);
    for api in ["counter_add(", "gauge_set(", ".record("] {
        let mut from = 0;
        while let Some(at) = text[from..].find(api) {
            let after = from + at + api.len();
            from = after;
            let rest = text[after..].trim_start();
            let Some(lit) = rest.strip_prefix('"') else {
                continue; // key is a variable, not a literal
            };
            let Some(end) = lit.find('"') else { continue };
            keys.insert(lit[..end].to_owned());
        }
    }
    keys
}

/// `component.snake_case`: at least two dot-separated segments, each of
/// `[a-z][a-z0-9_]*`.
fn well_formed(key: &str) -> bool {
    let segments: Vec<&str> = key.split('.').collect();
    segments.len() >= 2
        && segments.iter().all(|s| {
            !s.is_empty()
                && s.starts_with(|c: char| c.is_ascii_lowercase())
                && s.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        })
}

/// Metric names listed in the `docs/METRICS.md` table (first backticked
/// cell of each `|`-delimited row).
fn documented_keys(markdown: &str) -> BTreeSet<String> {
    let mut keys = BTreeSet::new();
    for line in markdown.lines() {
        let Some(rest) = line.trim().strip_prefix("| `") else {
            continue;
        };
        if let Some(end) = rest.find('`') {
            keys.insert(rest[..end].to_owned());
        }
    }
    keys
}

#[test]
fn metric_keys_are_well_formed_and_documented() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let crates = root.join("crates");
    let mut sources = Vec::new();
    let mut crate_dirs: Vec<_> = fs::read_dir(&crates)
        .expect("crates/ exists")
        .map(|e| e.expect("dir entry").path())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            rust_sources(&src, &mut sources);
        }
    }
    assert!(sources.len() > 20, "scan looks incomplete: {sources:?}");

    let mut emitted = BTreeSet::new();
    for path in &sources {
        let source =
            fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
        for key in emitted_keys(&source) {
            assert!(
                well_formed(&key),
                "metric key {key:?} in {} violates the component.snake_case \
                 scheme (expected e.g. `bus.wait_ticks`)",
                path.display()
            );
            emitted.insert(key);
        }
    }
    assert!(
        emitted.len() > 30,
        "metric scan found only {} keys — extraction is broken: {emitted:?}",
        emitted.len()
    );

    let docs_path = root.join("docs/METRICS.md");
    let markdown = fs::read_to_string(&docs_path)
        .unwrap_or_else(|e| panic!("read {}: {e}", docs_path.display()));
    let documented = documented_keys(&markdown);

    let undocumented: Vec<_> = emitted.difference(&documented).collect();
    let stale: Vec<_> = documented.difference(&emitted).collect();
    assert!(
        undocumented.is_empty(),
        "metrics emitted but missing from docs/METRICS.md: {undocumented:?}"
    );
    assert!(
        stale.is_empty(),
        "metrics documented in docs/METRICS.md but never emitted: {stale:?}"
    );
}

#[test]
fn naming_lint_rejects_malformed_keys() {
    for bad in [
        "Conflicts",
        "sat",
        "sat.",
        ".conflicts",
        "sat.Conflicts",
        "sat conflicts",
    ] {
        assert!(!well_formed(bad), "{bad:?} should be rejected");
    }
    for good in [
        "sat.conflicts",
        "atpg.ga.evaluations",
        "bus.wait_ticks",
        "sim.polls",
    ] {
        assert!(well_formed(good), "{good:?} should be accepted");
    }
}
