//! Edge-case integration tests of the substrate crates: kernel event
//! semantics with multiple waiters, DIMACS round-trips, BDD structural
//! identities, VHDL/VCD artifact sanity, and the AHB burst preset in the
//! timed model.

use proptest::prelude::*;
use sim::{Activation, EventId, Process, ProcessCtx, SimTime, Simulator};

/// Several processes blocked on one event must all wake on one notify.
struct ManyWaiters {
    ev: EventId,
    armed: bool,
    label: String,
}

impl Process<u64> for ManyWaiters {
    fn poll(&mut self, ctx: &mut ProcessCtx<'_, u64>) -> Activation {
        if self.armed {
            ctx.trace("woke", ctx.now().ticks());
            return Activation::Done;
        }
        self.armed = true;
        Activation::WaitEvent(self.ev)
    }
    fn name(&self) -> &str {
        &self.label
    }
}

struct Notifier {
    ev: EventId,
    fired: bool,
}

impl Process<u64> for Notifier {
    fn poll(&mut self, ctx: &mut ProcessCtx<'_, u64>) -> Activation {
        if self.fired {
            return Activation::Done;
        }
        self.fired = true;
        ctx.notify(self.ev, SimTime::from_ticks(3));
        Activation::Done
    }
    fn name(&self) -> &str {
        "notifier"
    }
}

#[test]
fn one_notification_wakes_every_waiter() {
    let mut sim = Simulator::new();
    let ev = sim.add_event("go");
    for i in 0..5 {
        sim.add_process(ManyWaiters {
            ev,
            armed: false,
            label: format!("w{i}"),
        });
    }
    sim.add_process(Notifier { ev, fired: false });
    let outcome = sim.run(SimTime::MAX).expect("run");
    assert!(outcome.is_quiescent());
    let woke: Vec<u64> = sim.trace().items_for("woke").into_iter().copied().collect();
    assert_eq!(woke, vec![3; 5]);
    assert_eq!(outcome.stats.notifications, 1);
}

#[test]
fn vhdl_and_vcd_artifacts_cohere() {
    // The same netlist renders to both formats with matching port names.
    let rtl = hdl::fsm::bus_wrapper_fsm("bus_wrapper");
    let vhdl = hdl::vhdl::to_vhdl(&rtl);
    let vcd = hdl::vcd::dump(&rtl, &[vec![1, 0], vec![0, 1], vec![0, 0]]);
    for port in ["start", "ack", "bus_req", "done"] {
        assert!(vhdl.contains(port), "vhdl missing {port}");
        assert!(vcd.contains(port), "vcd missing {port}");
    }
}

#[test]
fn ahb_burst_preset_slows_long_downloads_in_level3() {
    use symbad_core::partition::ArchConfig;
    use symbad_core::timed::ReconfigStrategy;
    use symbad_core::{level3, Partition, Workload};
    let w = Workload::small();
    let flat = level3::run(&w).expect("flat bus");
    let arch = ArchConfig {
        bus: tlm::BusConfig::ahb(),
        ..ArchConfig::default()
    };
    let ahb = level3::run_with(
        &w,
        &Partition::paper_level3(),
        &arch,
        ReconfigStrategy::Hoisted,
    )
    .expect("ahb bus");
    // 16-beat bursts re-arbitrate during the 4096-word bitstreams: more
    // simulated time, same functionality.
    assert!(ahb.total_ticks > flat.total_ticks);
    assert_eq!(ahb.recognized, flat.recognized);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dimacs_roundtrip_preserves_satisfiability(
        n in 1usize..6,
        clause_data in proptest::collection::vec(
            proptest::collection::vec((0usize..6, any::<bool>()), 1..4),
            1..10,
        ),
    ) {
        let clauses: Vec<Vec<i64>> = clause_data
            .iter()
            .map(|c| {
                c.iter()
                    .map(|&(v, pos)| {
                        let var = (v % n) as i64 + 1;
                        if pos { var } else { -var }
                    })
                    .collect()
            })
            .collect();
        let cnf = sat::Dimacs { num_vars: n, clauses };
        let text = cnf.render();
        let reparsed = sat::dimacs::parse(&text).expect("round-trips");
        prop_assert_eq!(&cnf, &reparsed);
        let (mut s1, _) = cnf.into_solver();
        let (mut s2, _) = reparsed.into_solver();
        prop_assert_eq!(s1.solve().is_sat(), s2.solve().is_sat());
    }

    #[test]
    fn bdd_restrict_composes_with_exists(
        vars in proptest::collection::vec(0u32..5, 2..5),
    ) {
        // ∃x.f == restrict(f,x,0) ∨ restrict(f,x,1) by definition; check the
        // engine agrees on a random conjunction/disjunction tree.
        let mut m = bdd::Manager::new();
        let mut f = m.constant(true);
        for (i, &v) in vars.iter().enumerate() {
            let lit = if i % 2 == 0 { m.var(v) } else { m.nvar(v) };
            f = if i % 3 == 0 { m.and(f, lit) } else { m.or(f, lit) };
        }
        let x = vars[0];
        let e = m.exists(f, x);
        let f0 = m.restrict(f, x, false);
        let f1 = m.restrict(f, x, true);
        let manual = m.or(f0, f1);
        prop_assert_eq!(e, manual);
        // The quantified variable leaves the support.
        prop_assert!(!m.support(e).contains(&x));
    }

    #[test]
    fn rational_field_axioms(
        a_num in -1000i128..1000, a_den in 1i128..50,
        b_num in -1000i128..1000, b_den in 1i128..50,
    ) {
        use lp::Rational;
        let a = Rational::new(a_num, a_den);
        let b = Rational::new(b_num, b_den);
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!(a * b, b * a);
        prop_assert_eq!(a + Rational::ZERO, a);
        prop_assert_eq!(a * Rational::ONE, a);
        prop_assert_eq!(a - a, Rational::ZERO);
        if !b.is_zero() {
            prop_assert_eq!((a / b) * b, a);
        }
        // Distributivity.
        let c = Rational::new(7, 3);
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }
}
