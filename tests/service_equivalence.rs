//! Batch-service contract tests.
//!
//! The `serve` crate's three contracts, pinned end to end:
//!
//! * **Single-job transparency** — a service running one default job is
//!   bit-identical (report JSON *and* journal deterministic lane) to
//!   calling the supervised flow directly.
//! * **Batch determinism** — per-job reports depend only on the job
//!   spec: submission order, worker count and cache warmth never change
//!   a byte.
//! * **Typed overload** — admission control answers with
//!   [`serve::AdmissionError`], never a panic and never a silent drop,
//!   and the queue keeps serving afterwards.

use serve::{AdmissionError, Service, ServiceConfig};
use symbad_core::flow;
use symbad_core::job::{FaultPlanSpec, JobSpec};
use symbad_core::supervise::SupervisionPolicy;
use symbad_core::workload::Workload;

/// A cheap job (2-identity gallery, one probe) for batch tests.
fn quick_spec() -> JobSpec {
    let mut spec = JobSpec::default();
    spec.design.dataset.identities = 2;
    spec.design.probes = 1;
    spec
}

/// Four specs spanning every job axis: design, faults, platform.
fn spec_matrix() -> Vec<JobSpec> {
    let s1 = quick_spec();
    let mut s2 = quick_spec();
    s2.design.probes = 2;
    let mut s3 = quick_spec();
    s3.faults = Some(FaultPlanSpec::seeded(7));
    let mut s4 = quick_spec();
    s4.platform.hw_speedup = 8;
    vec![s1, s2, s3, s4]
}

fn service(config: ServiceConfig) -> Service {
    Service::new(config)
}

/// Drains a fresh service over `submissions`, returning per-job
/// `(tenant, spec-fingerprint) → report JSON`, sorted.
fn batch_reports(
    mode: exec::ExecMode,
    submissions: &[(&str, JobSpec)],
) -> Vec<((String, u128), String)> {
    let mut svc = service(ServiceConfig {
        mode,
        ..ServiceConfig::default()
    });
    for (tenant, spec) in submissions {
        svc.submit(tenant, *spec).expect("queue has room");
    }
    let batch = svc.drain();
    assert_eq!(batch.records.len(), submissions.len());
    let mut out: Vec<((String, u128), String)> = batch
        .records
        .iter()
        .map(|r| {
            let report = r
                .report()
                .unwrap_or_else(|| panic!("{} completed", r.id))
                .to_json();
            ((r.tenant.clone(), r.spec.fingerprint().0), report)
        })
        .collect();
    out.sort();
    out
}

#[test]
fn single_default_job_is_bit_identical_to_the_supervised_flow() {
    // Reference: the library entry point on a fresh cache, journaled.
    let reference_cache = cache::ObligationCache::new();
    let reference_journal = telemetry::Journal::new();
    let reference = flow::run_full_flow_supervised_journaled(
        &Workload::small(),
        &telemetry::noop(),
        exec::ExecMode::Sequential,
        &reference_cache,
        &SupervisionPolicy::default(),
        &reference_journal,
    )
    .expect("supervised flow runs");

    // Service: one default job on a fresh service.
    let mut svc = service(ServiceConfig::default());
    svc.submit("solo", JobSpec::default()).expect("admitted");
    let batch = svc.drain();
    assert_eq!(batch.records.len(), 1);
    let record = &batch.records[0];

    let report = record.report().expect("job completed");
    assert_eq!(report.to_json(), reference.to_json());
    // The job's private flight recorder carries the same deterministic
    // lane the direct call produces.
    assert_eq!(
        record.journal.deterministic_jsonl(),
        reference_journal.deterministic_jsonl()
    );
}

#[test]
fn batch_reports_are_independent_of_order_and_workers() {
    let tenants = ["alpha", "beta", "gamma"];
    let mut submissions: Vec<(&str, JobSpec)> = Vec::new();
    for tenant in tenants {
        for spec in spec_matrix() {
            submissions.push((tenant, spec));
        }
    }
    assert_eq!(submissions.len(), 12);

    let baseline = batch_reports(exec::ExecMode::Sequential, &submissions);

    // Reversed submission order: same reports, keyed by (tenant, spec).
    let mut reversed = submissions.clone();
    reversed.reverse();
    assert_eq!(
        batch_reports(exec::ExecMode::Sequential, &reversed),
        baseline
    );

    // Worker counts 2 and 8: same reports.
    for workers in [2, 8] {
        assert_eq!(
            batch_reports(exec::ExecMode::from_workers(workers), &submissions),
            baseline,
            "{workers}-worker batch diverged from sequential"
        );
    }
}

#[test]
fn service_mode_from_env_matches_sequential() {
    // Under the CI matrix (SYMBAD_WORKERS ∈ {1,4}) this pins the whole
    // service path — admission, DRR, shared cache, journal mirroring —
    // at the environment's worker count against the sequential run.
    let sequential = batch_reports(exec::ExecMode::Sequential, &[("env", quick_spec())]);
    let from_env = batch_reports(exec::ExecMode::from_env(), &[("env", quick_spec())]);
    assert_eq!(from_env, sequential);
}

#[test]
fn overload_is_a_typed_answer_and_the_queue_keeps_serving() {
    let mut svc = service(ServiceConfig {
        queue_depth: 3,
        tenant_depth: 2,
        ..ServiceConfig::default()
    });
    svc.submit("a", quick_spec()).expect("admitted");
    svc.submit("a", quick_spec()).expect("admitted");
    // Third submission from "a" trips the per-tenant bound…
    assert_eq!(
        svc.submit("a", quick_spec()),
        Err(AdmissionError::TenantQueueFull {
            tenant: "a".to_owned(),
            queued: 2,
            tenant_depth: 2,
        })
    );
    svc.submit("b", quick_spec()).expect("admitted");
    // …then the service-wide bound…
    assert_eq!(
        svc.submit("c", quick_spec()),
        Err(AdmissionError::QueueFull {
            queued: 3,
            queue_depth: 3,
        })
    );
    // …and an unattributable submission is refused outright.
    assert_eq!(
        svc.submit("", quick_spec()),
        Err(AdmissionError::EmptyTenant)
    );

    // Rejections are on the journal; admitted jobs still run to
    // completion.
    let rejected = svc
        .journal()
        .events()
        .iter()
        .filter(|e| e.kind.label() == "job_rejected")
        .count();
    assert_eq!(rejected, 3);
    let batch = svc.drain();
    assert_eq!(batch.stats.jobs, 3);
    assert_eq!(batch.stats.failed, 0);
    assert!(batch.all_ok());
}

#[test]
fn cross_tenant_cache_sharing_is_observable_and_sound() {
    let specs = [quick_spec(), {
        let mut s = quick_spec();
        s.platform.hw_speedup = 8;
        s
    }];

    // One service, two successive batches from different tenants with
    // identical specs: the second tenant's obligations replay from
    // entries the first tenant inserted.
    let mut svc = service(ServiceConfig::default());
    for spec in &specs {
        svc.submit("alpha", *spec).expect("admitted");
    }
    let cold = svc.drain();
    for spec in &specs {
        svc.submit("beta", *spec).expect("admitted");
    }
    let warm = svc.drain();

    let cross: Vec<(String, u64)> = svc.cross_tenant_hits();
    let beta_cross = cross
        .iter()
        .find(|(t, _)| t == "beta")
        .map_or(0, |(_, n)| *n);
    assert!(
        beta_cross > 0,
        "beta should hit alpha-owned cache entries, got {cross:?}"
    );
    // Soundness: the shared cache changed beta's cost, not its reports.
    for (cold_rec, warm_rec) in cold.records.iter().zip(&warm.records) {
        assert_eq!(cold_rec.spec.fingerprint(), warm_rec.spec.fingerprint());
        assert_eq!(
            cold_rec.report().expect("alpha completed").to_json(),
            warm_rec.report().expect("beta completed").to_json(),
        );
    }
    // And the per-tenant traffic is attributed.
    let stats = svc.tenant_cache_stats();
    assert!(stats.iter().any(|(t, s)| t == "alpha" && s.inserts > 0));
    assert!(stats.iter().any(|(t, s)| t == "beta" && s.hits > 0));
}
