//! The obligation cache's contract: a warm rerun of the flow replays
//! cached verdicts instead of re-running the engines, and the replayed
//! results — verdicts, counterexamples, coverage, and the rendered
//! [`symbad_core::flow::FlowReport`] JSON — are bit-identical to the
//! cold run's, for sequential and parallel execution alike.
//!
//! Also pins the incremental-solving claim the cache composes with: BMC
//! constructs one solver per obligation and extends it depth by depth,
//! so solver constructions stay strictly below SAT calls.

use std::fs;
use symbad_core::flow::run_full_flow_cached;
use symbad_core::workload::Workload;
use symbad_suite::testkit::scratch_dir;

#[test]
fn warm_rerun_hits_at_least_half_of_obligations() {
    let w = Workload::small();
    let obligations = cache::ObligationCache::new();
    let cold = run_full_flow_cached(
        &w,
        &telemetry::noop(),
        exec::ExecMode::Sequential,
        &obligations,
    )
    .expect("cold flow runs");
    let after_cold = obligations.stats();
    assert!(after_cold.misses > 0, "cold run must populate the cache");

    let warm = run_full_flow_cached(
        &w,
        &telemetry::noop(),
        exec::ExecMode::Sequential,
        &obligations,
    )
    .expect("warm flow runs");
    let after_warm = obligations.stats();
    let warm_hits = after_warm.hits - after_cold.hits;
    let warm_misses = after_warm.misses - after_cold.misses;
    let warm_total = warm_hits + warm_misses;
    assert!(
        warm_hits * 2 >= warm_total,
        "warm rerun must hit at least half of its obligations \
         ({warm_hits} hits / {warm_misses} misses)"
    );
    assert_eq!(
        warm.to_json(),
        cold.to_json(),
        "warm flow report must be bit-identical to the cold one"
    );
}

#[test]
fn cold_and_warm_reports_are_bit_identical_across_worker_counts() {
    let w = Workload::small();
    let reference = run_full_flow_cached(
        &w,
        &telemetry::noop(),
        exec::ExecMode::Sequential,
        &cache::ObligationCache::new(),
    )
    .expect("reference flow runs")
    .to_json();
    for workers in [1usize, 8] {
        let mode = exec::ExecMode::Parallel { workers };
        let obligations = cache::ObligationCache::new();
        let cold = run_full_flow_cached(&w, &telemetry::noop(), mode, &obligations)
            .expect("cold flow runs");
        let warm = run_full_flow_cached(&w, &telemetry::noop(), mode, &obligations)
            .expect("warm flow runs");
        assert_eq!(
            cold.to_json(),
            reference,
            "cold cached report diverged from sequential at {workers} workers"
        );
        assert_eq!(
            warm.to_json(),
            reference,
            "warm cached report diverged from sequential at {workers} workers"
        );
    }
}

#[test]
fn cache_persistence_round_trips_through_disk() {
    let w = Workload::small();
    let dir = scratch_dir("round-trip");
    let obligations = cache::ObligationCache::new();
    let cold = run_full_flow_cached(
        &w,
        &telemetry::noop(),
        exec::ExecMode::Sequential,
        &obligations,
    )
    .expect("cold flow runs");
    obligations.save(&dir).expect("cache saves");

    let reloaded = cache::ObligationCache::load_or_empty(&dir);
    assert_eq!(reloaded.len(), obligations.len());
    assert_eq!(
        reloaded.entries_sorted(),
        obligations.entries_sorted(),
        "persisted entries must survive the save/load round trip verbatim"
    );

    // A flow run against the reloaded cache is fully warm: zero misses,
    // and the report is still bit-identical.
    let warm = run_full_flow_cached(
        &w,
        &telemetry::noop(),
        exec::ExecMode::Sequential,
        &reloaded,
    )
    .expect("warm flow runs");
    let stats = reloaded.stats();
    assert_eq!(
        stats.misses, 0,
        "every obligation must hit after the disk round trip"
    );
    assert!(stats.hits > 0);
    assert_eq!(warm.to_json(), cold.to_json());
    let _ = fs::remove_dir_all(&dir);
}

/// Runs the flow once against a populated on-disk cache and returns the
/// saved file's text plus the cold report JSON, for corruption tests.
fn saved_cache_text(name: &str) -> (std::path::PathBuf, String, String) {
    let dir = scratch_dir(name);
    let obligations = cache::ObligationCache::new();
    let cold = run_full_flow_cached(
        &Workload::small(),
        &telemetry::noop(),
        exec::ExecMode::Sequential,
        &obligations,
    )
    .expect("cold flow runs");
    obligations.save(&dir).expect("cache saves");
    assert!(!obligations.is_empty(), "the flow must populate the cache");
    let text = fs::read_to_string(dir.join("obligations-v1.json")).expect("saved file reads");
    (dir, text, cold.to_json())
}

#[test]
fn truncated_and_torn_cache_files_load_empty() {
    let (dir, text, _) = saved_cache_text("corrupt-truncated");
    let file = dir.join("obligations-v1.json");
    // A crash mid-write (no atomic rename) can leave any prefix of the
    // file; every prefix that severs the JSON must load as a cold start,
    // never a panic, never a partial resurrection. (The file ends in
    // "]\n}\n", so cutting 3 bytes drops the closing brace; shorter cuts
    // land mid-entry.)
    for cut in [0, 1, text.len() / 4, text.len() / 2, text.len() - 3] {
        fs::write(&file, &text[..cut]).unwrap();
        let loaded = cache::ObligationCache::load_or_empty(&dir);
        assert!(
            loaded.is_empty(),
            "truncation at byte {cut} must load empty, got {} entries",
            loaded.len()
        );
    }
    // A torn write — valid prefix, garbage tail — is equally cold.
    let mut torn = text[..text.len() / 2].to_owned();
    torn.push_str("\u{0}\u{1}<<<not json>>>");
    fs::write(&file, torn).unwrap();
    assert!(cache::ObligationCache::load_or_empty(&dir).is_empty());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn version_and_format_mismatches_load_empty() {
    let (dir, text, _) = saved_cache_text("corrupt-version");
    let file = dir.join("obligations-v1.json");
    // Sanity: the unmodified file does load its entries back.
    assert!(!cache::ObligationCache::load_or_empty(&dir).is_empty());
    // A future format version must not resurrect under the old decoder.
    fs::write(&file, text.replace("\"version\": 1", "\"version\": 999")).unwrap();
    assert!(cache::ObligationCache::load_or_empty(&dir).is_empty());
    // Same for a foreign format tag.
    fs::write(
        &file,
        text.replace("symbad-obligation-cache", "someone-elses-cache"),
    )
    .unwrap();
    assert!(cache::ObligationCache::load_or_empty(&dir).is_empty());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn garbage_entries_load_empty_and_garbage_payloads_stay_sound() {
    let (dir, _, reference) = saved_cache_text("corrupt-payload");
    let file = dir.join("obligations-v1.json");
    // A well-formed header whose entries are junk (wrong types, invalid
    // fingerprints, missing fields) contributes nothing.
    fs::write(
        &file,
        "{\n  \"format\": \"symbad-obligation-cache\",\n  \"version\": 1,\n  \
         \"entries\": [1, \"x\", { \"fp\": 3 }, { \"fp\": \"zz\", \"payload\": \"t\" },\n    \
         { \"fp\": \"0123\", \"payload\": \"t\" }, { \"payload\": \"t\" }, null]\n}\n",
    )
    .unwrap();
    assert!(cache::ObligationCache::load_or_empty(&dir).is_empty());

    // Valid fingerprints with undecodable payloads are the nastier case:
    // they *load*, but every lookup must behave as a miss — the flow
    // re-runs the engine and the report stays bit-identical.
    let (dir, _, _) = saved_cache_text("corrupt-payload");
    let poisoned = cache::ObligationCache::new();
    for (fp, _) in cache::ObligationCache::load_or_empty(&dir).entries_sorted() {
        poisoned.insert(fp, "<<corrupted payload>>".to_owned());
    }
    assert!(!poisoned.is_empty());
    let report = run_full_flow_cached(
        &Workload::small(),
        &telemetry::noop(),
        exec::ExecMode::Sequential,
        &poisoned,
    )
    .expect("flow survives a poisoned cache");
    assert_eq!(
        report.to_json(),
        reference,
        "undecodable payloads must act as misses, never corrupt results"
    );
    let _ = fs::remove_dir_all(&dir);
}

/// A deterministic conflict-rich CNF (planted 3-XOR chain over `n`
/// variables) for exercising the lemma pool with real learnt clauses —
/// the flow's own miters solve in near-zero conflicts and so may leave
/// the pool empty.
fn hard_cnf(n: usize) -> sat::Cnf {
    let lit = |v: usize, pos: bool| sat::Lit::with_polarity(sat::Var::from_index(v), pos);
    let mut clauses = Vec::new();
    for i in 0..n {
        let (a, b, c) = (i, (i * 7 + 3) % n, (i * 13 + 5) % n);
        if a == b || b == c || a == c {
            continue;
        }
        // Encode a ^ b ^ c = 1 as the four clauses ruling out the
        // even-parity assignments.
        for mask in 0..8u32 {
            if (mask.count_ones() % 2) == 1 {
                continue;
            }
            clauses.push(vec![
                lit(a, mask & 1 == 0),
                lit(b, mask & 2 == 0),
                lit(c, mask & 4 == 0),
            ]);
        }
    }
    sat::Cnf {
        num_vars: n,
        clauses,
    }
}

/// Solves `cnf` cold with a collector share attached and returns its
/// pool-bound exports.
fn exports_of(cnf: &sat::Cnf) -> Vec<Vec<sat::Lit>> {
    let mut solver = sat::Solver::new();
    cnf.load_into(&mut solver);
    solver.set_share(sat::SolverShare::collector(
        sat::ShareFilter::permissive(16),
        cache::pool::MAX_CLAUSES_PER_ENTRY,
    ));
    solver.solve();
    solver
        .take_share()
        .expect("collector share is attached")
        .into_pool_exports()
}

#[test]
fn lemma_pool_persistence_round_trips_through_disk() {
    let dir = scratch_dir("lemma-round-trip");
    let cnf = hard_cnf(32);
    let exports = exports_of(&cnf);
    assert!(
        !exports.is_empty(),
        "the hard CNF must produce learnt-clause exports"
    );
    let obligations = cache::ObligationCache::new();
    let fp = cache::Fingerprint(0x1234_5678_9abc_def0_1122_3344_5566_7788);
    obligations.lemmas().insert(fp, &exports);
    obligations.save(&dir).expect("cache saves");
    assert!(
        dir.join("lemmas-v1.json").exists(),
        "saving the cache must write the lemma pool file"
    );

    let reloaded = cache::ObligationCache::load_or_empty(&dir);
    assert_eq!(
        reloaded.lemmas().entries_sorted(),
        obligations.lemmas().entries_sorted(),
        "lemma entries must survive the save/load round trip verbatim"
    );

    // The reloaded clauses still steer a solver to the same verdict.
    let cold = sat::solve_portfolio(&cnf, exec::ExecMode::Sequential).result;
    let seeds = reloaded.lemmas().lookup(fp);
    let coop = sat::solve_portfolio_cooperative(
        &cnf,
        exec::ExecMode::Sequential,
        &sat::ShareConfig::default(),
        &seeds,
    );
    assert_eq!(coop.outcome.result, cold);
    assert!(coop.seeds_imported > 0, "reloaded seeds must import");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_lemma_files_load_an_empty_pool_without_touching_verdicts() {
    let dir = scratch_dir("lemma-corrupt");
    let obligations = cache::ObligationCache::new();
    let cold = run_full_flow_cached(
        &Workload::small(),
        &telemetry::noop(),
        exec::ExecMode::Sequential,
        &obligations,
    )
    .expect("cold flow runs");
    let fp = cache::Fingerprint(0xfeed_face_cafe_f00d_feed_face_cafe_f00d);
    obligations.lemmas().insert(fp, &exports_of(&hard_cnf(24)));
    obligations.save(&dir).expect("cache saves");
    let lemma_file = dir.join("lemmas-v1.json");
    let text = fs::read_to_string(&lemma_file).expect("lemma file reads");

    // Truncations, garbage tails, and version bumps each load as an
    // empty pool — never a panic, never a partial entry — while the
    // verdict cache alongside loads intact and the flow replay stays
    // bit-identical (the pool is effort-advisory, so an empty pool can
    // never change an answer).
    let half = text.len() / 2;
    let torn = format!("{}\u{0}<<<not json>>>", &text[..half]);
    let versioned = text.replace("\"version\": 1", "\"version\": 999");
    for corrupt in [&text[..half], &text[..1], torn.as_str(), versioned.as_str()] {
        fs::write(&lemma_file, corrupt).unwrap();
        let loaded = cache::ObligationCache::load_or_empty(&dir);
        assert!(
            loaded.lemmas().is_empty(),
            "a corrupted lemma file must load an empty pool"
        );
        assert!(
            !loaded.is_empty(),
            "lemma corruption must not discard the verdict entries"
        );
        let warm = run_full_flow_cached(
            &Workload::small(),
            &telemetry::noop(),
            exec::ExecMode::Sequential,
            &loaded,
        )
        .expect("flow survives a corrupted lemma file");
        assert_eq!(warm.to_json(), cold.to_json());
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn retain_lemmas_keeps_the_pool_and_drops_the_verdicts() {
    let w = Workload::small();
    let obligations = cache::ObligationCache::new();
    let cold = run_full_flow_cached(
        &w,
        &telemetry::noop(),
        exec::ExecMode::Sequential,
        &obligations,
    )
    .expect("cold flow runs");
    let fp = cache::Fingerprint(0xaaaa_bbbb_cccc_dddd_0000_1111_2222_3333);
    obligations.lemmas().insert(fp, &exports_of(&hard_cnf(24)));

    let warmed = obligations.retain_lemmas();
    assert!(warmed.is_empty(), "retain_lemmas must drop verdict entries");
    assert_eq!(
        warmed.lemmas().entries_sorted(),
        obligations.lemmas().entries_sorted(),
        "retain_lemmas must copy the pool verbatim"
    );

    // Warm pool, cold verdicts: every obligation re-runs (zero hits) and
    // the report is still bit-identical for sequential and parallel runs.
    for mode in [
        exec::ExecMode::Sequential,
        exec::ExecMode::Parallel { workers: 2 },
        exec::ExecMode::Parallel { workers: 8 },
    ] {
        let pool_only = warmed.retain_lemmas();
        let report = run_full_flow_cached(&w, &telemetry::noop(), mode, &pool_only)
            .expect("warm-pool flow runs");
        assert_eq!(
            report.to_json(),
            cold.to_json(),
            "warm-pool report diverged at {mode:?}"
        );
        // Verdicts re-run from scratch (repeat obligations inside the
        // single run may still hit, but the cold-start misses prove the
        // engines actually executed).
        assert!(
            pool_only.stats().misses > 0,
            "a pool-only cache must re-run the engines"
        );
    }
}

#[test]
fn bmc_constructs_strictly_fewer_solvers_than_it_makes_sat_calls() {
    // One solver per obligation, extended incrementally across depths:
    // the flow's BMC work must show constructions < SAT calls, which is
    // exactly what a per-depth rebuild cannot.
    let w = Workload::small();
    let collector = telemetry::Collector::shared();
    let instr: telemetry::SharedInstrument = collector.clone();
    run_full_flow_cached(
        &w,
        &instr,
        exec::ExecMode::Sequential,
        &cache::ObligationCache::new(),
    )
    .expect("instrumented flow runs");
    let constructions = collector.counter("bmc.solver_constructions");
    let sat_calls = collector.counter("bmc.sat_calls");
    assert!(constructions > 0, "the flow must run BMC");
    assert!(
        constructions < sat_calls,
        "incremental BMC must construct fewer solvers ({constructions}) \
         than it makes SAT calls ({sat_calls})"
    );
    assert!(
        collector.counter("sat.incremental_solve_calls") > 0,
        "reusing a solver across depths must register incremental solve calls"
    );
}
