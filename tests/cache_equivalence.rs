//! The obligation cache's contract: a warm rerun of the flow replays
//! cached verdicts instead of re-running the engines, and the replayed
//! results — verdicts, counterexamples, coverage, and the rendered
//! [`symbad_core::flow::FlowReport`] JSON — are bit-identical to the
//! cold run's, for sequential and parallel execution alike.
//!
//! Also pins the incremental-solving claim the cache composes with: BMC
//! constructs one solver per obligation and extends it depth by depth,
//! so solver constructions stay strictly below SAT calls.

use std::fs;
use std::path::PathBuf;
use symbad_core::flow::run_full_flow_cached;
use symbad_core::workload::Workload;

/// A scratch directory under `target/` for persistence round-trips,
/// unique per test so parallel test threads never collide.
fn scratch_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join("test-cache")
        .join(name);
    let _ = fs::remove_dir_all(&dir);
    dir
}

#[test]
fn warm_rerun_hits_at_least_half_of_obligations() {
    let w = Workload::small();
    let obligations = cache::ObligationCache::new();
    let cold = run_full_flow_cached(
        &w,
        &telemetry::noop(),
        exec::ExecMode::Sequential,
        &obligations,
    )
    .expect("cold flow runs");
    let after_cold = obligations.stats();
    assert!(after_cold.misses > 0, "cold run must populate the cache");

    let warm = run_full_flow_cached(
        &w,
        &telemetry::noop(),
        exec::ExecMode::Sequential,
        &obligations,
    )
    .expect("warm flow runs");
    let after_warm = obligations.stats();
    let warm_hits = after_warm.hits - after_cold.hits;
    let warm_misses = after_warm.misses - after_cold.misses;
    let warm_total = warm_hits + warm_misses;
    assert!(
        warm_hits * 2 >= warm_total,
        "warm rerun must hit at least half of its obligations \
         ({warm_hits} hits / {warm_misses} misses)"
    );
    assert_eq!(
        warm.to_json(),
        cold.to_json(),
        "warm flow report must be bit-identical to the cold one"
    );
}

#[test]
fn cold_and_warm_reports_are_bit_identical_across_worker_counts() {
    let w = Workload::small();
    let reference = run_full_flow_cached(
        &w,
        &telemetry::noop(),
        exec::ExecMode::Sequential,
        &cache::ObligationCache::new(),
    )
    .expect("reference flow runs")
    .to_json();
    for workers in [1usize, 8] {
        let mode = exec::ExecMode::Parallel { workers };
        let obligations = cache::ObligationCache::new();
        let cold = run_full_flow_cached(&w, &telemetry::noop(), mode, &obligations)
            .expect("cold flow runs");
        let warm = run_full_flow_cached(&w, &telemetry::noop(), mode, &obligations)
            .expect("warm flow runs");
        assert_eq!(
            cold.to_json(),
            reference,
            "cold cached report diverged from sequential at {workers} workers"
        );
        assert_eq!(
            warm.to_json(),
            reference,
            "warm cached report diverged from sequential at {workers} workers"
        );
    }
}

#[test]
fn cache_persistence_round_trips_through_disk() {
    let w = Workload::small();
    let dir = scratch_dir("round-trip");
    let obligations = cache::ObligationCache::new();
    let cold = run_full_flow_cached(
        &w,
        &telemetry::noop(),
        exec::ExecMode::Sequential,
        &obligations,
    )
    .expect("cold flow runs");
    obligations.save(&dir).expect("cache saves");

    let reloaded = cache::ObligationCache::load_or_empty(&dir);
    assert_eq!(reloaded.len(), obligations.len());
    assert_eq!(
        reloaded.entries_sorted(),
        obligations.entries_sorted(),
        "persisted entries must survive the save/load round trip verbatim"
    );

    // A flow run against the reloaded cache is fully warm: zero misses,
    // and the report is still bit-identical.
    let warm = run_full_flow_cached(
        &w,
        &telemetry::noop(),
        exec::ExecMode::Sequential,
        &reloaded,
    )
    .expect("warm flow runs");
    let stats = reloaded.stats();
    assert_eq!(
        stats.misses, 0,
        "every obligation must hit after the disk round trip"
    );
    assert!(stats.hits > 0);
    assert_eq!(warm.to_json(), cold.to_json());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn bmc_constructs_strictly_fewer_solvers_than_it_makes_sat_calls() {
    // One solver per obligation, extended incrementally across depths:
    // the flow's BMC work must show constructions < SAT calls, which is
    // exactly what a per-depth rebuild cannot.
    let w = Workload::small();
    let collector = telemetry::Collector::shared();
    let instr: telemetry::SharedInstrument = collector.clone();
    run_full_flow_cached(
        &w,
        &instr,
        exec::ExecMode::Sequential,
        &cache::ObligationCache::new(),
    )
    .expect("instrumented flow runs");
    let constructions = collector.counter("bmc.solver_constructions");
    let sat_calls = collector.counter("bmc.sat_calls");
    assert!(constructions > 0, "the flow must run BMC");
    assert!(
        constructions < sat_calls,
        "incremental BMC must construct fewer solvers ({constructions}) \
         than it makes SAT calls ({sat_calls})"
    );
    assert!(
        collector.counter("sat.incremental_solve_calls") > 0,
        "reusing a solver across depths must register incremental solve calls"
    );
}
