//! Property-based cross-checks of the formal engines against brute force
//! and against each other — the "two independent reasoning paths must
//! agree" discipline the repo uses everywhere.

use proptest::prelude::*;
use symbad_suite::testkit::{bdd_from_clauses, brute_force_sat, solver_from_clauses};

/// A small random CNF as (num_vars, clauses of literal codes).
fn cnf_strategy() -> impl Strategy<Value = (usize, Vec<Vec<(usize, bool)>>)> {
    (2usize..=6).prop_flat_map(|n| {
        let clause = proptest::collection::vec((0..n, any::<bool>()), 1..=3);
        let clauses = proptest::collection::vec(clause, 1..=12);
        (Just(n), clauses)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn sat_solver_agrees_with_brute_force((n, clauses) in cnf_strategy()) {
        let (mut solver, vars) = solver_from_clauses(n, &clauses);
        let expected = brute_force_sat(n, &clauses);
        let got = solver.solve().is_sat();
        prop_assert_eq!(got, expected);
        if got {
            // The model must satisfy every clause.
            for c in &clauses {
                let satisfied = c.iter().any(|&(v, pos)| solver.value(vars[v]) == Some(pos));
                prop_assert!(satisfied);
            }
        }
    }

    #[test]
    fn bdd_agrees_with_brute_force((n, clauses) in cnf_strategy()) {
        let (mgr, formula) = bdd_from_clauses(&clauses);
        let expected = brute_force_sat(n, &clauses);
        prop_assert_eq!(formula != bdd::Ref::FALSE, expected);
        // Model count cross-check against enumeration.
        let count = (0..(1u32 << n)).filter(|&bits| {
            clauses.iter().all(|c| c.iter().any(|&(v, pos)| (bits >> v & 1 == 1) == pos))
        }).count() as u64;
        prop_assert_eq!(mgr.sat_count(formula, n as u32), count);
    }

    #[test]
    fn sat_and_bdd_agree_with_each_other((n, clauses) in cnf_strategy()) {
        let (mut solver, _) = solver_from_clauses(n, &clauses);
        let (_mgr, formula) = bdd_from_clauses(&clauses);
        prop_assert_eq!(solver.solve().is_sat(), formula != bdd::Ref::FALSE);
    }

    #[test]
    fn simplex_optimum_dominates_random_feasible_points(
        coeffs in proptest::collection::vec(1i128..=9, 3),
        bounds in proptest::collection::vec(1i128..=50, 3),
        samples in proptest::collection::vec((0i128..=50, 0i128..=50, 0i128..=50), 10),
    ) {
        use lp::{Problem, Rational};
        // max c·x subject to x_i ≤ b_i (box): optimum = Σ c_i b_i.
        let mut p = Problem::new(3);
        let c: Vec<Rational> = coeffs.iter().map(|&v| Rational::integer(v)).collect();
        p.maximize(&c);
        for (i, &b) in bounds.iter().enumerate() {
            let mut row = vec![Rational::ZERO; 3];
            row[i] = Rational::ONE;
            p.add_le(&row, Rational::integer(b));
        }
        let sol = p.solve();
        let value = sol.value().expect("bounded box LP");
        let expected: i128 = coeffs.iter().zip(&bounds).map(|(&c, &b)| c * b).sum();
        prop_assert_eq!(value, Rational::integer(expected));
        // And the optimum dominates every feasible sample point.
        for (x, y, z) in samples {
            let clamped = [x.min(bounds[0]), y.min(bounds[1]), z.min(bounds[2])];
            let v: i128 = coeffs.iter().zip(&clamped).map(|(&c, &x)| c * x).sum();
            prop_assert!(Rational::integer(v) <= value);
        }
    }

    #[test]
    fn rtl_lowering_agrees_with_simulator_on_random_words(
        a in any::<u16>(),
        b in any::<u16>(),
        op_idx in 0usize..10,
    ) {
        use behav::BinOp;
        let ops = [
            BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::And, BinOp::Or,
            BinOp::Xor, BinOp::Eq, BinOp::Lt, BinOp::Le, BinOp::Gt,
        ];
        let op = ops[op_idx];
        let mut rtl = hdl::Rtl::new("prop");
        let x = rtl.input("x", 16);
        let y = rtl.input("y", 16);
        let o = rtl.binary(op, x, y);
        rtl.output("o", o);
        let expected = rtl.eval_combinational(&[a as u64, b as u64])[0];

        use hdl::lower::{lower, BitCtx, CnfBackend};
        let mut ctx = CnfBackend::new();
        let bits_x: Vec<sat::Lit> = (0..16).map(|_| ctx.bit_fresh()).collect();
        let bits_y: Vec<sat::Lit> = (0..16).map(|_| ctx.bit_fresh()).collect();
        let lowered = lower(&rtl, &mut ctx, &[bits_x.clone(), bits_y.clone()], &[]);
        let out = lowered.outputs(&rtl)[0].1.clone();
        let mut assumptions = Vec::new();
        for (i, &l) in bits_x.iter().enumerate() {
            assumptions.push(sat::Lit::with_polarity(l.var(), a as u64 >> i & 1 == 1));
        }
        for (i, &l) in bits_y.iter().enumerate() {
            assumptions.push(sat::Lit::with_polarity(l.var(), b as u64 >> i & 1 == 1));
        }
        let builder = ctx.builder_mut();
        prop_assert!(builder.solve_with(&assumptions).is_sat());
        let mut got = 0u64;
        for (i, &l) in out.iter().enumerate() {
            if builder.lit_value(l) {
                got |= 1 << i;
            }
        }
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn symbc_certificate_implies_no_concrete_violation(
        branch_count in 1usize..4,
        reconfig_mask in 0u32..16,
    ) {
        // Generate SW with `branch_count` if-blocks; each block reconfigures
        // to config2 in its then-arm iff the mask bit is set, and always
        // calls `root` afterwards. SymbC's verdict must be sound: if it
        // certifies, no concrete branch valuation may hit a missing config.
        use behav::{Expr, FunctionBuilder};
        let mut map = symbc::ConfigMap::new();
        let c1 = map.add_config("config1");
        let c2 = map.add_config("config2");
        map.add_function(c1, "distance");
        map.add_function(c2, "root");

        let mut fb = FunctionBuilder::new("gen", 8);
        let x = fb.param("x", 8);
        fb.reconfigure(c1);
        for i in 0..branch_count {
            let set = reconfig_mask >> i & 1 == 1;
            fb.if_else(
                Expr::eq(
                    Expr::and(Expr::var(x), Expr::constant(1 << i, 8)),
                    Expr::constant(0, 8),
                ),
                |t| {
                    if set {
                        t.reconfigure(c2);
                    } else {
                        t.reconfigure(c1);
                    }
                },
                |e| {
                    e.reconfigure(c2);
                },
            );
            fb.resource_call("root", vec![], None);
        }
        fb.ret(Expr::constant(0, 8));
        let sw = fb.build();
        let verdict = symbc::check(&sw, &map);

        // Concrete check over all inputs via the interpreter with an FPGA
        // emulation handler.
        let mut any_violation = false;
        for input in 0..=255u64 {
            let mut current: Option<behav::ConfigId> = None;
            let mut violated = false;
            // Re-run the abstract machine concretely by interpreting and
            // watching the call trace.
            let out = behav::interp::Interpreter::new(&sw)
                .run(&[input])
                .expect("runs");
            for ev in out.call_trace {
                match ev {
                    behav::interp::CallEvent::Reconfigure(c) => current = Some(c),
                    behav::interp::CallEvent::Resource { func, .. } => {
                        let ok = matches!(current, Some(c) if map.provides(c, &func));
                        if !ok {
                            violated = true;
                        }
                    }
                }
            }
            any_violation |= violated;
        }
        if verdict.is_consistent() {
            prop_assert!(!any_violation, "SymbC certified an unsound program");
        } else {
            // Conversely the abstract analysis found something; for this
            // branch-only program family the analysis is exact, so a
            // concrete violation must exist.
            prop_assert!(any_violation, "SymbC flagged a clean program of an exact family");
        }
    }
}
