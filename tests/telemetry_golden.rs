//! Golden-file tests: telemetry exports are byte-stable.
//!
//! The collector records only simulation-time-keyed data by default
//! (wall-clock capture is opt-in and off here), every export sorts by
//! deterministic keys, and the JSON writer formats numbers reproducibly —
//! so a fixed-seed run must reproduce its exports byte-for-byte. These
//! tests pin that contract: any accidental nondeterminism (map iteration
//! order, wall-time leakage, float formatting drift) shows up as a diff.
//!
//! To regenerate after an intentional model or exporter change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test telemetry_golden
//! ```

use symbad_core::flow::run_full_flow_instrumented;
use symbad_core::level3;
use symbad_core::workload::Workload;
use symbad_suite::testkit::assert_golden;
use telemetry::{chrome_trace, Collector, SharedInstrument};

#[test]
fn level3_chrome_trace_is_byte_identical() {
    let collector = Collector::shared();
    let instr: SharedInstrument = collector.clone();
    let report = level3::run_instrumented(&Workload::small(), &instr).expect("level-3 run");
    assert!(report.matches_reference);

    let trace = chrome_trace(&collector);
    // Wall-clock capture is off: every span's wall_us arg must be zero.
    assert!(!trace.is_empty());
    assert_golden("level3_trace.json", &trace);

    // Re-running the same seed reproduces the export exactly.
    let collector2 = Collector::shared();
    let instr2: SharedInstrument = collector2.clone();
    level3::run_instrumented(&Workload::small(), &instr2).expect("level-3 rerun");
    assert_eq!(trace, chrome_trace(&collector2));
}

#[test]
fn flow_report_json_is_byte_identical() {
    let collector = Collector::shared();
    let instr: SharedInstrument = collector.clone();
    let report = run_full_flow_instrumented(&Workload::small(), &instr).expect("flow runs");
    assert!(report.all_ok());
    assert_golden("flow_report.json", &report.to_json());
}

#[test]
fn faulted_run_exports_recovery_counters() {
    use sim::faults::FaultPlan;
    use symbad_core::timed::RecoveryPolicy;

    let w = Workload::small();
    let plan = || {
        FaultPlan::new(7)
            .with_bitstream_corruption(400_000)
            .with_bus_errors(
                symbad_core::timed::addr::FLASH_BASE,
                symbad_core::timed::addr::FLASH_SIZE,
                150_000,
            )
    };
    let collector = Collector::shared();
    let instr: SharedInstrument = collector.clone();
    let run = level3::run_with_faults_instrumented(&w, plan(), RecoveryPolicy::default(), &instr)
        .expect("recovered run");
    let faults = run.faults.expect("fault report present");
    assert!(faults.retries > 0, "this seed must inject something");

    // The fault/recovery summary surfaces as counters.
    assert_eq!(collector.counter("recovery.retries"), faults.retries);
    assert_eq!(collector.counter("recovery.recovered"), faults.recovered);
    let injected = collector.counter("faults.bitstream_corruptions")
        + collector.counter("faults.bus_errors")
        + collector.counter("faults.load_timeouts")
        + collector.counter("faults.slave_stalls");
    assert!(injected > 0);

    // Telemetry leaves the faulted run itself untouched: same report as
    // the uninstrumented path, bit for bit.
    let plain = symbad_core::level3::run_with_faults(&w, plan(), RecoveryPolicy::default())
        .expect("plain recovered run");
    assert_eq!(plain.total_ticks, run.total_ticks);
    assert_eq!(plain.recognized, run.recognized);
    assert_eq!(plain.faults, Some(faults));
}

#[test]
fn instrumentation_does_not_perturb_the_run() {
    let w = Workload::small();
    let plain = level3::run(&w).expect("plain run");
    let collector = Collector::shared();
    let instr: SharedInstrument = collector.clone();
    let instrumented = level3::run_instrumented(&w, &instr).expect("instrumented run");
    // Bit-identical functional and timing results either way.
    assert_eq!(plain.recognized, instrumented.recognized);
    assert_eq!(plain.total_ticks, instrumented.total_ticks);
    assert!(plain.trace.matches_untimed(&instrumented.trace).is_ok());
    assert_eq!(
        plain.fpga.as_ref().map(|f| f.reconfigurations),
        instrumented.fpga.as_ref().map(|f| f.reconfigurations)
    );
}
