//! Tier-1 smoke run of the differential fuzzer: every oracle family at
//! its default budget (raise with `SYMBAD_FUZZ_ITERS`), expecting zero
//! disagreements between the independent engine implementations, plus
//! the determinism contract the reproducer format depends on.

use fuzz::{run, Family, FuzzConfig};

#[test]
fn every_family_runs_clean_at_its_default_budget() {
    for family in Family::ALL {
        let config = FuzzConfig::standard(family);
        let outcome = run(family, &config);
        assert_eq!(outcome.iters, config.iters);
        assert!(
            outcome.disagreements.is_empty(),
            "{} family found disagreements: {}",
            family.as_str(),
            outcome
                .disagreements
                .iter()
                .map(|d| format!("SYMBAD_FUZZ_REPRO={} ({})", d.repro, d.detail))
                .collect::<Vec<_>>()
                .join("; ")
        );
        assert!(
            outcome.distinct_signatures > 1,
            "{} family exercised only one engine-behaviour signature",
            family.as_str()
        );
    }
}

#[test]
fn coverage_steering_never_trails_a_frozen_profile() {
    // The coverage-feedback effect reported in EXPERIMENTS.md E15: with
    // steering the bias rotates whenever counter signatures go stale, so
    // the run must reach at least as many distinct signatures as the
    // same seeds with the feedback loop disabled (run with --nocapture
    // to see the measured gap).
    for family in [Family::Sat, Family::Dimacs, Family::Sim] {
        let iters = family.default_iters();
        let steered = run(
            family,
            &FuzzConfig {
                seed: 0,
                iters,
                steering: true,
            },
        );
        let frozen = run(
            family,
            &FuzzConfig {
                seed: 0,
                iters,
                steering: false,
            },
        );
        println!(
            "{}: {} iterations, steered {} signatures vs frozen {}",
            family.as_str(),
            iters,
            steered.distinct_signatures,
            frozen.distinct_signatures
        );
        assert!(
            steered.distinct_signatures >= frozen.distinct_signatures,
            "{}: steered {} < frozen {}",
            family.as_str(),
            steered.distinct_signatures,
            frozen.distinct_signatures
        );
    }
}

#[test]
fn fixed_seed_runs_reproduce_their_outcome_exactly() {
    // The reproducer contract in one assertion: a run is a pure function
    // of its configuration, coverage steering included.
    for family in [Family::Sat, Family::Sim] {
        let config = FuzzConfig {
            seed: 7,
            iters: 20,
            steering: true,
        };
        assert_eq!(run(family, &config), run(family, &config));
    }
}
