//! Fault injection, retry, and graceful degradation (level 3).
//!
//! The contract under test: injected platform faults may change *timing*
//! (retries, watchdog windows, software fallback) but never *function* —
//! with recovery enabled a faulted run matches the reference bit-for-bit,
//! and with recovery disabled every injected fault surfaces as a typed
//! error, never a silently wrong answer.

use proptest::prelude::*;
use sim::faults::{FaultPlan, PPM};
use sim::SimTime;
use symbad_core::level3;
use symbad_core::timed::{addr, RecoveryPolicy, RunError};
use symbad_core::Workload;

#[test]
fn error_displays_are_informative() {
    use platform::FpgaError;
    use tlm::BusError;

    let decode = BusError::Decode { addr: 0xDEAD_0000 };
    assert!(decode.to_string().contains("no mapped region"));
    assert!(decode.to_string().contains("0xdead0000"));

    let slave = BusError::Slave {
        slave: "flash".to_owned(),
        addr: 0x0010_0000,
        at: SimTime::from_ticks(42),
    };
    assert!(slave.to_string().contains("flash"));
    assert!(slave.to_string().contains("0x100000"));

    let master = BusError::UnknownMaster { master: 9 };
    assert!(master.to_string().contains('9'));

    let corrupt = FpgaError::BitstreamCorrupted {
        context: "config1".to_owned(),
        expected_crc: 0x1234_5678,
        got_crc: 0x8765_4321,
    };
    assert!(corrupt.to_string().contains("config1"));
    assert!(corrupt.to_string().contains("0x12345678"));
    assert!(corrupt.to_string().contains("0x87654321"));

    let timeout = FpgaError::LoadTimeout {
        context: "config2".to_owned(),
    };
    assert!(timeout.to_string().contains("timed out"));

    let wrapped = FpgaError::Bus(decode);
    assert!(wrapped.to_string().contains("download failed on the bus"));
}

proptest! {
    #![proptest_config(proptest::test_runner::Config::with_cases(6))]

    /// An all-zero-rate plan performs no random draws, so — whatever its
    /// seed — the run is observationally identical to the fault-free one.
    #[test]
    fn zero_rate_plan_reproduces_fault_free_run(seed in 0u64..1_000_000) {
        let w = Workload::small();
        let base = level3::run(&w).expect("fault-free run");
        let inert = level3::run_with_faults(&w, FaultPlan::new(seed), RecoveryPolicy::default())
            .expect("inert plan cannot fail a run");
        prop_assert_eq!(base.total_ticks, inert.total_ticks);
        prop_assert_eq!(&base.recognized, &inert.recognized);
        prop_assert!(base.trace.matches_untimed(&inert.trace).is_ok());
        prop_assert_eq!(&base.fpga, &inert.fpga);
        let fr = inert.faults.expect("a plan was installed");
        prop_assert_eq!(fr.injected.total(), 0);
        prop_assert_eq!(fr.retries, 0);
        prop_assert!(fr.degraded.is_empty());
    }
}

#[test]
fn faulted_run_is_seed_reproducible() {
    let w = Workload::small();
    let plan = || {
        FaultPlan::new(1301)
            .with_bitstream_corruption(400_000)
            .with_bus_errors(addr::FLASH_BASE, addr::FLASH_SIZE, 150_000)
    };
    let a = level3::run_with_faults(&w, plan(), RecoveryPolicy::default()).expect("run a");
    let b = level3::run_with_faults(&w, plan(), RecoveryPolicy::default()).expect("run b");
    assert_eq!(a.total_ticks, b.total_ticks);
    assert_eq!(a.faults, b.faults);
    assert_eq!(a.recognized, b.recognized);
}

#[test]
fn recovery_preserves_function_under_injected_faults() {
    let w = Workload::small();
    let base = level3::run(&w).expect("fault-free run");
    let plan = FaultPlan::new(7)
        .with_bitstream_corruption(400_000)
        .with_bus_errors(addr::FLASH_BASE, addr::FLASH_SIZE, 150_000);
    let faulted =
        level3::run_with_faults(&w, plan, RecoveryPolicy::default()).expect("recovery absorbs");
    // Degradation and retries change timing, never function.
    assert_eq!(faulted.recognized, base.recognized);
    assert!(
        faulted.trace.matches_untimed(&base.trace).is_ok(),
        "functional trace must match the fault-free run"
    );
    assert!(
        faulted.matches_reference,
        "mismatch: {:?}",
        faulted.mismatch
    );
    let fr = faulted.faults.expect("fault report present");
    assert!(fr.injected.total() > 0, "this seed must inject faults");
    assert!(fr.retries > 0, "injected faults must trigger retries");
    assert!(
        faulted.total_ticks > base.total_ticks,
        "faults cost time: {} vs {}",
        faulted.total_ticks,
        base.total_ticks
    );
}

#[test]
fn permanent_download_failure_degrades_to_software() {
    let w = Workload::small();
    let base = level3::run(&w).expect("fault-free run");
    // Every download corrupted: retries exhaust and both contexts fall
    // back to software execution.
    let plan = FaultPlan::new(3).with_bitstream_corruption(PPM);
    let degraded =
        level3::run_with_faults(&w, plan, RecoveryPolicy::default()).expect("degrades, not fails");
    assert_eq!(degraded.recognized, base.recognized);
    assert!(degraded.trace.matches_untimed(&base.trace).is_ok());
    let fr = degraded.faults.expect("fault report present");
    assert!(
        fr.degraded.contains(&"distance".to_owned()) && fr.degraded.contains(&"root".to_owned()),
        "both kernels degrade: {:?}",
        fr.degraded
    );
    // The FPGA never successfully loaded anything.
    let fpga = degraded.fpga.expect("level 3 has an FPGA");
    assert_eq!(fpga.reconfigurations, 0);
    assert!(fpga.failed_loads > 0);
    assert!(degraded.total_ticks > base.total_ticks);
}

#[test]
fn disabled_recovery_surfaces_typed_errors() {
    let w = Workload::small();
    let plan = FaultPlan::new(11).with_bitstream_corruption(PPM);
    let err = level3::run_with_faults(&w, plan, RecoveryPolicy::disabled())
        .expect_err("unrecovered fault must abort the run");
    match err {
        RunError::Platform(fault) => {
            let msg = fault.to_string();
            assert!(
                msg.contains("corrupted") || msg.contains("not resident"),
                "typed fault, got: {msg}"
            );
        }
        RunError::Sim(e) => panic!("platform fault must win over kernel symptom, got: {e}"),
    }
}
