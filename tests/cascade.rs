//! Experiment E12: the Figure-1 verification cascade catches one seeded
//! error per class, at the stage the paper assigns to it.

use symbad_core::cascade;

#[test]
fn cascade_catches_every_seeded_error_class() {
    let report = cascade::run();
    assert!(report.all_effective(), "{:#?}", report.stages);
    // The five stages: ATPG, LPV deadlock, LPV deadline, SymbC, MC.
    let names: Vec<&str> = report.stages.iter().map(|s| s.stage).collect();
    assert_eq!(names.len(), 5);
    assert!(names[0].contains("ATPG"));
    assert!(names[1].contains("LPV"));
    assert!(names[2].contains("LPV"));
    assert!(names[3].contains("SymbC"));
    assert!(names[4].contains("Model checking"));
}

#[test]
fn stages_are_specialized_not_interchangeable() {
    // The seeded level-3 bug (missing reconfigure) is invisible to the
    // level-1 tools: ATPG coverage of the buggy SW is achievable and the
    // Petri abstraction stays live — only SymbC sees the inconsistency.
    let (buggy_sw, map) = cascade::instrumented_sw(false);
    // ATPG: the buggy SW runs fine functionally (resource calls answer 0).
    let tb = atpg::tpg::random_tpg(
        &buggy_sw,
        &atpg::tpg::RandomConfig {
            rounds: 32,
            seed: 9,
        },
    );
    let findings = atpg::metrics::memory_inspection(&buggy_sw, &tb);
    assert!(
        findings.is_empty(),
        "memory inspection must not flag a reconfiguration bug"
    );
    // SymbC: catches it.
    assert!(!symbc::check(&buggy_sw, &map).is_consistent());
}

#[test]
fn lpv_counterexample_is_confirmed_by_token_game() {
    use lp::lpv::LivenessVerdict;
    let net = cascade::fig2_petri_net(0);
    match lp::check_liveness(&net) {
        LivenessVerdict::TokenFreeCycle { places } => {
            assert!(!places.is_empty());
            // Confirm by simulation: the net deadlocks immediately (no
            // credits → camera can never fire).
            let (fired, marking) = net.simulate(100);
            assert!(fired.is_empty());
            assert!(net.is_dead(&marking));
        }
        other => panic!("expected token-free cycle, got {other:?}"),
    }
}
