//! Four-way equivalence of the FPGA kernels: pure Rust (`media::pipeline`)
//! ≡ behavioural IR (`behav` interpreter) ≡ bytecode VM (`behav::bytecode`)
//! ≡ synthesized RTL (`hdl`), checked by simulation sampling,
//! property-based testing and SAT. The interpreter and VM legs compare the
//! *whole* instrumented output (coverage, op counts, memory inspection),
//! not just the return value.

use behav::bytecode::{compile, Vm};
use behav::interp::Interpreter;
use behav::unroll::unroll;
use hdl::synth::synthesize;
use media::kernels::{distance_step_function, root_function, ROOT_ITERATIONS};
use media::pipeline::root as rust_root;
use proptest::prelude::*;

#[test]
fn distance_four_way_equivalence_sampled() {
    let func = distance_step_function();
    let rtl = synthesize(&func).expect("synthesizable");
    let mut vm = Vm::new(compile(&func));
    for (a, b, acc) in [
        (0u64, 0u64, 0u64),
        (65535, 0, 0),
        (0, 65535, 0),
        (1234, 4321, 999_999),
        (40000, 39999, u32::MAX as u64),
    ] {
        let rust = {
            let d = (a as i64 - b as i64).unsigned_abs();
            (acc + d * d) & 0xFFFF_FFFF
        };
        let interp = Interpreter::new(&func).run(&[a, b, acc]).expect("runs");
        let hw = rtl.eval_combinational(&[a, b, acc])[0];
        assert_eq!(
            Some(rust),
            interp.return_value,
            "interp a={a} b={b} acc={acc}"
        );
        assert_eq!(Ok(interp), vm.run(&[a, b, acc]), "vm a={a} b={b} acc={acc}");
        assert_eq!(rust, hw, "rtl a={a} b={b} acc={acc}");
    }
}

#[test]
fn root_four_way_equivalence_sampled() {
    let func = root_function();
    let unrolled = unroll(&func, ROOT_ITERATIONS);
    let rtl = synthesize(&unrolled).expect("synthesizable");
    let mut vm = Vm::new(compile(&func));
    let mut unrolled_vm = Vm::new(compile(&unrolled));
    for x in [
        0u64,
        1,
        2,
        48,
        49,
        50,
        65535,
        65536,
        1 << 31,
        u32::MAX as u64,
    ] {
        let rust = rust_root(x) as u64 & 0xFFFF;
        let interp = Interpreter::new(&func).run(&[x]).expect("runs");
        let hw = rtl.eval_combinational(&[x])[0];
        assert_eq!(Some(rust), interp.return_value, "interp x={x}");
        assert_eq!(Ok(interp), vm.run(&[x]), "vm x={x}");
        assert_eq!(
            Interpreter::new(&unrolled).run(&[x]),
            unrolled_vm.run(&[x]),
            "unrolled vm x={x}"
        );
        assert_eq!(rust, hw, "rtl x={x}");
    }
}

#[test]
fn sat_miter_proves_rtl_equivalence() {
    use symbad_core::level4::prove_equivalence;
    let dist = distance_step_function();
    let dist_rtl = synthesize(&dist).expect("synth");
    assert!(prove_equivalence(&dist, &dist_rtl));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn distance_equivalence_random(a in 0u64..=0xFFFF, b in 0u64..=0xFFFF, acc in 0u64..=0xFFFF_FFFF) {
        let func = distance_step_function();
        let rtl = synthesize(&func).expect("synthesizable");
        let d = (a as i64 - b as i64).unsigned_abs();
        let rust = (acc + d * d) & 0xFFFF_FFFF;
        let interp = Interpreter::new(&func).run(&[a, b, acc]).unwrap();
        let vm = Vm::new(compile(&func)).run(&[a, b, acc]).unwrap();
        let hw = rtl.eval_combinational(&[a, b, acc])[0];
        prop_assert_eq!(Some(rust), interp.return_value);
        prop_assert_eq!(interp, vm);
        prop_assert_eq!(rust, hw);
    }

    #[test]
    fn root_equivalence_random(x in 0u64..=u32::MAX as u64) {
        let func = root_function();
        let rust = rust_root(x) as u64 & 0xFFFF;
        let interp = Interpreter::new(&func).run(&[x]).unwrap();
        let vm = Vm::new(compile(&func)).run(&[x]).unwrap();
        prop_assert_eq!(Some(rust), interp.return_value);
        prop_assert_eq!(interp, vm);
    }

    #[test]
    fn root_result_is_true_isqrt(x in 0u64..=u32::MAX as u64) {
        let r = rust_root(x) as u64;
        prop_assert!(r * r <= x);
        prop_assert!((r + 1) * (r + 1) > x);
    }
}
