//! Property-based tests of the imaging pipeline: algebraic invariants of
//! every Figure-2 kernel that hold for *any* image, not just faces.

use media::image::{BinaryImage, GrayImage};
use media::pipeline::{
    bay, calcdist, calcline, crtbord, crtline, distance, edge, ellipse, erosion, root, winner,
    FEATURE_LEN,
};
use proptest::prelude::*;

fn gray_image(max_dim: usize) -> impl Strategy<Value = GrayImage> {
    (4..=max_dim, 4..=max_dim).prop_flat_map(|(w, h)| {
        proptest::collection::vec(0u16..=255, w * h).prop_map(move |data| GrayImage {
            width: w,
            height: h,
            data,
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn erosion_never_brightens(img in gray_image(24)) {
        let e = erosion(&img);
        for y in 0..img.height {
            for x in 0..img.width {
                prop_assert!(e.at(x, y) <= img.at(x, y));
            }
        }
    }

    #[test]
    fn erosion_is_monotone(img in gray_image(16)) {
        // Eroding a uniformly brightened image dominates eroding the
        // original (morphological monotonicity).
        let brighter = GrayImage {
            width: img.width,
            height: img.height,
            data: img.data.iter().map(|&p| (p + 10).min(255)).collect(),
        };
        let e1 = erosion(&img);
        let e2 = erosion(&brighter);
        for (a, b) in e1.data.iter().zip(&e2.data) {
            prop_assert!(b >= a);
        }
    }

    #[test]
    fn edge_of_flat_image_is_empty(w in 4usize..20, h in 4usize..20, v in 0u16..=255) {
        let img = GrayImage { width: w, height: h, data: vec![v; w * h] };
        let e = edge(&img);
        prop_assert_eq!(e.count_ones(), 0);
    }

    #[test]
    fn ellipse_center_stays_in_bounds(img in gray_image(24)) {
        let edges = edge(&img);
        let fit = ellipse(&edges);
        prop_assert!(fit.cx >= 0 && (fit.cx as usize) < img.width);
        prop_assert!(fit.cy >= 0 && (fit.cy as usize) < img.height);
        prop_assert!(fit.a >= 1 && fit.b >= 1);
        // CRTBORD clamps to the frame.
        let region = crtbord(img.width, img.height, &fit);
        prop_assert!(region.x1 <= img.width.max(region.x0 + 1));
        prop_assert!(region.y1 <= img.height.max(region.y0 + 1));
        prop_assert!(region.width() >= 1 && region.height() >= 1);
    }

    #[test]
    fn feature_extraction_has_fixed_shape_and_range(img in gray_image(24)) {
        let edges = edge(&img);
        let fit = ellipse(&edges);
        let region = crtbord(img.width, img.height, &fit);
        let raw = crtline(&img, &region);
        prop_assert_eq!(raw.len(), FEATURE_LEN);
        let features = calcline(&raw);
        prop_assert_eq!(features.len(), FEATURE_LEN);
        prop_assert!(features.iter().all(|&v| v <= 255));
    }

    #[test]
    fn distance_is_a_semimetric(
        a in proptest::collection::vec(0u16..=255, 16),
        b in proptest::collection::vec(0u16..=255, 16),
    ) {
        // Symmetry and identity of the squared distance.
        let dab = calcdist(&distance(&a, &b));
        let dba = calcdist(&distance(&b, &a));
        prop_assert_eq!(dab, dba);
        prop_assert_eq!(calcdist(&distance(&a, &a)), 0);
        // Rooted distance agrees with the float norm within rounding.
        let exact: f64 = a.iter().zip(&b)
            .map(|(&x, &y)| {
                let d = x as f64 - y as f64;
                d * d
            })
            .sum::<f64>()
            .sqrt();
        let r = root(dab) as f64;
        prop_assert!((r - exact).abs() <= 1.0, "root {r} vs {exact}");
    }

    #[test]
    fn winner_returns_a_global_minimum(d in proptest::collection::vec(any::<u32>(), 1..40)) {
        let w = winner(&d);
        prop_assert!(d.iter().all(|&x| d[w] <= x));
        // Tie-break: no earlier index has the same value.
        prop_assert!(d[..w].iter().all(|&x| x > d[w]));
    }

    #[test]
    fn bay_output_is_8_bit_and_quad_constant(
        w in 2usize..16, h in 2usize..16,
        data in proptest::collection::vec(0u16..=255, 16 * 16),
    ) {
        let raw = media::image::BayerImage {
            width: w,
            height: h,
            data: data[..w * h].to_vec(),
        };
        let g = bay(&raw);
        prop_assert!(g.data.iter().all(|&p| p <= 255));
        // Every pixel of an aligned 2×2 quad gets the same demosaiced value.
        for y in (0..h & !1).step_by(2) {
            for x in (0..w & !1).step_by(2) {
                if x + 1 < w && y + 1 < h {
                    let v = g.at(x, y);
                    prop_assert_eq!(g.at(x + 1, y), v);
                    prop_assert_eq!(g.at(x, y + 1), v);
                    prop_assert_eq!(g.at(x + 1, y + 1), v);
                }
            }
        }
    }
}

#[test]
fn edge_detects_vertical_step_everywhere() {
    // Deterministic sanity companion to the proptests.
    for split in 2..6 {
        let mut img = GrayImage::new(8, 8);
        for y in 0..8 {
            for x in split..8 {
                *img.at_mut(x, y) = 220;
            }
        }
        let e: BinaryImage = edge(&img);
        assert!(e.count_ones() > 0, "split at {split}");
    }
}
