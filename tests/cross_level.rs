//! Cross-crate integration: the paper's per-refinement functional
//! verification — every level's trace must match the previous level's and
//! ultimately the C reference model.

use symbad_core::workload::Workload;
use symbad_core::{level1, level2, level3};

#[test]
fn all_levels_agree_with_reference_and_each_other() {
    let workload = Workload::small();
    let l1 = level1::run(&workload).expect("level 1");
    let l2 = level2::run(&workload).expect("level 2");
    let l3 = level3::run(&workload).expect("level 3");

    assert!(l1.matches_reference, "{:?}", l1.mismatch);
    assert!(l2.matches_reference, "{:?}", l2.mismatch);
    assert!(l3.matches_reference, "{:?}", l3.mismatch);

    assert!(l1.trace.matches_untimed(&l2.trace).is_ok());
    assert!(l2.trace.matches_untimed(&l3.trace).is_ok());
    assert_eq!(l1.recognized, l2.recognized);
    assert_eq!(l2.recognized, l3.recognized);
}

#[test]
fn abstraction_costs_simulation_detail() {
    // The paper's motivation for TL modelling: more detail = slower
    // simulation. Level 3 adds reconfiguration activity on top of level 2,
    // so its simulated end-to-end time is strictly larger.
    let workload = Workload::small();
    let l2 = level2::run(&workload).expect("level 2");
    let l3 = level3::run(&workload).expect("level 3");
    assert!(l3.total_ticks > l2.total_ticks);
    // And level 1 is untimed: its kernel never advances time.
    let l1 = level1::run(&workload).expect("level 1");
    assert_eq!(l1.outcome.stats.final_time.ticks(), 0);
}

#[test]
fn recognition_accuracy_survives_refinement() {
    // Across a slightly larger probe set, the recognized identities are
    // identical at every level (bit-exact functional refinement).
    let workload = Workload::new(
        media::dataset::DatasetConfig {
            identities: 6,
            poses: 2,
            width: 64,
            height: 64,
            noise_amp: 5,
        },
        6,
    );
    let l1 = level1::run(&workload).expect("level 1");
    let l3 = level3::run(&workload).expect("level 3");
    assert_eq!(l1.recognized, l3.recognized);
    // Recognition itself works: most probes map to the right identity.
    let correct = workload
        .probes
        .iter()
        .zip(&l1.recognized)
        .filter(|(&(id, _, _), &rec)| id == rec)
        .count();
    assert!(
        correct * 10 >= workload.probes.len() * 8,
        "accuracy too low: {correct}/{}",
        workload.probes.len()
    );
}

#[test]
fn bus_and_fpga_reports_are_consistent() {
    let workload = Workload::small();
    let l3 = level3::run(&workload).expect("level 3");
    let fpga = l3.fpga.expect("level 3 has an FPGA");
    // Bitstream words must show up as bus traffic from the CPU master
    // (which initiates downloads).
    let cpu_words: u64 = l3
        .bus
        .masters
        .iter()
        .find(|m| m.name == "cpu")
        .expect("cpu master")
        .words;
    assert!(cpu_words >= fpga.download_words);
    // The FPGA computed every distance and root evaluation.
    let expected_calls = (workload.probes.len() * workload.gallery_len() * 2) as u64;
    assert_eq!(fpga.calls, expected_calls);
}
