//! The parallel backbone's contract: verdicts, counterexamples, coverage,
//! and rendered reports are bit-identical across worker counts.
//!
//! Every verification obligation (SAT portfolio race excepted — its
//! verdict is objective but its winner is wall-clock-dependent and its
//! model is therefore diagnostic-only) builds its own engine state, so
//! fan-out must not change a single bit of any result. These tests pin
//! that invariant for workers ∈ {1, 2, 8} against the sequential run.

use mc::prop::{BoolExpr, Property};
use symbad_core::cascade;
use symbad_core::flow::run_full_flow_mode;
use symbad_core::workload::Workload;

const MODES: [exec::ExecMode; 3] = [
    exec::ExecMode::Parallel { workers: 1 },
    exec::ExecMode::Parallel { workers: 2 },
    exec::ExecMode::Parallel { workers: 8 },
];

#[test]
fn flow_report_json_is_bit_identical_across_worker_counts() {
    let w = Workload::small();
    let reference = run_full_flow_mode(&w, exec::ExecMode::Sequential)
        .expect("sequential flow runs")
        .to_json();
    for mode in MODES {
        let report = run_full_flow_mode(&w, mode).expect("parallel flow runs");
        assert_eq!(
            report.to_json(),
            reference,
            "flow report diverged at {mode:?}"
        );
    }
}

#[test]
fn clause_sharing_and_lemma_pools_never_move_the_flow_report() {
    // The cooperative-SAT contract (DESIGN.md §16): learnt-clause
    // sharing and lemma-pool warm starts change *effort*, never
    // *answers*. The rendered report must be bit-identical whether
    // sharing is off (uncached flow), on with a cold pool, or on with a
    // pool warmed by a previous run — at every worker count.
    let w = Workload::small();
    let reference = run_full_flow_mode(&w, exec::ExecMode::Sequential)
        .expect("sequential flow runs")
        .to_json();
    for mode in [exec::ExecMode::Sequential].into_iter().chain(MODES) {
        let obligations = cache::ObligationCache::new();
        let cold =
            symbad_core::flow::run_full_flow_cached(&w, &telemetry::noop(), mode, &obligations)
                .expect("cold cached flow runs");
        assert_eq!(
            cold.to_json(),
            reference,
            "sharing-on cold-pool report diverged at {mode:?}"
        );
        // Warm pool, cold verdicts: every miter re-solves, now seeded
        // from the pool the cold run populated.
        let warmed = obligations.retain_lemmas();
        let warm = symbad_core::flow::run_full_flow_cached(&w, &telemetry::noop(), mode, &warmed)
            .expect("warm-pool flow runs");
        assert_eq!(
            warm.to_json(),
            reference,
            "warm-pool report diverged at {mode:?}"
        );
    }
}

#[test]
fn bmc_counterexamples_are_bit_identical_across_worker_counts() {
    // The buggy wrapper refutes `done_returns_to_idle`; the refutation
    // trace (not just the verdict) must be the same from every worker.
    let buggy = cascade::wrapper(false);
    let properties = vec![
        Property::response(
            "done_returns_to_idle",
            BoolExpr::eq("state", 3),
            BoolExpr::eq("state", 0),
            1,
        ),
        Property::invariant("state_in_range", BoolExpr::le("state", 3)),
        Property::invariant("never_done", BoolExpr::ne("done", 1)),
    ];
    let reference: Vec<mc::Verdict> = properties
        .iter()
        .map(|p| mc::bmc::check(&buggy, p, 10))
        .collect();
    assert!(
        reference.iter().any(|v| v.is_violated()),
        "the seeded bug must produce at least one counterexample"
    );
    for mode in MODES {
        let verdicts = mc::bmc::check_many(&buggy, &properties, 10, mode, &telemetry::noop());
        assert_eq!(verdicts, reference, "BMC verdicts diverged at {mode:?}");
    }
}

#[test]
fn atpg_completion_is_bit_identical_across_worker_counts() {
    // SAT-driven testbench completion: generated vectors and the
    // resulting coverage must match the sequential run exactly.
    let func = cascade::buggy_lut_kernel(true);
    let seed_tb = atpg::Testbench {
        vectors: vec![vec![0]],
    };
    let (ref_tb, ref_unreachable) =
        atpg::formal::complete_with_sat(&func, &seed_tb).expect("completion runs");
    let ref_cov = atpg::metrics::bit_coverage(&func, &ref_tb);
    for mode in MODES {
        let (tb, unreachable) =
            atpg::formal::complete_with_sat_mode(&func, &seed_tb, mode).expect("completion runs");
        assert_eq!(tb.vectors, ref_tb.vectors, "vectors diverged at {mode:?}");
        assert_eq!(unreachable, ref_unreachable);
        let cov = atpg::metrics::bit_coverage(&func, &tb);
        assert_eq!(cov.detected, ref_cov.detected);
        assert_eq!(cov.total, ref_cov.total);
        assert_eq!(cov.undetected, ref_cov.undetected);
    }
}

#[test]
fn cascade_report_is_bit_identical_across_worker_counts() {
    let reference = cascade::run();
    for mode in MODES {
        assert_eq!(
            cascade::run_mode(mode),
            reference,
            "cascade diverged at {mode:?}"
        );
    }
}

#[test]
fn instrumented_flow_telemetry_matches_sequential_key_state() {
    // Parallel obligations record into private collectors that are
    // replayed in obligation order; the merged keyed state (counters,
    // gauges) must equal the sequential instrument's.
    let w = Workload::small();
    let seq = telemetry::Collector::shared();
    let seq_instr: telemetry::SharedInstrument = seq.clone();
    symbad_core::flow::run_full_flow_instrumented_mode(&w, &seq_instr, exec::ExecMode::Sequential)
        .expect("sequential flow runs");
    for workers in [2, 8] {
        let par = telemetry::Collector::shared();
        let par_instr: telemetry::SharedInstrument = par.clone();
        symbad_core::flow::run_full_flow_instrumented_mode(
            &w,
            &par_instr,
            exec::ExecMode::Parallel { workers },
        )
        .expect("parallel flow runs");
        // Counter totals must agree exactly for the engine-independent
        // keys; the miter SAT counters move to the (uninstrumented)
        // portfolio in parallel mode, so sat.* totals legitimately
        // differ and are excluded here.
        for key in [
            "sim.polls",
            "bus.transactions",
            "fpga.reconfigurations",
            "bmc.sat_calls",
            "level4.properties_checked",
        ] {
            assert_eq!(
                par.counter(key),
                seq.counter(key),
                "counter {key} diverged at {workers} workers"
            );
        }
        // The flow track (one span per phase) is identical.
        let seq_spans: Vec<_> = seq
            .spans()
            .into_iter()
            .filter(|s| s.track == "flow")
            .collect();
        let par_spans: Vec<_> = par
            .spans()
            .into_iter()
            .filter(|s| s.track == "flow")
            .collect();
        assert_eq!(par_spans, seq_spans);
    }
}
