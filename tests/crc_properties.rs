//! Pins `platform::crc32_words` — the checksum the FPGA model verifies
//! after every bitstream download — against an independently written
//! byte-at-a-time CRC-32 reference (reflected, polynomial `0xEDB88320`,
//! the IEEE 802.3 / zlib variant). The reference itself is anchored to
//! the standard check value `CRC32("123456789") = 0xCBF43926`, so both
//! implementations are tied to the published algorithm, not just to each
//! other.

use platform::crc32_words;
use proptest::prelude::*;

/// Textbook bytewise CRC-32: shift-and-conditional-xor, no tables, no
/// shared code with the word-stream implementation under test.
fn crc32_bytes(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &byte in bytes {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            crc = if crc & 1 == 1 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
        }
    }
    !crc
}

#[test]
fn the_reference_matches_the_published_check_value() {
    // Every CRC-32 description quotes this vector; if the reference is
    // wrong, the property below would only prove mutual consistency.
    assert_eq!(crc32_bytes(b"123456789"), 0xCBF4_3926);
    assert_eq!(crc32_bytes(b""), 0);
}

#[test]
fn word_stream_crc_matches_the_reference_on_fixed_vectors() {
    for words in [
        vec![],
        vec![0u32],
        vec![1, 2],
        vec![u32::MAX; 7],
        vec![0xDEAD_BEEF, 0x0BAD_F00D, 0xCAFE_BABE],
    ] {
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        assert_eq!(
            crc32_words(words.iter().copied()),
            crc32_bytes(&bytes),
            "diverged on {words:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn word_stream_crc_matches_the_byte_reference(
        words in proptest::collection::vec(any::<u32>(), 0..64),
    ) {
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        prop_assert_eq!(crc32_words(words.iter().copied()), crc32_bytes(&bytes));
    }

    #[test]
    fn single_word_corruption_always_changes_the_checksum(
        words in proptest::collection::vec(any::<u32>(), 1..32),
        index in any::<usize>(),
        mask in 1u32..=u32::MAX,
    ) {
        // The FPGA model relies on this: a corrupted download must fail
        // its CRC check. CRC-32 detects any single flipped word.
        let i = index % words.len();
        let mut corrupted = words.clone();
        corrupted[i] ^= mask;
        prop_assert_ne!(
            crc32_words(words.iter().copied()),
            crc32_words(corrupted.iter().copied())
        );
    }
}
