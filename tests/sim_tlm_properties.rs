//! Property-based tests of the simulation substrate: kernel determinism,
//! FIFO conservation laws, bus accounting invariants, and the LPV FIFO
//! bound checked against observed high watermarks.

use proptest::prelude::*;
use sim::{Activation, FifoId, Process, ProcessCtx, SimTime, Simulator};
use std::collections::VecDeque;

/// Produces `items` tokens with `gap` ticks between them.
struct Producer {
    out: FifoId,
    items: VecDeque<u64>,
    gap: u64,
}

impl Process<u64> for Producer {
    fn poll(&mut self, ctx: &mut ProcessCtx<'_, u64>) -> Activation {
        match self.items.pop_front() {
            None => Activation::Done,
            Some(v) => match ctx.try_write(self.out, v) {
                Ok(()) => Activation::WaitTime(SimTime::from_ticks(self.gap)),
                Err(v) => {
                    self.items.push_front(v);
                    Activation::WaitFifoWritable(self.out)
                }
            },
        }
    }
    fn name(&self) -> &str {
        "producer"
    }
}

/// Consumes `expected` tokens with `gap` ticks of service time each.
struct Consumer {
    inp: FifoId,
    got: Vec<u64>,
    remaining: usize,
    gap: u64,
}

impl Process<u64> for Consumer {
    fn poll(&mut self, ctx: &mut ProcessCtx<'_, u64>) -> Activation {
        if self.remaining == 0 {
            return Activation::Done;
        }
        match ctx.try_read(self.inp) {
            Some(v) => {
                self.got.push(v);
                ctx.trace("sink", v);
                self.remaining -= 1;
                Activation::WaitTime(SimTime::from_ticks(self.gap))
            }
            None => Activation::WaitFifoReadable(self.inp),
        }
    }
    fn name(&self) -> &str {
        "consumer"
    }
}

fn run_pipeline(
    items: &[u64],
    capacity: usize,
    prod_gap: u64,
    cons_gap: u64,
) -> (Vec<u64>, sim::Outcome, Vec<sim::fifo::FifoStats>) {
    let mut sim = Simulator::new();
    let ch = sim.add_fifo("ch", capacity);
    sim.add_process(Producer {
        out: ch,
        items: items.iter().copied().collect(),
        gap: prod_gap,
    });
    sim.add_process(Consumer {
        inp: ch,
        got: Vec::new(),
        remaining: items.len(),
        gap: cons_gap,
    });
    let outcome = sim.run(SimTime::MAX).expect("no livelock");
    let got: Vec<u64> = sim.trace().items_for("sink").into_iter().copied().collect();
    (got, outcome, sim.fifo_stats())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fifo_preserves_order_and_counts(
        items in proptest::collection::vec(any::<u64>(), 0..40),
        capacity in 1usize..8,
        prod_gap in 0u64..5,
        cons_gap in 0u64..5,
    ) {
        let (got, outcome, stats) = run_pipeline(&items, capacity, prod_gap, cons_gap);
        // Conservation: everything produced arrives, in order.
        prop_assert_eq!(&got, &items);
        prop_assert!(outcome.is_quiescent());
        let ch = &stats[0];
        prop_assert_eq!(ch.total_writes, items.len() as u64);
        prop_assert_eq!(ch.total_reads, items.len() as u64);
        prop_assert_eq!(ch.occupancy, 0);
        // The watermark never exceeds capacity.
        prop_assert!(ch.high_watermark <= capacity);
    }

    #[test]
    fn kernel_is_deterministic(
        items in proptest::collection::vec(any::<u64>(), 1..20),
        capacity in 1usize..4,
    ) {
        let a = run_pipeline(&items, capacity, 1, 2);
        let b = run_pipeline(&items, capacity, 1, 2);
        prop_assert_eq!(a.0, b.0);
        prop_assert_eq!(a.1.stats.polls, b.1.stats.polls);
        prop_assert_eq!(a.1.stats.final_time, b.1.stats.final_time);
    }

    #[test]
    fn lpv_fifo_bound_covers_observed_watermark(
        items in 8usize..32,
        prod_gap in 1u64..6,
        cons_gap in 1u64..6,
    ) {
        // Observe the watermark with an effectively unbounded FIFO…
        let data: Vec<u64> = (0..items as u64).collect();
        let (_, outcome, stats) = run_pipeline(&data, 4096, prod_gap, cons_gap);
        let observed = stats[0].high_watermark as u64;
        // …and check the LPV bound (with matching rates) covers it.
        let bound = lp::dimension_fifo(&lp::ChannelRates {
            producer_burst: 1,
            producer_period: prod_gap.max(1),
            consumer_period: cons_gap.max(1),
            consumer_latency: 0,
            horizon: outcome.stats.final_time.ticks().max(1),
        });
        prop_assert!(
            bound.capacity >= observed,
            "LPV bound {} must cover observed watermark {} (Tp={prod_gap}, Tc={cons_gap})",
            bound.capacity,
            observed
        );
    }

    #[test]
    fn bus_accounting_balances(
        bursts in proptest::collection::vec((1u32..64, 0u64..100), 1..20),
    ) {
        use tlm::{AccessKind, Bus, BusConfig, Payload};
        let mut bus = Bus::new("b", BusConfig::default());
        bus.map_region("mem", 0, 0x10000, 0);
        let m = bus.add_master("m");
        let mut clock = sim::SimTime::ZERO;
        let mut total_words = 0u64;
        let mut last_end = sim::SimTime::ZERO;
        for (words, advance) in bursts {
            clock = clock.saturating_add_ticks(advance);
            let r = bus
                .transfer(clock, &Payload::burst(m, 0, AccessKind::Write, words))
                .expect("mapped write from a valid master cannot fail");
            // Transactions never overlap and never start before `now`.
            prop_assert!(r.start >= clock);
            prop_assert!(r.start >= last_end);
            prop_assert!(r.end > r.start);
            last_end = r.end;
            total_words += words as u64;
        }
        let report = bus.report(last_end);
        prop_assert_eq!(report.masters[0].words, total_words);
        // Busy time ≤ elapsed time.
        prop_assert!(report.total_busy_ticks <= last_end.ticks());
        prop_assert!(report.utilization <= 1.0 + 1e-9);
    }
}
