//! Supervised-execution contract tests.
//!
//! Three regimes, selected by feature flags:
//!
//! * **honest engines** (default build): supervision idle ⇒ the
//!   supervised flow reproduces the legacy flow exactly and the legacy
//!   report still renders without a `degradation` section (so the pinned
//!   goldens are untouched); a starved effort budget degrades the flow
//!   gracefully and bit-identically for workers 1, 2, and 8.
//! * **`--features panic-mutant`**: the SAT solver panics every 256th
//!   propagation, yet the full flow completes with a deterministic
//!   partial report (panicked obligations counted and retried once).
//! * **`--features diverge-mutant`**: every second budgeted solve burns
//!   its entire budget, yet a generous budget still yields a
//!   deterministic partial report instead of a hang or crash.

use symbad_core::flow::{run_full_flow_supervised, FlowReport};
use symbad_core::supervise::SupervisionPolicy;
use symbad_core::workload::Workload;

fn supervised_with(
    workers: usize,
    policy: &SupervisionPolicy,
    instrument: &telemetry::SharedInstrument,
) -> FlowReport {
    // Fresh cache per run: the degradation pattern must come from the
    // budget/faults, never from which verdicts a previous run cached.
    let cache = cache::ObligationCache::new();
    run_full_flow_supervised(
        &Workload::small(),
        instrument,
        exec::ExecMode::from_workers(workers),
        &cache,
        policy,
    )
    .expect("supervised flow runs")
}

fn supervised(workers: usize, policy: &SupervisionPolicy) -> FlowReport {
    supervised_with(workers, policy, &telemetry::noop())
}

#[cfg(not(any(feature = "panic-mutant", feature = "diverge-mutant")))]
mod honest {
    use super::*;
    use symbad_core::flow::run_full_flow_cached;

    #[test]
    fn idle_supervision_reproduces_the_legacy_flow() {
        let w = Workload::small();
        let legacy_cache = cache::ObligationCache::new();
        let legacy = run_full_flow_cached(
            &w,
            &telemetry::noop(),
            exec::ExecMode::Sequential,
            &legacy_cache,
        )
        .expect("legacy flow runs");
        // The legacy report has no degradation section — the golden
        // `flow_report.json` (pinned by tests/telemetry_golden.rs) is
        // untouched by the supervision layer.
        assert!(legacy.degradation.is_none());
        assert!(!legacy.to_json().contains("\"degradation\""));
        assert!(legacy.conclusive());

        let report = supervised(1, &SupervisionPolicy::default());
        assert_eq!(report.phases, legacy.phases);
        assert_eq!(report.recognized, legacy.recognized);
        assert_eq!(report.metrics, legacy.metrics);
        assert!(report.all_ok());
        assert!(report.conclusive());
        let d = report.degradation.as_ref().expect("supervised taxonomy");
        assert!(d.is_clean());
        assert_eq!(d.total, 12, "3 flow obligations + 9 level-4 obligations");
        assert_eq!((d.unknown, d.panicked, d.retries), (0, 0, 0));
        assert_eq!(d.proved, d.total);
        assert!(report.to_json().contains("\"degradation\""));
    }

    #[test]
    fn idle_supervision_emits_no_supervision_counters() {
        let collector = telemetry::Collector::shared();
        let instr: telemetry::SharedInstrument = collector.clone();
        let report = supervised_with(1, &SupervisionPolicy::default(), &instr);
        assert!(report.conclusive());
        assert_eq!(collector.counter("sat.budget_exhausted"), 0);
        assert_eq!(collector.counter("exec.panics_caught"), 0);
        assert_eq!(collector.counter("flow.degraded_obligations"), 0);
        assert_eq!(collector.counter("flow.retries"), 0);
    }

    #[test]
    fn starved_budget_degrades_bit_identically_across_worker_counts() {
        let starve = exec::Effort {
            sat_conflicts: None,
            sat_decisions: Some(0),
            bdd_nodes: Some(1),
        };
        let policy = SupervisionPolicy::with_effort(starve);
        let collector = telemetry::Collector::shared();
        let instr: telemetry::SharedInstrument = collector.clone();
        let reference = supervised_with(1, &policy, &instr);

        let d = reference.degradation.as_ref().expect("taxonomy");
        assert!(d.unknown > 0, "starved budgets must surface as Unknown");
        assert_eq!(d.panicked, 0, "budgets degrade without panics");
        assert_eq!(d.retries, 0);
        assert!(!reference.conclusive());
        assert!(!reference.all_ok());
        // The simulations and the engine-less checks are untouched.
        assert_eq!(reference.recognized, vec![0, 1]);
        for phase in &reference.phases {
            if !phase.phase.starts_with("level 4") {
                assert!(phase.ok, "{} degraded under a SAT budget", phase.phase);
            }
        }
        // Telemetry names the degradation.
        assert!(collector.counter("sat.budget_exhausted") > 0);
        assert!(collector.counter("flow.degraded_obligations") > 0);
        assert_eq!(collector.counter("exec.panics_caught"), 0);

        // The partial report is bit-identical for any worker count.
        let json = reference.to_json();
        assert!(json.contains("\"degradation\""));
        assert!(json.contains("budget exhausted"));
        for workers in [2, 8] {
            assert_eq!(
                supervised(workers, &policy).to_json(),
                json,
                "{workers} workers diverged"
            );
        }
    }
}

#[cfg(feature = "panic-mutant")]
mod panic_mutant {
    use super::*;

    #[test]
    fn flow_survives_injected_panics_with_a_deterministic_partial_report() {
        exec::silence_injected_panics();
        let policy = SupervisionPolicy::default();
        let collector = telemetry::Collector::shared();
        let instr: telemetry::SharedInstrument = collector.clone();
        let reference = supervised_with(1, &policy, &instr);

        // The flow completed — all seven phases reported, simulations
        // untouched by the solver fault.
        assert_eq!(reference.phases.len(), 7);
        assert_eq!(reference.recognized, vec![0, 1]);

        // The taxonomy shows caught panics and the retry-once policy.
        let d = reference.degradation.as_ref().expect("taxonomy");
        assert!(d.panicked > 0, "the panic mutant must trip somewhere");
        assert!(d.retries > 0, "panicked obligations are retried once");
        assert!(d.proved > 0, "small obligations still prove");
        assert!(!reference.conclusive());
        assert!(collector.counter("exec.panics_caught") > 0);
        assert!(collector.counter("flow.retries") > 0);
        for outcome in &d.degraded {
            if outcome.detail.contains("panicked") {
                assert!(
                    outcome.detail.contains("injected panic"),
                    "unexpected panic source: {}",
                    outcome.detail
                );
            }
        }

        // Bit-identical partial report for workers 1, 2, 8.
        let json = reference.to_json();
        assert!(json.contains("[PANICKED"));
        for workers in [2, 8] {
            assert_eq!(
                supervised(workers, &policy).to_json(),
                json,
                "{workers} workers diverged"
            );
        }
    }
}

#[cfg(feature = "diverge-mutant")]
mod diverge_mutant {
    use super::*;

    #[test]
    fn generous_budgets_still_degrade_deterministically_under_divergence() {
        let policy = SupervisionPolicy::with_effort(exec::Effort::bounded(100_000));
        let reference = supervised(1, &policy);

        assert_eq!(reference.phases.len(), 7);
        let d = reference.degradation.as_ref().expect("taxonomy");
        assert!(
            d.unknown > 0,
            "the diverge mutant burns every second budgeted solve"
        );
        assert_eq!(d.panicked, 0);
        assert!(!reference.conclusive());

        let json = reference.to_json();
        assert!(json.contains("budget exhausted"));
        for workers in [2, 8] {
            assert_eq!(
                supervised(workers, &policy).to_json(),
                json,
                "{workers} workers diverged"
            );
        }
    }
}
