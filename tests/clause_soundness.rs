//! Property tests for the clause-sharing soundness contract.
//!
//! The cooperative-SAT design (DESIGN.md §16) rests on two facts:
//!
//! 1. **Every exported clause is entailed by the formula it was learnt
//!    from.** Learnt clauses are resolvents of the permanent clause set
//!    — assumptions enter the search as decisions, never clauses — so
//!    `cnf ∧ ¬c` must be unsatisfiable for every export `c`. Checked
//!    here by brute-force enumeration.
//! 2. **Imports never change an answer.** Seeding a solver with entailed
//!    clauses at decision level 0 (directly, through a mailbox ring, or
//!    via the cooperative portfolio) may change effort, never the
//!    verdict, and any model produced still satisfies the original
//!    clauses.

use proptest::prelude::*;
use symbad_suite::testkit::{brute_force_sat, solver_from_clauses};

/// A small random CNF as (num_vars, clauses of (var index, polarity)).
fn cnf_strategy() -> impl Strategy<Value = (usize, Vec<Vec<(usize, bool)>>)> {
    (3usize..=8).prop_flat_map(|n| {
        let clause = proptest::collection::vec((0..n, any::<bool>()), 1..=3);
        let clauses = proptest::collection::vec(clause, 2..=24);
        (Just(n), clauses)
    })
}

/// Does every model of the CNF satisfy `clause`? (Entailment by
/// enumeration; vacuously true for UNSAT formulas.)
fn entailed(n: usize, clauses: &[Vec<(usize, bool)>], clause: &[sat::Lit]) -> bool {
    (0u32..(1u32 << n)).all(|bits| {
        let is_model = clauses
            .iter()
            .all(|c| c.iter().any(|&(v, pos)| (bits >> v & 1 == 1) == pos));
        !is_model
            || clause
                .iter()
                .any(|&l| (bits >> l.var().index() & 1 == 1) == l.is_positive())
    })
}

/// Solves with a permissive collector share attached (plus a few
/// assumption-pinned re-solves to stir extra conflicts), returning the
/// verdict of the plain solve and every exported clause.
fn solve_collecting(n: usize, clauses: &[Vec<(usize, bool)>]) -> (bool, Vec<Vec<sat::Lit>>) {
    let (mut solver, vars) = solver_from_clauses(n, clauses);
    solver.set_share(sat::SolverShare::collector(
        sat::ShareFilter::permissive(16),
        1024,
    ));
    let verdict = solver.solve().is_sat();
    for round in 0..4u32 {
        let assumptions: Vec<sat::Lit> = vars
            .iter()
            .enumerate()
            .filter(|(i, _)| (round >> (i % 3)) & 1 == 0)
            .map(|(i, &v)| sat::Lit::with_polarity(v, (round as usize + i).is_multiple_of(2)))
            .collect();
        solver.solve_under_assumptions(&assumptions);
    }
    let share = solver.take_share().expect("collector share is attached");
    (verdict, share.into_pool_exports())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn every_exported_clause_is_entailed((n, clauses) in cnf_strategy()) {
        let (_, exports) = solve_collecting(n, &clauses);
        for clause in &exports {
            prop_assert!(
                entailed(n, &clauses, clause),
                "export {:?} is not entailed by {:?}",
                clause,
                clauses
            );
        }
    }

    #[test]
    fn imports_never_change_the_verdict_or_break_the_model((n, clauses) in cnf_strategy()) {
        let expected = brute_force_sat(n, &clauses);
        let (verdict, exports) = solve_collecting(n, &clauses);
        prop_assert_eq!(verdict, expected);

        // Direct level-0 imports of the exports.
        let (mut seeded, svars) = solver_from_clauses(n, &clauses);
        for clause in &exports {
            if seeded.import_clause(clause) == sat::ImportResult::Conflict {
                break;
            }
        }
        prop_assert_eq!(seeded.solve().is_sat(), expected);
        if expected {
            for c in &clauses {
                let satisfied = c.iter().any(|&(v, pos)| seeded.value(svars[v]) == Some(pos));
                prop_assert!(satisfied, "seeded model violates {:?}", c);
            }
        }

        // The same exports through a real mailbox ring.
        let (mut tx, mut rx) = sat::share::mailbox(32);
        for clause in &exports {
            tx.push(clause.clone());
        }
        let (mut transported, tvars) = solver_from_clauses(n, &clauses);
        while let Some(clause) = rx.pop() {
            if transported.import_clause(&clause) == sat::ImportResult::Conflict {
                break;
            }
        }
        prop_assert_eq!(transported.solve().is_sat(), expected);
        if expected {
            for c in &clauses {
                let satisfied = c
                    .iter()
                    .any(|&(v, pos)| transported.value(tvars[v]) == Some(pos));
                prop_assert!(satisfied, "mailbox-seeded model violates {:?}", c);
            }
        }
    }

    #[test]
    fn cooperative_portfolio_matches_brute_force_with_and_without_seeds(
        (n, clauses) in cnf_strategy()
    ) {
        let expected = brute_force_sat(n, &clauses);
        let (_, exports) = solve_collecting(n, &clauses);
        let cnf = sat::Cnf {
            num_vars: n,
            clauses: clauses
                .iter()
                .map(|c| {
                    c.iter()
                        .map(|&(v, pos)| {
                            sat::Lit::with_polarity(sat::Var::from_index(v), pos)
                        })
                        .collect()
                })
                .collect(),
        };
        for seeds in [&[][..], &exports[..]] {
            for mode in [exec::ExecMode::Sequential, exec::ExecMode::Parallel { workers: 2 }] {
                let coop = sat::solve_portfolio_cooperative(
                    &cnf,
                    mode,
                    &sat::ShareConfig::default(),
                    seeds,
                );
                prop_assert_eq!(coop.outcome.result.is_sat(), expected);
                if let Some(model) = &coop.outcome.model {
                    for c in &clauses {
                        let satisfied = c.iter().any(|&(v, pos)| model[v] == pos);
                        prop_assert!(satisfied, "cooperative model violates {:?}", c);
                    }
                }
            }
        }
    }
}
